//! The twelve Syzkaller-reported concurrency failures of Table 3.
//!
//! Six were taken from Google's open failure database, six were found (and
//! at evaluation time unfixed) by the paper's authors. Eight are races
//! between two system calls; four involve a kernel background thread
//! (`kworkerd`, an RCU callback, or a timer) — the Figure 4 patterns. Six
//! involve multi-variable races, three of those with loosely correlated
//! objects.
//!
//! Model documentation cites the syzkaller dashboard entries / fix commits
//! referenced by the paper (its references \[45\], \[52\], \[55\],
//! \[90\]–\[98\]).

use crate::{
    noise::{
        Noise,
        NoiseSpec, //
    },
    BugModel, MultiVar, PaperRow,
};
use khist::KthreadKind;
use ksim::{
    builder::{
        cond_reg,
        ProgramBuilder, //
    },
    instr::BinOp,
    CmpOp, FailureKind, Program,
};

/// All twelve Table 3 models, in table order.
#[must_use]
pub fn all() -> Vec<BugModel> {
    vec![
        BugModel {
            id: "#1",
            subsystem: "L2TP",
            bug_type: "Slab-out-of-bound access",
            multi_variable: MultiVar::Loose,
            kind: FailureKind::SlabOutOfBounds,
            target_func: Some("pppol2tp_connect"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 165.7,
                lifs_schedules: 751,
                interleavings: 1,
                ca_time_s: 251.3,
                ca_schedules: 236,
                chain_races: Some(2),
            },
            syscalls: &["connect", "setsockopt"],
            racing_vars: &["sk->sk_state", "session->pkt_len"],
            default_noise: NoiseSpec {
                shared_counters: 53,
                burst: 61,
                private_work: 2000,
                seed: 901,
            },
            build: syz01_l2tp_oob,
            doc: "pppol2tp_connect reads a payload length owned by the l2tp \
                  session while a concurrent setsockopt enlarges it; the \
                  copy walks past the receive buffer. The racing objects — \
                  the socket-layer state flag and the l2tp-layer length — \
                  are loosely correlated (most paths touch only one).",
        },
        BugModel {
            id: "#2",
            subsystem: "Packet socket",
            bug_type: "Assertion violation",
            multi_variable: MultiVar::No,
            kind: FailureKind::AssertionViolation,
            target_func: Some("packet_lookup_frame"),
            expected_chain_races: 4,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 318.0,
                lifs_schedules: 133,
                interleavings: 1,
                ca_time_s: 1152.0,
                ca_schedules: 471,
                chain_races: Some(4),
            },
            syscalls: &["setsockopt", "ioctl"],
            racing_vars: &["obj_ptr"],
            default_noise: NoiseSpec {
                shared_counters: 100,
                burst: 140,
                private_work: 9500,
                seed: 902,
            },
            build: syz02_packet_ring,
            doc: "Ring-buffer reconfiguration races with frame lookup: four \
                  fields of the single ring object (head, frame_max, status, \
                  owner) are read/written without the ring lock, and the \
                  lookup trips a frame-state assertion. Single object, four \
                  racing accesses — a four-race chain from one variable \
                  (object) in the paper's counting.",
        },
        BugModel {
            id: "#3",
            subsystem: "L2TP",
            bug_type: "Use-after-free access",
            multi_variable: MultiVar::Tight,
            kind: FailureKind::UseAfterFree,
            target_func: Some("l2tp_session_get"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 65.8,
                lifs_schedules: 178,
                interleavings: 1,
                ca_time_s: 1035.6,
                ca_schedules: 773,
                chain_races: Some(2),
            },
            syscalls: &["connect", "close"],
            racing_vars: &["tunnel->closing", "tunnel->session"],
            default_noise: NoiseSpec {
                shared_counters: 107,
                burst: 110,
                private_work: 5000,
                seed: 903,
            },
            build: syz03_l2tp_uaf,
            doc: "pppol2tp_connect races with tunnel teardown: the \
                  tunnel->closing flag and the session pointer are a \
                  tightly-correlated pair; connect checks the flag, close \
                  sets it and frees the session, connect then touches the \
                  freed session.",
        },
        BugModel {
            id: "#4",
            subsystem: "KVM",
            bug_type: "Use-after-free access",
            multi_variable: MultiVar::Loose,
            kind: FailureKind::UseAfterFree,
            target_func: Some("irq_bypass_register_consumer"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: Some(KthreadKind::Kworker),
            paper: PaperRow {
                lifs_time_s: 152.1,
                lifs_schedules: 503,
                interleavings: 1,
                ca_time_s: 189.6,
                ca_schedules: 138,
                chain_races: Some(2),
            },
            syscalls: &["ioctl", "ioctl"],
            racing_vars: &["consumer_list"],
            default_noise: NoiseSpec {
                shared_counters: 40,
                burst: 63,
                private_work: 2500,
                seed: 904,
            },
            build: syz04_irqfd,
            doc: "The paper's Figure 9 case study: KVM_IRQFD assign adds the \
                  irqfd to the consumer list and continues initializing it; \
                  a concurrent deassign finds it on the list and queues \
                  irqfd_shutdown on kworkerd, which frees the irqfd while \
                  the assign path still writes it. The list (irqbypass \
                  layer) and the irqfd object (KVM layer) are loosely \
                  correlated, and the causality crosses the thread boundary \
                  through the deferred work.",
        },
        BugModel {
            id: "#5",
            subsystem: "RxRPC",
            bug_type: "Use-after-free access",
            multi_variable: MultiVar::No,
            kind: FailureKind::UseAfterFree,
            target_func: Some("rxrpc_queue_local"),
            expected_chain_races: 1,
            expected_interleavings: 1,
            kthread: Some(KthreadKind::Kworker),
            paper: PaperRow {
                lifs_time_s: 45.7,
                lifs_schedules: 2,
                interleavings: 1,
                ca_time_s: 930.4,
                ca_schedules: 405,
                chain_races: Some(1),
            },
            syscalls: &["sendmsg"],
            racing_vars: &["rx->local"],
            default_noise: NoiseSpec {
                shared_counters: 80,
                burst: 95,
                private_work: 1500,
                seed: 905,
            },
            build: syz05_rxrpc,
            doc: "A single sendmsg races with the rxrpc_local processor \
                  work item it queued: the worker drops the last reference \
                  and frees the local endpoint while the syscall still \
                  writes it. One data race, reproduced by LIFS's very first \
                  preemption (2 schedules in the paper).",
        },
        BugModel {
            id: "#6",
            subsystem: "BPF",
            bug_type: "General protection fault",
            multi_variable: MultiVar::Tight,
            kind: FailureKind::GeneralProtectionFault,
            target_func: Some("dev_map_hash_update_elem"),
            expected_chain_races: 4,
            expected_interleavings: 1,
            kthread: Some(KthreadKind::RcuCallback),
            paper: PaperRow {
                lifs_time_s: 755.0,
                lifs_schedules: 176,
                interleavings: 1,
                ca_time_s: 988.0,
                ca_schedules: 388,
                chain_races: Some(4),
            },
            syscalls: &["bpf", "close"],
            racing_vars: &["map->ready", "map->count"],
            default_noise: NoiseSpec {
                shared_counters: 66,
                burst: 72,
                private_work: 4500,
                seed: 906,
            },
            build: syz06_bpf_devmap,
            doc: "dev_map_hash_update_elem walks the hash buckets while map \
                  teardown poisons them from an RCU callback: the map-ready \
                  flag and element count (tightly correlated) steer the \
                  release path into call_rcu, and the callback's poisoned \
                  bucket pointer sends the updater into a wild dereference.",
        },
        BugModel {
            id: "#7",
            subsystem: "Block device",
            bug_type: "Use-after-free access",
            multi_variable: MultiVar::No,
            kind: FailureKind::UseAfterFree,
            target_func: Some("delete_partition"),
            expected_chain_races: 4,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 872.7,
                lifs_schedules: 231,
                interleavings: 1,
                ca_time_s: 1575.0,
                ca_schedules: 523,
                chain_races: Some(4),
            },
            syscalls: &["ioctl", "ioctl"],
            racing_vars: &["disk"],
            default_noise: NoiseSpec {
                shared_counters: 93,
                burst: 100,
                private_work: 8000,
                seed: 907,
            },
            build: syz07_blkpg,
            doc: "Concurrent BLKPG partition add/delete ioctls (fixed by \
                  'fix locking in bdev_del_partition' [50]): four unlocked \
                  accesses to the partition state steer the add path into \
                  touching the partition object the delete path already \
                  freed.",
        },
        BugModel {
            id: "#8",
            subsystem: "CAN",
            bug_type: "Assertion violation",
            multi_variable: MultiVar::Tight,
            kind: FailureKind::RefcountWarning,
            target_func: Some("j1939_netdev_start"),
            expected_chain_races: 5,
            expected_interleavings: 2,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 2818.8,
                lifs_schedules: 1044,
                interleavings: 2,
                ca_time_s: 3286.0,
                ca_schedules: 1469,
                chain_races: Some(5),
            },
            syscalls: &["sendmsg", "close"],
            racing_vars: &["ndev->active", "can->j1939_priv", "priv->session_pending"],
            default_noise: NoiseSpec {
                shared_counters: 4,
                burst: 16,
                private_work: 9500,
                seed: 908,
            },
            build: syz08_j1939,
            doc: "WARNING: refcount bug in j1939_netdev_start (fixed by \
                  'fix uaf for rx_kref of j1939_priv' [54]): the \
                  ndev-active flag, the published priv pointer, and a \
                  pending-session flag form a tightly-correlated triple; \
                  two interleavings drive netdev_stop into dropping the \
                  last rx_kref reference just before netdev_start takes a \
                  new one — refcount_inc on zero.",
        },
        BugModel {
            id: "#9",
            subsystem: "Seccomp",
            bug_type: "Memory leak",
            multi_variable: MultiVar::Loose,
            kind: FailureKind::MemoryLeak,
            target_func: Some("do_seccomp"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 1526.4,
                lifs_schedules: 628,
                interleavings: 1,
                ca_time_s: 1452.6,
                ca_schedules: 848,
                chain_races: Some(2),
            },
            syscalls: &["seccomp", "unshare"],
            racing_vars: &["task->exit_state", "task->seccomp.filter"],
            default_noise: NoiseSpec {
                shared_counters: 107,
                burst: 75,
                private_work: 4000,
                seed: 909,
            },
            build: syz09_seccomp_leak,
            doc: "memory leak in do_seccomp (fix [97]): the filter attach \
                  path checks the task's lifecycle state before publishing \
                  the freshly allocated filter, while exit tears filters \
                  down; in the window, the filter is published after \
                  teardown looked and freed by nobody. The task state (core \
                  kernel) and the filter slot (seccomp) are loosely \
                  correlated.",
        },
        BugModel {
            id: "#10",
            subsystem: "Software RAID",
            bug_type: "Assertion violation",
            multi_variable: MultiVar::No,
            kind: FailureKind::AssertionViolation,
            target_func: Some("md_ioctl"),
            expected_chain_races: 4,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 70.8,
                lifs_schedules: 101,
                interleavings: 1,
                ca_time_s: 2365.1,
                ca_schedules: 1032,
                chain_races: Some(4),
            },
            syscalls: &["ioctl", "ioctl"],
            racing_vars: &["obj_ptr"],
            default_noise: NoiseSpec {
                shared_counters: 83,
                burst: 80,
                private_work: 1200,
                seed: 910,
            },
            build: syz10_md_ioctl,
            doc: "md: warning caused by a race between concurrent \
                  md_ioctl()s [45]: four unlocked accesses to the mddev \
                  state words let one ioctl observe the other's half-done \
                  reconfiguration and trip the consistency WARN.",
        },
        BugModel {
            id: "#11",
            subsystem: "Floppy",
            bug_type: "Assertion violation",
            multi_variable: MultiVar::No,
            kind: FailureKind::AssertionViolation,
            target_func: Some("schedule_bh"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 72.4,
                lifs_schedules: 15,
                interleavings: 1,
                ca_time_s: 1692.9,
                ca_schedules: 627,
                chain_races: Some(2),
            },
            syscalls: &["ioctl", "ioctl"],
            racing_vars: &["fdc_busy"],
            default_noise: NoiseSpec {
                shared_counters: 13,
                burst: 13,
                private_work: 160,
                seed: 911,
            },
            build: syz11_floppy,
            doc: "WARNING in schedule_bh [52]: one ioctl claims the floppy \
                  controller while another queues a command; the pending \
                  command observed under a fresh claim trips the WARN. The \
                  racing instructions sit right at the entry of both paths, \
                  so LIFS reproduces within its first candidates (15 \
                  schedules in the paper).",
        },
        BugModel {
            id: "#12",
            subsystem: "Bluetooth",
            bug_type: "Use-after-free access",
            multi_variable: MultiVar::No,
            kind: FailureKind::UseAfterFree,
            target_func: Some("sco_sock_connect"),
            expected_chain_races: 4,
            expected_interleavings: 1,
            kthread: Some(KthreadKind::Timer),
            paper: PaperRow {
                lifs_time_s: 740.1,
                lifs_schedules: 272,
                interleavings: 1,
                ca_time_s: 2032.0,
                ca_schedules: 843,
                chain_races: Some(4),
            },
            syscalls: &["connect"],
            racing_vars: &["conn->state.lookup", "conn->state.attach"],
            default_noise: NoiseSpec {
                shared_counters: 54,
                burst: 46,
                private_work: 3000,
                seed: 912,
            },
            build: syz12_sco_timer,
            doc: "Bluetooth: dangling sco_conn / use-after-free in \
                  sco_sock_timeout [55]: connect arms the sco timer and \
                  keeps initializing the connection; the timer callback \
                  observes the half-initialized state, tears the conn down, \
                  and the syscall's tail writes the freed object.",
        },
    ]
}

/// #1 — pppol2tp OOB: loosely-correlated state flag (sock layer) and
/// payload length (l2tp layer).
fn syz01_l2tp_oob(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("syz-1-l2tp-oob");
    let mut noise = Noise::setup(&mut p, spec);
    let buf = p.static_obj("rx_buf", 8);
    let sk_state = p.global("sk->sk_state", 0);
    let pkt_len = p.global("session->pkt_len", 8);
    let buf_ptr = p.global_ptr("session->rx_buf", buf);
    {
        let mut a = p.syscall_thread("A", "connect");
        a.func("pppol2tp_connect").line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        a.n("A1").store_global(sk_state, 1u64); // PPPOX_CONNECTED
        a.n("A2").load_global("r1", pkt_len);
        a.n("A3").load_global("r0", buf_ptr);
        a.op("r2", BinOp::Add, "r0", "r1");
        a.op("r2", BinOp::Sub, "r2", 8u64);
        a.n("A4").load_ind("r3", "r2", 0); // copy tail of the payload
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "setsockopt");
        b.func("pppol2tp_setsockopt").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        let out = b.new_label();
        b.n("B1").load_global("r0", sk_state);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.n("B2").store_global(pkt_len, 16u64); // enlarge while connected
        b.place(out);
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("syz01 builds")
}

/// Shared shape for the four-race single-object bugs (#2, #10): two state
/// words written by A steer B into setting two more, and A's tail trips an
/// assertion on them.
#[allow(clippy::too_many_arguments)]
fn quad_assert(
    name: &str,
    func_a: &'static str,
    func_b: &'static str,
    syscall_a: &str,
    syscall_b: &str,
    obj_name: &str,
    msg: &'static str,
    spec: NoiseSpec,
) -> Program {
    let mut p = ProgramBuilder::new(name);
    let mut noise = Noise::setup(&mut p, spec);
    let obj = p.static_obj(obj_name, 32);
    let obj_ptr = p.global_ptr("obj_ptr", obj);
    {
        let mut a = p.syscall_thread("A", syscall_a);
        a.func(func_a).line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        a.load_global("r10", obj_ptr);
        a.n("A1").store_ind("r10", 0, 1u64);
        a.n("A2").store_ind("r10", 8, 1u64);
        let out = a.new_label();
        a.n("A3").load_ind("r1", "r10", 16);
        a.n("A4").load_ind("r2", "r10", 24);
        a.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out);
        a.n("A5").bug_on_msg(cond_reg("r2", CmpOp::Eq, 1), msg);
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", syscall_b);
        b.func(func_b).line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        b.load_global("r10", obj_ptr);
        let out = b.new_label();
        b.n("B1").load_ind("r0", "r10", 0);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.n("B2").load_ind("r1", "r10", 8);
        b.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out);
        b.n("B3").store_ind("r10", 16, 1u64);
        b.n("B4").store_ind("r10", 24, 1u64);
        b.place(out);
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("quad builds")
}

/// #2 — packet ring frame-state assertion (four races, one ring object).
fn syz02_packet_ring(spec: NoiseSpec) -> Program {
    quad_assert(
        "syz-2-packet-ring",
        "packet_lookup_frame",
        "packet_set_ring",
        "setsockopt",
        "ioctl",
        "rx_ring",
        "frame status bit",
        spec,
    )
}

/// #3 — l2tp session UAF behind the tunnel->closing flag.
fn syz03_l2tp_uaf(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("syz-3-l2tp-uaf");
    let mut noise = Noise::setup(&mut p, spec);
    let sess = p.static_obj("l2tp_session", 16);
    let closing = p.global("tunnel->closing", 0);
    let sess_ptr = p.global_ptr("tunnel->session", sess);
    {
        let mut a = p.syscall_thread("A", "connect");
        a.func("l2tp_session_get").line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        let out = a.new_label();
        a.n("A1").load_global("r0", closing);
        a.jmp_if(cond_reg("r0", CmpOp::Ne, 0), out);
        a.n("A2").load_global("r1", sess_ptr);
        a.n("A3").store_ind("r1", 0, 1u64); // session->ref++
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "close");
        b.func("l2tp_tunnel_closeall").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        b.n("B1").store_global(closing, 1u64);
        b.n("B2").load_global("r0", sess_ptr);
        b.n("B3").free("r0");
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("syz03 builds")
}

/// #4 — the Figure 9 irqfd bug: assign vs deassign vs kworker shutdown.
fn syz04_irqfd(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("syz-4-irqfd");
    let mut noise = Noise::setup(&mut p, spec);
    let consumer_list = p.global("consumer_list", 0);
    let shutdown = {
        let mut k = p.kworker_thread("kworker");
        k.func("irqfd_shutdown").line(300);
        k.n("K1").free("r0"); // kfree(irqfd)
        k.ret();
        k.id()
    };
    {
        let mut a = p.syscall_thread("A", "ioctl");
        a.func("irq_bypass_register_consumer").line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        a.alloc("r0", 16); // irqfd = kzalloc()
        a.n("A1").list_add(consumer_list, "r0"); // published too early
        a.n("A2").store_ind("r0", 8, 7u64); // irqfd->consumer.token = ...
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "ioctl");
        b.func("kvm_irqfd_deassign").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        let out = b.new_label();
        b.n("B1").list_first("r0", consumer_list); // irqfd = list_find(list)
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.n("B2").queue_work_arg(shutdown, "r0"); // queue_work(irqfd_shutdown)
        b.place(out);
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("syz04 builds")
}

/// #5 — rxrpc local endpoint freed by its own work item (one race).
fn syz05_rxrpc(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("syz-5-rxrpc");
    let mut noise = Noise::setup(&mut p, spec);
    let local_obj = p.static_obj("rxrpc_local", 16);
    let local = p.global_ptr("rx->local", local_obj);
    let worker = {
        let mut k = p.kworker_thread("kworker");
        k.func("rxrpc_local_processor").line(300);
        noise.burst_pre(&mut k);
        k.n("K1").load_global("r0", local);
        k.n("K2").free("r0"); // last ref dropped, endpoint destroyed
        k.ret();
        k.id()
    };
    {
        let mut a = p.syscall_thread("A", "sendmsg");
        a.func("rxrpc_queue_local").line(100);
        noise.private_work(&mut a);
        a.n("A1").queue_work(worker, None);
        // The benign traffic sits *after* the spawn: only accesses past the
        // queue_work race with the worker (spawn happens-before).
        noise.burst_pre(&mut a);
        a.n("A2").load_global("r1", local);
        a.n("A3").store_ind("r1", 0, 1u64); // local->processing = 1
        noise.burst_post(&mut a);
        a.ret();
    }
    p.build().expect("syz05 builds")
}

/// #6 — BPF devmap teardown poisons buckets from an RCU callback.
fn syz06_bpf_devmap(spec: NoiseSpec) -> Program {
    // LIST_POISON-style sentinel: unmapped, faults as a GPF.
    const POISON: u64 = 0xdead_4ead_0000_0100;
    let mut p = ProgramBuilder::new("syz-6-bpf-devmap");
    let mut noise = Noise::setup(&mut p, spec);
    let buckets_obj = p.static_obj("dtab_buckets", 16);
    let map_ready = p.global("map->ready", 0);
    let elem_cnt = p.global("map->count", 0);
    let buckets = p.global_ptr("dtab->dev_index_head", buckets_obj);
    let freed = p.global("dtab->freed", 0);
    let rcu_cb = {
        let mut r = p.rcu_thread("rcu");
        r.func("dev_map_free_rcu").line(300);
        // Writes in the same order the updater reads (flag first, buckets
        // second): the two races run in parallel rather than nested.
        r.n("R1").store_global(freed, 1u64);
        r.n("R2").store_global(buckets, POISON);
        r.ret();
        r.id()
    };
    {
        let mut a = p.syscall_thread("A", "bpf");
        a.func("dev_map_hash_update_elem").line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        a.n("A1").store_global(map_ready, 1u64);
        a.n("A2").store_global(elem_cnt, 1u64);
        let out = a.new_label();
        a.n("A3").load_global("r1", freed);
        a.n("A4").load_global("r2", buckets);
        a.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out);
        a.n("A5").load_ind("r3", "r2", 0); // poisoned pointer → GPF
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "close");
        b.func("dev_map_free").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        let out = b.new_label();
        b.n("B1").load_global("r0", map_ready);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.n("B2").load_global("r1", elem_cnt);
        b.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out);
        b.n("B3").call_rcu(rcu_cb, None);
        b.place(out);
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("syz06 builds")
}

/// #7 — BLKPG partition add/delete UAF (four races on the disk/partition
/// state).
fn syz07_blkpg(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("syz-7-blkpg");
    let mut noise = Noise::setup(&mut p, spec);
    let disk = p.static_obj("gendisk", 24);
    let part = p.static_obj("hd_struct", 16);
    let disk_ptr = p.global_ptr("disk", disk);
    let part_ptr = p.global_ptr("disk->part[1]", part);
    {
        let mut a = p.syscall_thread("A", "ioctl");
        a.func("delete_partition").line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        a.load_global("r10", disk_ptr);
        a.n("A1").store_ind("r10", 0, 1u64); // disk->open_partitions++
        a.n("A2").store_ind("r10", 8, 1u64); // disk->state = RESCANNING
        let out = a.new_label();
        a.n("A3").load_ind("r1", "r10", 16); // disk->del_pending (B writes)
        a.n("A4").load_global("r2", part_ptr);
        a.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out);
        a.n("A5").store_ind("r2", 0, 1u64); // touch freed partition → UAF
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "ioctl");
        b.func("bdev_del_partition").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        b.load_global("r10", disk_ptr);
        let out = b.new_label();
        b.n("B1").load_ind("r0", "r10", 0);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.n("B2").load_ind("r1", "r10", 8);
        b.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out);
        b.n("B3").store_ind("r10", 16, 1u64); // disk->del_pending = 1
        b.load_global("r2", part_ptr);
        b.n("B4").free("r2"); // delete_partition() frees hd_struct
        b.place(out);
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("syz07 builds")
}

/// #8 — j1939 rx_kref refcount WARN: a five-race chain needing two
/// interleavings (the 15649 shape plus an extra steering flag).
fn syz08_j1939(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("syz-8-j1939");
    let mut noise = Noise::setup(&mut p, spec);
    let ndev_up = p.global("ndev->active", 1);
    let priv_pub = p.global("can->j1939_priv", 0);
    let sess_pending = p.global("priv->session_pending", 0);
    let rx_kref = p.global("priv->rx_kref", 1);
    {
        let mut a = p.syscall_thread("A", "sendmsg");
        a.func("j1939_netdev_start").line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        let out = a.new_label();
        a.n("A2").load_global("r0", ndev_up);
        a.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        a.n("A4").store_global(sess_pending, 1u64);
        a.n("A6").store_global(priv_pub, 1u64);
        a.n("A12").ref_get(rx_kref); // kref_get(&priv->rx_kref)
        a.place(out);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "close");
        b.func("j1939_netdev_stop").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        let out = b.new_label();
        let skip = b.new_label();
        b.n("B2").load_global("r0", priv_pub);
        b.jmp_if(cond_reg("r0", CmpOp::Ne, 0), out);
        b.n("B11").store_global(ndev_up, 0u64);
        b.n("B11b").load_global("r1", sess_pending);
        b.jmp_if(cond_reg("r1", CmpOp::Eq, 0), skip);
        b.n("B12").load_global("r2", priv_pub);
        b.jmp_if(cond_reg("r2", CmpOp::Eq, 0), skip);
        b.n("B17").ref_put(rx_kref); // kref_put: drops the last reference
        b.place(skip);
        noise.burst_post(&mut b);
        b.place(out);
        b.ret();
    }
    p.build().expect("syz08 builds")
}

/// #9 — seccomp filter leak: publish-after-teardown window.
fn syz09_seccomp_leak(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("syz-9-seccomp-leak");
    p.check_leaks(true);
    let mut noise = Noise::setup(&mut p, spec);
    let task_exiting = p.global("task->exit_state", 0);
    let filter_slot = p.global("task->seccomp.filter", 0);
    {
        let mut a = p.syscall_thread("A", "seccomp");
        a.func("do_seccomp").line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        a.n("A1").alloc_must_free("r0", 16); // prepare the filter
        let dying = a.new_label();
        let done = a.new_label();
        a.n("A2").load_global("r1", task_exiting);
        a.jmp_if(cond_reg("r1", CmpOp::Ne, 0), dying);
        a.n("A3").store_global_from(filter_slot, "r0"); // publish
        a.jmp(done);
        a.place(dying);
        a.free("r0"); // task dying: drop the filter ourselves
        a.place(done);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "unshare");
        b.func("seccomp_filter_release").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        b.n("B1").store_global(task_exiting, 1u64);
        let out = b.new_label();
        b.n("B2").load_global("r0", filter_slot);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.free("r0"); // release the published filter
        b.store_global(filter_slot, 0u64);
        b.place(out);
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("syz09 builds")
}

/// #10 — md_ioctl consistency WARN (four races on the mddev state).
fn syz10_md_ioctl(spec: NoiseSpec) -> Program {
    quad_assert(
        "syz-10-md",
        "md_ioctl",
        "md_set_readonly",
        "ioctl",
        "ioctl",
        "mddev",
        "mddev state consistency",
        spec,
    )
}

/// #11 — floppy schedule_bh WARN: claim vs queued command.
fn syz11_floppy(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("syz-11-floppy");
    let mut noise = Noise::setup(&mut p, spec);
    let fdc_busy = p.global("fdc_busy", 0);
    let cmd_pending = p.global("command_status", 0);
    {
        let mut a = p.syscall_thread("A", "ioctl");
        a.func("schedule_bh").line(100);
        // The racing accesses sit near the front of the claim path — the
        // paper reproduces this one within 15 schedules — while the command
        // path on the other side carries far heavier counter traffic.
        noise.burst_pre(&mut a);
        a.n("A1").store_global(fdc_busy, 1u64);
        a.n("A2").load_global("r0", cmd_pending);
        a.bug_on_msg(cond_reg("r0", CmpOp::Eq, 1), "command already pending");
        noise.private_work(&mut a);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "ioctl");
        b.func("fd_locked_ioctl").line(200);
        noise.burst_pre_n(&mut b, 220);
        let out = b.new_label();
        b.n("B1").load_global("r0", fdc_busy);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.n("B2").store_global(cmd_pending, 1u64);
        b.place(out);
        noise.private_work(&mut b);
        b.ret();
    }
    p.build().expect("syz11 builds")
}

/// #12 — sco_sock_timeout UAF: connect vs its own timer (four races).
fn syz12_sco_timer(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("syz-12-sco");
    let mut noise = Noise::setup(&mut p, spec);
    let conn_obj = p.static_obj("sco_conn", 16);
    let f_lookup = p.global("conn->state.lookup", 0);
    let f_attach = p.global("conn->state.attach", 0);
    let t_fired = p.global("timer_fired", 0);
    let conn = p.global_ptr("sk->sco_conn", conn_obj);
    let timer = {
        let mut t = p.timer_thread("sco_timer");
        t.func("sco_sock_timeout").line(300);
        noise.burst_pre(&mut t);
        let out = t.new_label();
        t.n("T1").load_global("r1", f_lookup);
        t.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out);
        t.n("T2").load_global("r2", f_attach);
        t.jmp_if(cond_reg("r2", CmpOp::Eq, 0), out);
        t.n("T3").store_global(t_fired, 1u64);
        t.load_global("r3", conn);
        t.n("T4").free("r3"); // sco_conn_del
        t.place(out);
        t.ret();
        t.id()
    };
    {
        let mut a = p.syscall_thread("A", "connect");
        a.func("sco_sock_connect").line(100);
        noise.private_work(&mut a);
        a.n("A0").arm_timer(timer, None); // sco_sock_set_timer
                                          // Counter traffic after the timer arm races with the callback.
        noise.burst_pre_n(&mut a, 160);
        a.n("A1").store_global(f_lookup, 1u64);
        a.n("A2").store_global(f_attach, 1u64);
        let out = a.new_label();
        a.n("A3").load_global("r1", t_fired);
        a.n("A4").load_global("r2", conn);
        a.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out);
        a.n("A5").store_ind("r2", 0, 1u64); // conn->sk = sk → UAF
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    p.build().expect("syz12 builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitia::{
        CausalityAnalysis,
        CausalityConfig,
        Lifs, //
    };

    #[test]
    fn syzkaller_bugs_reproduce_with_expected_shape() {
        for bug in all() {
            let prog = bug.program_scaled(0.05);
            let out = Lifs::new(prog, bug.lifs_config()).search();
            let run = out
                .failing
                .unwrap_or_else(|| panic!("{} did not reproduce", bug.id));
            assert_eq!(run.failure.kind, bug.kind, "{}", bug.id);
            assert_eq!(
                out.stats.interleaving_count, bug.expected_interleavings,
                "{}: interleaving count",
                bug.id
            );
        }
    }

    #[test]
    fn syzkaller_chains_match_table3() {
        for bug in all() {
            let prog = bug.program_scaled(0.05);
            let run = Lifs::new(prog, bug.lifs_config())
                .search()
                .failing
                .unwrap_or_else(|| panic!("{} did not reproduce", bug.id));
            let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
            assert_eq!(
                res.chain.race_count(),
                bug.expected_chain_races,
                "{}: chain {} (tested {:?})",
                bug.id,
                res.chain,
                res.tested
                    .iter()
                    .map(|t| (t.race.key(), t.verdict))
                    .collect::<Vec<_>>()
            );
            assert!(
                res.ambiguous().is_empty(),
                "{}: no Table 3 bug is ambiguous (chain {})",
                bug.id,
                res.chain
            );
        }
    }

    /// Table 3 average chain length is 3.0 (§5.2).
    #[test]
    fn average_chain_length_is_three() {
        let total: usize = all().iter().map(|b| b.expected_chain_races).sum();
        assert_eq!(total, 36);
        assert_eq!(total as f64 / 12.0, 3.0);
    }

    /// #4's chain is the Figure 9 chain: (A1 ⇒ B1) → (K1 ⇒ A2) → UAF.
    #[test]
    fn irqfd_chain_matches_fig9() {
        let bug = all().into_iter().find(|b| b.id == "#4").unwrap();
        let prog = bug.program(NoiseSpec::silent());
        let run = Lifs::new(prog, bug.lifs_config())
            .search()
            .failing
            .expect("reproduces");
        let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        let s = res.chain.to_string();
        assert_eq!(res.chain.race_count(), 2, "{s}");
        assert!(s.contains("A1 ⇒ B1"), "{s}");
        assert!(s.contains("K1 ⇒ A2"), "{s}");
        assert!(s.contains("use-after-free"), "{s}");
    }

    /// #5 reproduces on LIFS's second schedule, as in the paper.
    #[test]
    fn rxrpc_reproduces_on_second_schedule() {
        let bug = all().into_iter().find(|b| b.id == "#5").unwrap();
        let prog = bug.program(NoiseSpec::silent());
        let out = Lifs::new(prog, bug.lifs_config()).search();
        assert!(out.failing.is_some());
        assert_eq!(out.stats.schedules_executed, 2);
    }
}
