//! Seeded random program generation with planted races — the
//! "syzkaller-for-ksim" corpus (ROADMAP item 4(b)).
//!
//! [`generate`] deterministically synthesizes a small kernel scenario from
//! a seed: two (sometimes three) threads racing on lock-guarded state, a
//! refcount, a linked list, or an RCU-published pointer, with calibrated
//! benign noise injected through [`crate::noise`]. Unlike the hand-built
//! Table 2/3 models, every generated program carries machine-readable
//! *ground truth*: the [`GeneratedBug`] manifest records the planted
//! racing instruction pairs (as [`InstrAddr`]s captured at emission time
//! via [`ksim::builder::ThreadBuilder::next_addr`]), the correlation
//! class, and the failure class the race manifests. That turns the whole
//! pipeline into a closed loop a differential fuzzer can grade:
//!
//! * **agreement** — the diagnosis digest must be bit-identical across
//!   every executor configuration (prune level × memo × claim mode ×
//!   snapshot mode × worker count), and
//! * **recall** — a planted racing pair must appear in the root-cause
//!   chain.
//!
//! # Planted-race invariants
//!
//! Every family is generated so that
//!
//! 1. both serial orders of the racing threads pass (the defect is a
//!    *concurrency* bug, not a sequential one),
//! 2. a single preemption of the victim inside its racy window manifests
//!    the manifest's [`FailureKind`] (interleaving count 1, within the
//!    default LIFS budget), and
//! 3. the failing instruction executes inside
//!    [`GeneratedBug::target_func`], so the standard
//!    [`FailureTarget::in_func`] report matching applies.
//!
//! Benign noise keeps the geometric independence discipline documented in
//! [`crate::noise`]: bursts run strictly before the first and after the
//! last racing instruction of each thread, so noise races never correlate
//! with the planted ones.
//!
//! # Shrinking
//!
//! A divergence found by the fuzz driver is shrunk with [`shrink`]: the
//! generator is re-invoked with the same seed but a simpler
//! [`GenConfig`] (noise scale laddered toward silent, filler budget
//! toward zero) as long as the caller's predicate still observes the
//! divergence. The result is the smallest program that still reproduces
//! it — the seed and shrunk knobs together are the whole reproducer.

use crate::noise::{
    Noise,
    NoiseSpec, //
};
use crate::MultiVar;
use aitia::causality::chain::CausalityChain;
use aitia::lifs::{
    FailureTarget,
    LifsConfig, //
};
use ksim::builder::{
    cond_reg,
    ProgramBuilder,
    ThreadBuilder, //
};
use ksim::{
    CmpOp,
    FailureKind,
    InstrAddr,
    Program, //
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The structural family a generated bug belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Flag-guarded teardown missing the reader-side lock: check-then-use
    /// vs clear-then-free (the CVE-2019-11486 shape).
    Lock,
    /// Non-atomic check-then-get on a refcount: `refcount_inc` races a
    /// final `refcount_dec_and_test` and increments from zero.
    Refcount,
    /// Publish-then-initialize on a shared list vs a concurrent reaper
    /// (the Figure 9 irqfd shape).
    List,
    /// RCU-published pointer read outside (or with a too-short) read-side
    /// critical section vs unpublish + `call_rcu` free.
    Rcu,
}

impl Family {
    /// All families, in generation order.
    pub const ALL: [Family; 4] = [Family::Lock, Family::Refcount, Family::List, Family::Rcu];

    /// Short lowercase tag (used in program names and reports).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Family::Lock => "lock",
            Family::Refcount => "refcount",
            Family::List => "list",
            Family::Rcu => "rcu",
        }
    }
}

/// Generator knobs. [`generate`] uses the defaults; [`shrink`] ladders
/// `noise_scale` and `max_filler` down while a divergence persists.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenConfig {
    /// The seed — the program's entire identity. Same seed (plus same
    /// knobs) always yields a byte-identical program and manifest.
    pub seed: u64,
    /// Multiplier on the family's calibrated noise (0.0 = silent).
    pub noise_scale: f64,
    /// Upper bound on benign filler instructions inside racy windows.
    pub max_filler: usize,
}

impl GenConfig {
    /// The default configuration for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> GenConfig {
        GenConfig {
            seed,
            noise_scale: 1.0,
            max_filler: 3,
        }
    }
}

/// The manifest of one generated bug: the program plus its ground truth.
#[derive(Debug)]
pub struct GeneratedBug {
    /// The configuration that generated this bug.
    pub config: GenConfig,
    /// Program name (`gen-<family>-<seed>`).
    pub name: String,
    /// Structural family.
    pub family: Family,
    /// Correlation class of the racing variables (the MUVI axis).
    pub correlation: MultiVar,
    /// The failure class the planted race manifests.
    pub kind: FailureKind,
    /// The function the crash report points at (the victim's racy path).
    pub target_func: &'static str,
    /// Ground-truth racing instruction pairs, in failing-schedule order
    /// (victim-first for the window-opening race, killer-first for the
    /// failure-adjacent one). Recall holds when any of these appears in
    /// the root-cause chain, in either order.
    pub planted: Vec<(InstrAddr, InstrAddr)>,
    /// Names of the racing shared variables.
    pub racing_vars: Vec<String>,
    /// The noise actually injected.
    pub noise: NoiseSpec,
    /// The program itself.
    pub program: Arc<Program>,
}

impl GeneratedBug {
    /// The LIFS configuration for reproducing this bug: the manifest's
    /// failure class, reported in the victim's racy function. Every
    /// planted race manifests with a single preemption, so the search is
    /// bounded at two interleavings — a seed that fails to reproduce then
    /// exhausts in seconds instead of exploring depth-4 plans, which keeps
    /// the 72-cell differential matrix tractable even on hostile seeds.
    #[must_use]
    pub fn lifs_config(&self) -> LifsConfig {
        LifsConfig {
            target: Some(FailureTarget::in_func(self.kind, self.target_func)),
            max_interleavings: 2,
            max_schedules: 20_000,
            ..LifsConfig::default()
        }
    }

    /// Whether any planted racing pair appears in the chain (either
    /// order) — the fuzz driver's recall predicate.
    #[must_use]
    pub fn planted_in_chain(&self, chain: &CausalityChain) -> bool {
        self.planted
            .iter()
            .any(|&(a, b)| chain.contains(a, b) || chain.contains(b, a))
    }
}

/// Generates the bug for `seed` with default knobs.
#[must_use]
pub fn generate(seed: u64) -> GeneratedBug {
    generate_with(GenConfig::new(seed))
}

/// Generates the bug for `config` — fully deterministic: every random
/// choice is drawn from a ChaCha8 stream keyed only by `config.seed`, so
/// shrinking knobs never perturbs the structural choices.
#[must_use]
pub fn generate_with(config: GenConfig) -> GeneratedBug {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let family = Family::ALL[rng.gen_range(0..Family::ALL.len())];
    match family {
        Family::Lock => gen_lock(config, &mut rng),
        Family::Refcount => gen_refcount(config, &mut rng),
        Family::List => gen_list(config, &mut rng),
        Family::Rcu => gen_rcu(config, &mut rng),
    }
}

/// Shrinks a divergence: returns the simplest `GenConfig` (same seed)
/// for which `still_diverges` holds, laddering the noise scale toward
/// silent first, then the filler budget toward zero. The predicate is
/// re-evaluated on every candidate, so the result is always a confirmed
/// reproducer.
pub fn shrink(base: &GenConfig, still_diverges: impl Fn(&GenConfig) -> bool) -> GenConfig {
    let mut best = *base;
    loop {
        let mut candidates: Vec<GenConfig> = Vec::new();
        if best.noise_scale > 0.0 {
            let lower = if best.noise_scale <= 0.26 {
                0.0
            } else {
                best.noise_scale / 2.0
            };
            candidates.push(GenConfig {
                noise_scale: lower,
                ..best
            });
        }
        if best.max_filler > 0 {
            candidates.push(GenConfig {
                max_filler: best.max_filler / 2,
                ..best
            });
        }
        let Some(next) = candidates.into_iter().find(|c| still_diverges(c)) else {
            return best;
        };
        best = next;
    }
}

/// Syscall names the racing threads are attributed to.
const SYSCALLS: &[&str] = &["write", "ioctl", "read", "sendmsg", "close", "bpf", "mmap"];

/// Draws a noise spec calibrated for generated programs: small enough
/// that the *unpruned* LIFS search stays tractable across the whole fuzz
/// matrix, non-trivial enough that benign races really surround the
/// planted ones.
fn draw_noise(config: GenConfig, rng: &mut ChaCha8Rng) -> NoiseSpec {
    // Draw before checking the scale so the structural stream is
    // identical at every shrink level.
    let spec = NoiseSpec {
        shared_counters: rng.gen_range(2..=4),
        burst: rng.gen_range(2..=5),
        private_work: rng.gen_range(8..=24),
        seed: config.seed ^ 0x6e6f_6973,
    };
    if config.noise_scale <= 0.0 {
        NoiseSpec::silent()
    } else {
        spec.scaled(config.noise_scale)
    }
}

/// Emits `0..=max_filler` benign register-only filler instructions (drawn
/// deterministically), widening the racy window without adding memory
/// accesses the search would have to consider.
fn fillers(t: &mut ThreadBuilder<'_>, config: GenConfig, rng: &mut ChaCha8Rng) {
    // Fixed draw bound keeps the structural stream knob-independent.
    let drawn = rng.gen_range(0..=3usize);
    for i in 0..drawn.min(config.max_filler) {
        t.mov("r7", i as u64);
    }
}

/// Flag-guarded teardown: A checks `ready` then dereferences the object;
/// B (holding the teardown lock A never takes) clears `ready` and frees.
fn gen_lock(config: GenConfig, rng: &mut ChaCha8Rng) -> GeneratedBug {
    let name = format!("gen-lock-{}", config.seed);
    let mut p = ProgramBuilder::new(&name);
    let noise_spec = draw_noise(config, rng);
    let mut noise = Noise::setup(&mut p, noise_spec);

    let size = 8 * rng.gen_range(1..=3u64);
    let off = 8 * rng.gen_range(0..size / 8);
    let writes = rng.gen_bool(0.5);
    let locked_teardown = rng.gen_bool(0.5);
    let sys_a = SYSCALLS[rng.gen_range(0..SYSCALLS.len())];
    let sys_b = SYSCALLS[rng.gen_range(0..SYSCALLS.len())];
    let target_func: &'static str = if writes {
        "gen_guarded_write"
    } else {
        "gen_guarded_read"
    };

    let obj = p.static_obj("gen_obj", size);
    let ready = p.global("gen->ready", 1);
    let ptr = p.global_ptr("gen->obj", obj);
    let lock = p.lock("gen->teardown_lock");

    let (check, usage);
    {
        let mut a = p.syscall_thread("A", sys_a);
        a.func(target_func).line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        let out = a.new_label();
        check = a.next_addr();
        a.n("A1").load_global("r0", ready);
        a.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        a.n("A2").load_global("r1", ptr);
        fillers(&mut a, config, rng);
        usage = a.next_addr();
        if writes {
            a.n("A3").store_ind("r1", off, 1u64);
        } else {
            a.n("A3").load_ind("r2", "r1", off);
        }
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    let (clear, free);
    {
        let mut b = p.syscall_thread("B", sys_b);
        b.func("gen_teardown").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        if locked_teardown {
            b.lock(lock);
        }
        clear = b.next_addr();
        b.n("B1").store_global(ready, 0u64);
        b.n("B2").load_global("r0", ptr);
        free = b.next_addr();
        b.n("B3").free("r0");
        if locked_teardown {
            b.unlock(lock);
        }
        noise.burst_post(&mut b);
        b.ret();
    }

    GeneratedBug {
        config,
        name: name.clone(),
        family: Family::Lock,
        correlation: MultiVar::Loose,
        kind: FailureKind::UseAfterFree,
        target_func,
        planted: vec![(check, clear), (free, usage)],
        racing_vars: vec!["gen->ready".into()],
        noise: noise_spec,
        program: Arc::new(p.build().expect("generated lock program builds")),
    }
}

/// Non-atomic check-then-get: A reads the refcount, then increments it;
/// B's final `refcount_dec_and_test` lands between the two, so A
/// increments from zero (the kref get-after-zero WARNING).
fn gen_refcount(config: GenConfig, rng: &mut ChaCha8Rng) -> GeneratedBug {
    let name = format!("gen-refcount-{}", config.seed);
    let mut p = ProgramBuilder::new(&name);
    let noise_spec = draw_noise(config, rng);
    let mut noise = Noise::setup(&mut p, noise_spec);

    let sys_a = SYSCALLS[rng.gen_range(0..SYSCALLS.len())];
    let sys_b = SYSCALLS[rng.gen_range(0..SYSCALLS.len())];
    let target_func: &'static str = "gen_kref_get_path";

    let refs = p.global("gen->refs", 1);

    let (check, get);
    {
        let mut a = p.syscall_thread("A", sys_a);
        a.func(target_func).line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        let out = a.new_label();
        check = a.next_addr();
        a.n("A1").load_global("r0", refs);
        a.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        fillers(&mut a, config, rng);
        get = a.next_addr();
        a.n("A2").ref_get(refs);
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    let put;
    {
        let mut b = p.syscall_thread("B", sys_b);
        b.func("gen_kref_put_path").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        put = b.next_addr();
        b.n("B1").ref_put_test("r0", refs);
        noise.burst_post(&mut b);
        b.ret();
    }

    GeneratedBug {
        config,
        name: name.clone(),
        family: Family::Refcount,
        correlation: MultiVar::No,
        kind: FailureKind::RefcountWarning,
        target_func,
        planted: vec![(check, put), (put, get)],
        racing_vars: vec!["gen->refs".into()],
        noise: noise_spec,
        program: Arc::new(p.build().expect("generated refcount program builds")),
    }
}

/// Publish-then-initialize: A adds a fresh object to a shared list before
/// finishing its initialization; B (sometimes via a kworker) reaps the
/// list concurrently and frees the half-initialized object.
fn gen_list(config: GenConfig, rng: &mut ChaCha8Rng) -> GeneratedBug {
    let name = format!("gen-list-{}", config.seed);
    let mut p = ProgramBuilder::new(&name);
    let noise_spec = draw_noise(config, rng);
    let mut noise = Noise::setup(&mut p, noise_spec);

    let size = 8 * rng.gen_range(2..=3u64);
    let off = 8 * rng.gen_range(0..size / 8);
    let via_kworker = rng.gen_bool(0.5);
    let sys_a = SYSCALLS[rng.gen_range(0..SYSCALLS.len())];
    let sys_b = SYSCALLS[rng.gen_range(0..SYSCALLS.len())];
    let target_func: &'static str = "gen_publish_path";

    let list = p.global("gen_list", 0);

    let kworker = if via_kworker {
        let mut k = p.kworker_thread("kworker");
        k.func("gen_reap_work").line(300);
        let f = k.next_addr();
        k.n("K1").free("r0");
        k.ret();
        Some((k.id(), f))
    } else {
        None
    };

    let (publish, init);
    {
        let mut a = p.syscall_thread("A", sys_a);
        a.func(target_func).line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        a.alloc("r0", size);
        publish = a.next_addr();
        a.n("A1").list_add(list, "r0");
        fillers(&mut a, config, rng);
        init = a.next_addr();
        a.n("A2").store_ind("r0", off, 7u64);
        noise.burst_post(&mut a);
        a.ret();
    }
    let (take, free);
    {
        let mut b = p.syscall_thread("B", sys_b);
        b.func("gen_reap_path").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        let out = b.new_label();
        take = b.next_addr();
        b.n("B1").list_first("r1", list);
        b.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out);
        b.n("B2").list_del(list, "r1");
        if let Some((k, reap_free)) = kworker {
            b.queue_work_arg(k, "r1");
            free = reap_free;
        } else {
            b.mov("r0", 0u64); // keep shapes aligned across the variant
            free = b.next_addr();
            b.n("B3").free("r1");
        }
        b.place(out);
        noise.burst_post(&mut b);
        b.ret();
    }

    GeneratedBug {
        config,
        name: name.clone(),
        family: Family::List,
        correlation: MultiVar::Loose,
        kind: FailureKind::UseAfterFree,
        target_func,
        planted: vec![(publish, take), (free, init)],
        racing_vars: vec!["gen_list".into()],
        noise: noise_spec,
        program: Arc::new(p.build().expect("generated list program builds")),
    }
}

/// RCU misuse: A reads the published pointer and dereferences it without
/// a (long enough) read-side critical section; B unpublishes and hands
/// the object to `call_rcu`, whose callback frees it inside A's window.
fn gen_rcu(config: GenConfig, rng: &mut ChaCha8Rng) -> GeneratedBug {
    let name = format!("gen-rcu-{}", config.seed);
    let mut p = ProgramBuilder::new(&name);
    let noise_spec = draw_noise(config, rng);
    let mut noise = Noise::setup(&mut p, noise_spec);

    let size = 8 * rng.gen_range(1..=3u64);
    let off = 8 * rng.gen_range(0..size / 8);
    // The two ways real readers get this wrong: no critical section at
    // all, or a correctly-locked first read followed by a racy *re-read*
    // after the unlock (the double-check bug). Either way the decisive
    // pointer load happens outside any read-side critical section, so the
    // grace period cannot protect the dereference window — and the load
    // is a conflicting memory access, i.e. a preemption anchor LIFS's
    // observable-point model can actually schedule after.
    let short_cs = rng.gen_bool(0.5);
    let sys_a = SYSCALLS[rng.gen_range(0..SYSCALLS.len())];
    let sys_b = SYSCALLS[rng.gen_range(0..SYSCALLS.len())];
    let target_func: &'static str = "gen_rcu_reader";

    let obj = p.static_obj("gen_rcu_obj", size);
    let ptr = p.global_ptr("gen->rcu_ptr", obj);

    let cb_free;
    let cb = {
        let mut r = p.rcu_thread("rcu_cb");
        r.func("gen_rcu_free_cb").line(300);
        cb_free = r.next_addr();
        r.n("R1").free("r0");
        r.ret();
        r.id()
    };

    let (read, deref);
    {
        let mut a = p.syscall_thread("A", sys_a);
        a.func(target_func).line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        let out = a.new_label();
        if short_cs {
            // The locked first read is correct but useless: the reader
            // re-reads the pointer after leaving the critical section.
            a.rcu_read_lock();
            a.load_global("r1", ptr);
            a.rcu_read_unlock();
        }
        read = a.next_addr();
        a.n("A1").load_global("r1", ptr);
        a.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out);
        fillers(&mut a, config, rng);
        deref = a.next_addr();
        a.n("A2").load_ind("r2", "r1", off);
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    let unpublish;
    {
        let mut b = p.syscall_thread("B", sys_b);
        b.func("gen_rcu_updater").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        b.n("B1").load_global("r0", ptr);
        unpublish = b.next_addr();
        b.n("B2").store_global(ptr, 0u64);
        b.n("B3").call_rcu(cb, Some("r0"));
        noise.burst_post(&mut b);
        b.ret();
    }

    GeneratedBug {
        config,
        name: name.clone(),
        family: Family::Rcu,
        correlation: MultiVar::No,
        kind: FailureKind::UseAfterFree,
        target_func,
        planted: vec![(read, unpublish), (cb_free, deref)],
        racing_vars: vec!["gen->rcu_ptr".into()],
        noise: noise_spec,
        program: Arc::new(p.build().expect("generated rcu program builds")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..16 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.name, b.name);
            assert_eq!(a.family, b.family);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.planted, b.planted);
            assert_eq!(a.noise, b.noise);
            assert_eq!(format!("{:?}", a.program), format!("{:?}", b.program));
        }
    }

    #[test]
    fn knobs_do_not_perturb_structure() {
        // Shrinking noise/filler must keep the family, planted variables,
        // and failure class stable — only the program size may change.
        for seed in 0..16 {
            let full = generate(seed);
            let bare = generate_with(GenConfig {
                noise_scale: 0.0,
                max_filler: 0,
                ..GenConfig::new(seed)
            });
            assert_eq!(full.family, bare.family);
            assert_eq!(full.kind, bare.kind);
            assert_eq!(full.racing_vars, bare.racing_vars);
            assert!(
                full.program.progs[0].instrs.len() >= bare.program.progs[0].instrs.len(),
                "shrunk programs never grow"
            );
        }
    }

    #[test]
    fn every_family_is_reachable() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            seen.insert(generate(seed).family);
        }
        assert_eq!(seen.len(), Family::ALL.len(), "all families generated");
    }

    #[test]
    fn both_serial_orders_pass() {
        // Planted-race invariant 1: the defect needs a preemption; either
        // serial order of the initial threads runs to completion cleanly.
        use ksim::engine::Engine;
        use ksim::thread::ThreadId;
        for seed in 0..48 {
            let bug = generate_with(GenConfig {
                noise_scale: 0.0,
                ..GenConfig::new(seed)
            });
            for order in [[0u32, 1u32], [1, 0]] {
                let mut e = Engine::new(Arc::clone(&bug.program));
                for &t in &order {
                    e.run_to_completion(ThreadId(t));
                }
                // Background threads (kworker, RCU callbacks) spawned by
                // the second thread still need to drain.
                let failure = e.run_all_serial();
                assert!(
                    failure.is_none(),
                    "seed {seed} ({}) fails serially in order {order:?}: {failure:?}",
                    bug.name,
                );
            }
        }
    }

    #[test]
    fn shrink_converges_to_the_simplest_still_failing_config() {
        let base = GenConfig::new(42);
        // A divergence that persists at every size: shrink bottoms out.
        let min = shrink(&base, |_| true);
        assert_eq!(min.noise_scale, 0.0);
        assert_eq!(min.max_filler, 0);
        // A divergence that needs the noise: noise survives, filler goes.
        let noisy = shrink(&base, |c| c.noise_scale >= 1.0);
        assert!((noisy.noise_scale - 1.0).abs() < f64::EPSILON);
        assert_eq!(noisy.max_filler, 0);
        // No shrinking possible: the base comes back unchanged.
        let stuck = shrink(&base, |c| *c == base);
        assert_eq!(stuck, base);
    }
}
