//! Calibrated benign-race noise.
//!
//! Real kernel executions are dominated by memory traffic that has nothing
//! to do with the failure: statistics counters updated racily on purpose
//! (§2.3), flag bits, and large amounts of thread-private work. The paper's
//! conciseness experiment (§5.2) quantifies exactly this — an average of
//! 9592.8 memory-accessing instructions and 108.4 individual data races per
//! failed execution, against 3.0 races in the final chain.
//!
//! This module injects that traffic into bug models deterministically:
//!
//! * **shared counters** (`fetch_add` on globals touched by several
//!   threads) — genuine benign data races that LIFS must consider as
//!   preemption candidates and Causality Analysis must test and discard;
//! * **flag bits** (racy `fetch_add` by powers of two, modeling
//!   different-bit flag updates);
//! * **private work loops** (loads/stores over a thread-private buffer) —
//!   bulk memory traffic that partial-order reduction prunes away.
//!
//! All placement is seeded; the same spec always produces the same program.

use ksim::{
    builder::{
        cond_reg,
        ProgramBuilder,
        ThreadBuilder, //
    },
    CmpOp, GlobalId,
};
use rand::{
    Rng,
    SeedableRng, //
};
use rand_chacha::ChaCha8Rng;

/// Noise sizing for one bug model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoiseSpec {
    /// Number of shared statistics counters declared.
    pub shared_counters: usize,
    /// Shared-counter updates emitted per burst call.
    pub burst: usize,
    /// Iterations of the private work loop per thread.
    pub private_work: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl NoiseSpec {
    /// A spec with everything scaled by `f` (tests run at small scale,
    /// benches at calibration scale).
    #[must_use]
    pub fn scaled(&self, f: f64) -> NoiseSpec {
        let s = |v: usize| ((v as f64 * f).round() as usize).max(if v > 0 { 1 } else { 0 });
        NoiseSpec {
            shared_counters: s(self.shared_counters),
            burst: s(self.burst),
            private_work: s(self.private_work),
            seed: self.seed,
        }
    }

    /// No noise at all.
    #[must_use]
    pub fn silent() -> NoiseSpec {
        NoiseSpec {
            shared_counters: 0,
            burst: 0,
            private_work: 0,
            seed: 0,
        }
    }
}

impl Default for NoiseSpec {
    fn default() -> Self {
        NoiseSpec {
            shared_counters: 24,
            burst: 12,
            private_work: 200,
            seed: 0xA171A,
        }
    }
}

/// The noise injector: declares counters up front, then emits bursts into
/// thread builders at the points a bug model chooses.
///
/// Counters come from two disjoint pools. **Prologue** bursts
/// ([`Noise::burst_pre`]) must be emitted before a thread's first racing
/// instruction and **epilogue** bursts ([`Noise::burst_post`]) after its
/// last. The discipline keeps every benign race geometrically independent
/// of the bug races: a prologue/epilogue noise race can never *surround* a
/// root-cause race (paper Figure 7), so flipping it neither averts the
/// failure nor raises a spurious ambiguity verdict — it is judged benign,
/// exactly like the kernel's statistics counters.
pub struct Noise {
    rng: ChaCha8Rng,
    counters_pre: Vec<GlobalId>,
    counters_post: Vec<GlobalId>,
    spec: NoiseSpec,
    next_private: u32,
}

impl Noise {
    /// Declares the shared counters on the program and returns the injector.
    #[must_use]
    pub fn setup(p: &mut ProgramBuilder, spec: NoiseSpec) -> Noise {
        let n_pre = spec.shared_counters - spec.shared_counters / 3;
        let counters_pre = (0..n_pre)
            .map(|i| p.global(&format!("stats[{i}]"), 0))
            .collect();
        let counters_post = (n_pre..spec.shared_counters)
            .map(|i| p.global(&format!("stats[{i}]"), 0))
            .collect();
        Noise {
            rng: ChaCha8Rng::seed_from_u64(spec.seed),
            counters_pre,
            counters_post,
            spec,
            next_private: 0,
        }
    }

    fn burst_from(&mut self, t: &mut ThreadBuilder<'_>, pool: usize) {
        let n = self.spec.burst;
        self.burst_from_n(t, pool, n);
    }

    fn burst_from_n(&mut self, t: &mut ThreadBuilder<'_>, pool: usize, n: usize) {
        let counters = if pool == 0 {
            &self.counters_pre
        } else {
            &self.counters_post
        };
        if counters.is_empty() {
            return;
        }
        for _ in 0..n {
            let c = counters[self.rng.gen_range(0..counters.len())];
            // Mix plain counter bumps with flag-bit style updates.
            let inc: u64 = if self.rng.gen_bool(0.25) {
                1u64 << self.rng.gen_range(0..8)
            } else {
                1
            };
            t.fetch_add_global(c, inc);
        }
    }

    /// Emits one prologue burst of benign-race counter updates. Only valid
    /// *before* the thread's first racing instruction.
    pub fn burst_pre(&mut self, t: &mut ThreadBuilder<'_>) {
        self.burst_from(t, 0);
    }

    /// Emits one epilogue burst of benign-race counter updates. Only valid
    /// *after* the thread's last racing instruction.
    pub fn burst_post(&mut self, t: &mut ThreadBuilder<'_>) {
        self.burst_from(t, 1);
    }

    /// A prologue burst with an explicit instruction count — some bugs have
    /// heavily asymmetric benign traffic (the paper's #11 reproduces within
    /// 15 schedules yet its diagnosis tests 627, so one side must carry far
    /// more counter updates than the other).
    pub fn burst_pre_n(&mut self, t: &mut ThreadBuilder<'_>, n: usize) {
        self.burst_from_n(t, 0, n);
    }

    /// Emits a private work loop (bulk non-conflicting memory traffic):
    /// allocates a thread-private buffer and sweeps it `private_work` times.
    ///
    /// Registers `r13`/`r14` are reserved as the loop counter and buffer
    /// pointer.
    pub fn private_work(&mut self, t: &mut ThreadBuilder<'_>) {
        let n = self.spec.private_work;
        if n == 0 {
            return;
        }
        self.next_private += 1;
        // A static scratch buffer: its address is stable across runs, so
        // schedule exploration recognizes the traffic as thread-private no
        // matter which schedules it has observed.
        let buf = t.scratch_buffer(&format!("scratch{}", self.next_private), 8);
        t.load_global("r14", buf);
        t.mov("r13", 0u64);
        let top = t.new_label();
        let done = t.new_label();
        t.place(top);
        t.jmp_if(cond_reg("r13", CmpOp::Ge, n as u64), done);
        t.fetch_add_ind("r14", 0, 1u64);
        t.op("r13", ksim::instr::BinOp::Add, "r13", 1u64);
        t.jmp(top);
        t.place(done);
    }

    /// The declared prologue-pool counters (for tests).
    #[must_use]
    pub fn pre_counters(&self) -> &[GlobalId] {
        &self.counters_pre
    }

    /// The declared epilogue-pool counters (for tests).
    #[must_use]
    pub fn post_counters(&self) -> &[GlobalId] {
        &self.counters_post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitia::{
        CausalityAnalysis,
        CausalityConfig,
        Lifs,
        LifsConfig, //
    };
    use std::sync::Arc;

    /// Noise around a real bug must not change the diagnosis.
    #[test]
    fn noise_does_not_change_the_chain() {
        let build = |spec: NoiseSpec| {
            let mut p = ProgramBuilder::new("fig1-noise");
            let mut noise = Noise::setup(&mut p, spec);
            let obj = p.static_obj("obj", 8);
            let ptr_valid = p.global("ptr_valid", 0);
            let ptr = p.global_ptr("ptr", obj);
            {
                let mut a = p.syscall_thread("A", "writer");
                noise.burst_pre(&mut a);
                a.n("A1").store_global(ptr_valid, 1u64);
                a.n("A2").load_global("r0", ptr);
                a.load_ind("r1", "r0", 0);
                noise.burst_post(&mut a);
                a.ret();
            }
            {
                let mut b = p.syscall_thread("B", "clearer");
                noise.burst_pre(&mut b);
                let out = b.new_label();
                b.n("B1").load_global("r0", ptr_valid);
                b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
                b.n("B2").store_global(ptr, 0u64);
                b.place(out);
                b.ret();
            }
            Arc::new(p.build().unwrap())
        };
        let diagnose = |spec| {
            let run = Lifs::new(build(spec), LifsConfig::default())
                .search()
                .failing
                .expect("reproduces");
            CausalityAnalysis::new(CausalityConfig::default()).analyze(&run)
        };
        let quiet = diagnose(NoiseSpec::silent());
        let noisy = diagnose(NoiseSpec {
            shared_counters: 6,
            burst: 4,
            private_work: 0,
            seed: 7,
        });
        assert_eq!(quiet.chain.race_count(), noisy.chain.race_count());
        assert!(noisy.tested.len() > quiet.tested.len());
        assert!(!noisy.benign().is_empty());
    }

    #[test]
    fn private_work_is_pruned_by_por() {
        let mut p = ProgramBuilder::new("private");
        let spec = NoiseSpec {
            shared_counters: 0,
            burst: 0,
            private_work: 20,
            seed: 1,
        };
        let mut noise = Noise::setup(&mut p, spec);
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "w");
            noise.private_work(&mut a);
            a.store_global(x, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "r");
            b.load_global("r0", x);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let out = Lifs::new(prog, LifsConfig::default()).search();
        // No failure exists; the private loop points are pruned.
        assert!(out.failing.is_none());
        assert!(out.stats.pruned_nonconflicting > 0);
    }

    #[test]
    fn scaled_spec_shrinks() {
        let spec = NoiseSpec::default().scaled(0.5);
        assert_eq!(spec.shared_counters, 12);
        assert_eq!(spec.burst, 6);
        assert_eq!(spec.private_work, 100);
        let tiny = NoiseSpec::default().scaled(0.0001);
        assert_eq!(tiny.burst, 1, "nonzero fields stay nonzero");
    }

    #[test]
    fn noise_is_deterministic() {
        let build = || {
            let mut p = ProgramBuilder::new("det");
            let mut n = Noise::setup(&mut p, NoiseSpec::default());
            {
                let mut a = p.syscall_thread("A", "w");
                n.burst_pre(&mut a);
                n.burst_post(&mut a);
                a.ret();
            }
            p.build().unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a.progs[0].instrs, b.progs[0].instrs);
    }
}
