//! `corpus` — the paper's 22 real-world kernel concurrency bugs, modeled.
//!
//! Each bug of the paper's evaluation (Table 2: ten CVEs; Table 3: twelve
//! Syzkaller-reported bugs) is modeled as a `ksim` program reproducing the
//! bug's *race structure*: the racing variables and their correlation
//! (single-variable, tightly correlated multi-variable, or loosely
//! correlated multi-variable), race-steered control flows, involvement of
//! kernel background threads, the interleaving count required to manifest,
//! and the failure class. Models are documented against the public analyses
//! (CVE reports, syzkaller dashboard entries, and the kernel patches the
//! paper cites).
//!
//! Every model also carries:
//!
//! * a calibrated [`noise::NoiseSpec`] injecting benign races and private
//!   memory traffic, so the conciseness experiment (§5.2) is meaningful;
//! * a [`khist::ExecHistory`] generator standing in for the Syzkaller
//!   trace + coredump input (§4.2);
//! * the paper's reported numbers ([`PaperRow`]) for paper-vs-measured
//!   comparison in `EXPERIMENTS.md`.

//! # Example
//!
//! ```
//! // Reproduce and diagnose a Table 2 CVE with its calibrated noise
//! // scaled down for a quick run.
//! let bug = corpus::cves()
//!     .into_iter()
//!     .find(|b| b.id == "CVE-2017-2671")
//!     .unwrap();
//! let run = aitia::Lifs::new(bug.program_scaled(0.05), bug.lifs_config())
//!     .search()
//!     .failing
//!     .expect("reproduces");
//! assert_eq!(run.failure.kind, bug.kind);
//! ```

#![warn(missing_docs)]

pub mod cve;
pub mod figures;
pub mod generate;
pub mod noise;
pub mod syz;

use aitia::lifs::{
    FailureTarget,
    LifsConfig, //
};
use khist::{
    ExecHistory,
    FailureInfo,
    InvokeSource,
    KthreadEvent,
    KthreadKind,
    ReportedContext,
    SyscallRecord, //
};
use ksim::{
    FailureKind,
    Program,
    ThreadKind, //
};
use noise::NoiseSpec;
use std::sync::Arc;

/// Multi-variable classification of a bug (Tables 2/3; §2.1–§2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiVar {
    /// A single racing variable.
    No,
    /// Multiple, tightly correlated variables (MUVI's assumption holds).
    Tight,
    /// Multiple, loosely correlated variables (the asterisked rows).
    Loose,
}

impl MultiVar {
    /// Whether the bug involves more than one racing variable.
    #[must_use]
    pub fn is_multi(self) -> bool {
        !matches!(self, MultiVar::No)
    }
}

/// The paper's reported measurements for one bug.
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// LIFS elapsed seconds.
    pub lifs_time_s: f64,
    /// LIFS schedules.
    pub lifs_schedules: usize,
    /// Interleaving count at reproduction.
    pub interleavings: u32,
    /// Causality Analysis elapsed seconds.
    pub ca_time_s: f64,
    /// Causality Analysis schedules.
    pub ca_schedules: usize,
    /// Races in the chain (Table 3 only; `None` for Table 2 rows).
    pub chain_races: Option<usize>,
}

/// One modeled bug.
pub struct BugModel {
    /// Identifier (`"CVE-2017-15649"` or `"#4"`).
    pub id: &'static str,
    /// Kernel subsystem (the table column).
    pub subsystem: &'static str,
    /// Failure description (the Table 3 "bug type" column).
    pub bug_type: &'static str,
    /// Multi-variable classification.
    pub multi_variable: MultiVar,
    /// The failure class the model manifests.
    pub kind: FailureKind,
    /// The kernel function the crash report points at.
    pub target_func: Option<&'static str>,
    /// Expected chain length (races in the causality chain).
    pub expected_chain_races: usize,
    /// Expected interleaving count.
    pub expected_interleavings: u32,
    /// Whether a kernel background thread participates.
    pub kthread: Option<KthreadKind>,
    /// The paper's reported numbers.
    pub paper: PaperRow,
    /// The racing system calls (the modeled trace's concurrent entries).
    pub syscalls: &'static [&'static str],
    /// Names of the racing *global* variables (for the MUVI correlation
    /// experiment; heap objects are omitted).
    pub racing_vars: &'static [&'static str],
    /// Calibrated noise for bench-scale runs.
    pub default_noise: NoiseSpec,
    /// Program builder.
    pub build: fn(NoiseSpec) -> Program,
    /// One-paragraph description of the real bug and the model.
    pub doc: &'static str,
}

impl BugModel {
    /// Builds the program with explicit noise.
    #[must_use]
    pub fn program(&self, spec: NoiseSpec) -> Arc<Program> {
        Arc::new((self.build)(spec))
    }

    /// Builds the program with the calibrated default noise.
    #[must_use]
    pub fn program_default(&self) -> Arc<Program> {
        self.program(self.default_noise)
    }

    /// Builds the program with noise scaled by `f` (tests use small scales).
    #[must_use]
    pub fn program_scaled(&self, f: f64) -> Arc<Program> {
        self.program(self.default_noise.scaled(f))
    }

    /// The LIFS configuration for this bug, with the failure target taken
    /// from the modeled crash report.
    #[must_use]
    pub fn lifs_config(&self) -> LifsConfig {
        // Leak and watchdog reports blame the whole run, not a faulting
        // instruction, so they match by kind alone.
        let by_kind_only = matches!(self.kind, FailureKind::MemoryLeak | FailureKind::HungTask);
        let target = Some(match self.target_func {
            Some(f) if !by_kind_only => FailureTarget::in_func(self.kind, f),
            _ => FailureTarget::kind(self.kind),
        });
        LifsConfig {
            target,
            ..LifsConfig::default()
        }
    }

    /// A modeled Syzkaller execution history for this bug: the concurrent
    /// syscalls (plus the background thread, when one participates), the
    /// fd-closure calls, and the crash-report extract.
    #[must_use]
    pub fn history(&self) -> ExecHistory {
        let mut h = ExecHistory::new();
        let mut open = SyscallRecord {
            ts: 0,
            dur: 10,
            task: 1,
            name: "open".into(),
            args: vec![],
            fd: Some(3),
            ret: 3,
        };
        open.args.push(0);
        h.push_syscall(open);
        // The two (or one) racing syscalls, overlapping in time.
        let prog_names: Vec<&'static str> = self.syscalls.to_vec();
        let mut ts = 1000;
        for (i, name) in prog_names.iter().enumerate() {
            h.push_syscall(SyscallRecord {
                ts: ts + (i as u64) * 20,
                dur: 300,
                task: 1 + i as u32,
                name: (*name).to_string(),
                args: vec![i as u64],
                fd: Some(3),
                ret: 0,
            });
        }
        ts += 400;
        if let Some(kind) = self.kthread {
            h.push_kthread(KthreadEvent {
                ts: ts - 250,
                dur: 200,
                kind,
                work: 42,
                source: InvokeSource::Syscall { task: 1 },
                func: self.target_func.unwrap_or("worker_fn").to_string(),
            });
        }
        let mut contexts: Vec<ReportedContext> = prog_names
            .iter()
            .enumerate()
            .map(|(i, n)| ReportedContext::Task {
                task: 1 + i as u32,
                syscall: Some((*n).to_string()),
            })
            .collect();
        if self.kthread.is_some() {
            contexts.push(ReportedContext::Kthread {
                desc: "kworker/1:2".into(),
            });
        }
        h.set_failure(FailureInfo {
            symptom: format!("{} in {}", self.kind, self.target_func.unwrap_or("unknown")),
            location: self.target_func.unwrap_or("unknown").to_string(),
            ts,
            contexts,
        });
        h
    }
}

/// A profiling workload for the MUVI correlation experiment (§2.2/§5.3):
/// the bug's program extended with regular-usage threads that reflect how
/// the racing variables are accessed system-wide. Tightly correlated
/// variables gain a thread touching them *together* (the rest of the kernel
/// also accesses them as a pair); loosely correlated variables gain one
/// thread per variable touching it *alone* (most kernel paths use only one
/// of the two — the defining property of looseness).
#[must_use]
pub fn profile_program(bug: &BugModel, spec: NoiseSpec) -> Arc<Program> {
    use ksim::instr::{
        AddrExpr,
        Instr,
        InstrMeta,
        Reg,
        ThreadProgId, //
    };
    let mut prog = (bug.build)(spec);
    let gid_of = |p: &Program, name: &str| {
        p.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| ksim::GlobalId(i as u32))
    };
    let vars: Vec<ksim::GlobalId> = bug
        .racing_vars
        .iter()
        .filter_map(|v| gid_of(&prog, v))
        .collect();
    let add_thread = |prog: &mut Program, name: &str, uses: &[ksim::GlobalId]| {
        let mut instrs = Vec::new();
        for _rep in 0..20 {
            for &g in uses {
                instrs.push(Instr::Load {
                    dst: Reg(0),
                    addr: AddrExpr::Global(g),
                });
            }
        }
        instrs.push(Instr::Ret);
        let n = instrs.len();
        let id = ThreadProgId(prog.progs.len() as u16);
        prog.progs.push(ksim::program::ThreadProg {
            name: name.to_string(),
            kind: ThreadKind::Syscall {
                name: "read".into(),
            },
            instrs,
            meta: vec![InstrMeta::default(); n],
            reg_count: 1,
        });
        prog.initial.push(id);
    };
    match bug.multi_variable {
        MultiVar::Tight => {
            // System-wide, the pair travels together.
            add_thread(&mut prog, "usage", &vars);
        }
        MultiVar::Loose => {
            // System-wide, each variable is mostly used alone.
            for (i, &v) in vars.iter().enumerate() {
                add_thread(&mut prog, &format!("usage{i}"), &[v]);
            }
        }
        MultiVar::No => {}
    }
    Arc::new(prog)
}

/// A [`aitia::manager::SliceResolver`] over the whole corpus: a slice
/// resolves to the bug whose racing system calls it contains.
pub struct CorpusResolver {
    /// Noise scale applied to resolved programs.
    pub scale: f64,
}

impl aitia::manager::SliceResolver for CorpusResolver {
    fn resolve(&self, slice: &khist::Slice) -> Option<Arc<Program>> {
        let slice_calls: Vec<&str> = slice
            .threads
            .iter()
            .filter_map(|t| match t {
                khist::Entry::Syscall(s) => Some(s.name.as_str()),
                khist::Entry::Kthread(_) => None,
            })
            .collect();
        let has_kthread = slice
            .threads
            .iter()
            .any(|t| matches!(t, khist::Entry::Kthread(_)));
        all_bugs()
            .into_iter()
            .find(|bug| {
                bug.kthread.is_some() == has_kthread
                    && bug.syscalls.len() == slice_calls.len()
                    && bug.syscalls.iter().all(|c| slice_calls.contains(c))
            })
            .map(|bug| bug.program_scaled(self.scale))
    }
}

/// The ten CVE bugs of Table 2.
#[must_use]
pub fn cves() -> Vec<BugModel> {
    cve::all()
}

/// The twelve Syzkaller bugs of Table 3.
#[must_use]
pub fn syzkaller() -> Vec<BugModel> {
    syz::all()
}

/// All 22 bugs.
#[must_use]
pub fn all_bugs() -> Vec<BugModel> {
    let mut v = cves();
    v.extend(syzkaller());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_22_bugs() {
        assert_eq!(cves().len(), 10);
        assert_eq!(syzkaller().len(), 12);
        assert_eq!(all_bugs().len(), 22);
    }

    #[test]
    fn all_programs_validate_and_run_serially_clean() {
        for bug in all_bugs() {
            let prog = bug.program(NoiseSpec::silent());
            prog.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", bug.id));
        }
    }

    #[test]
    fn multi_variable_split_matches_paper() {
        // Table 2: 6 of 10 involve multiple variables.
        let multi2 = cves()
            .iter()
            .filter(|b| b.multi_variable.is_multi())
            .count();
        assert_eq!(multi2, 6);
        // Table 3: 6 of 12 multi-variable, 3 of them loosely correlated.
        let t3 = syzkaller();
        let multi3 = t3.iter().filter(|b| b.multi_variable.is_multi()).count();
        let loose3 = t3
            .iter()
            .filter(|b| b.multi_variable == MultiVar::Loose)
            .count();
        assert_eq!(multi3, 6);
        assert_eq!(loose3, 3);
    }

    #[test]
    fn histories_slice_to_at_most_three_threads() {
        for bug in all_bugs() {
            let h = bug.history();
            let slices = khist::slices(&h);
            assert!(!slices.is_empty(), "{}: no slices", bug.id);
            for s in &slices {
                assert!(s.width() <= khist::MAX_SLICE_THREADS);
            }
            if bug.kthread.is_some() {
                assert!(
                    slices.iter().any(|s| s
                        .threads
                        .iter()
                        .any(|t| matches!(t, khist::Entry::Kthread(_)))),
                    "{}: kthread missing from slices",
                    bug.id
                );
            }
        }
    }

    #[test]
    fn kthread_split_matches_table3() {
        // Table 3: eight bugs are two-syscall races, four involve a kernel
        // background thread.
        let with_kthread = syzkaller().iter().filter(|b| b.kthread.is_some()).count();
        assert_eq!(with_kthread, 4);
    }
}

#[cfg(test)]
mod resolver_tests {
    use super::*;

    #[test]
    fn profile_programs_add_usage_threads_for_multi_bugs() {
        for bug in all_bugs() {
            let base = bug.program(NoiseSpec::silent());
            let profile = profile_program(&bug, NoiseSpec::silent());
            match bug.multi_variable {
                MultiVar::No => {
                    assert_eq!(profile.initial.len(), base.initial.len(), "{}", bug.id);
                }
                MultiVar::Tight => {
                    assert_eq!(
                        profile.initial.len(),
                        base.initial.len() + 1,
                        "{}: one co-usage thread",
                        bug.id
                    );
                }
                MultiVar::Loose => {
                    assert!(
                        profile.initial.len() > base.initial.len(),
                        "{}: solo-usage threads",
                        bug.id
                    );
                }
            }
            profile
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", bug.id));
        }
    }

    #[test]
    fn resolver_matches_each_bugs_own_history() {
        use aitia::manager::SliceResolver;
        let resolver = CorpusResolver { scale: 0.0 };
        let mut resolved = 0;
        for bug in all_bugs() {
            let history = bug.history();
            let found = khist::slices(&history)
                .iter()
                .any(|s| resolver.resolve(s).is_some());
            if found {
                resolved += 1;
            }
        }
        // Every bug's own trace must resolve to *some* corpus program
        // (several bugs share syscall signatures, so the resolved program
        // may model a sibling — LIFS's failure target disambiguates).
        assert_eq!(resolved, all_bugs().len());
    }
}
