//! The ten CVE concurrency failures of Table 2.
//!
//! Each model reproduces the published bug's *race structure* — the racing
//! variables, their correlation, the race-steered control flows, the
//! interleaving count required, and the failure class — against the public
//! CVE analyses and the kernel patches. The kernel code around the race is
//! abstracted to the instructions AITIA actually reasons about.

use crate::{
    noise::{
        Noise,
        NoiseSpec, //
    },
    BugModel, MultiVar, PaperRow,
};
use ksim::{
    builder::{
        cond_reg,
        ProgramBuilder, //
    },
    CmpOp, FailureKind, Program,
};

/// All ten Table 2 models, in table order.
#[must_use]
pub fn all() -> Vec<BugModel> {
    vec![
        BugModel {
            id: "CVE-2019-11486",
            subsystem: "TTY",
            bug_type: "Use-after-free access",
            multi_variable: MultiVar::No,
            kind: FailureKind::UseAfterFree,
            target_func: Some("slcan_transmit"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 44.7,
                lifs_schedules: 225,
                interleavings: 1,
                ca_time_s: 497.6,
                ca_schedules: 130,
                chain_races: None,
            },
            syscalls: &["write", "ioctl"],
            racing_vars: &["tty->ldisc_ready"],
            default_noise: NoiseSpec {
                shared_counters: 30,
                burst: 52,
                private_work: 1500,
                seed: 11486,
            },
            build: cve_2019_11486,
            doc: "The slcan/slip line-discipline teardown races with a \
                  concurrent write: TIOCSETD tears the ldisc state down and \
                  frees it while the write path still dereferences it. The \
                  model guards the write path on `ldisc_ready` and frees the \
                  ldisc object on the ioctl path.",
        },
        BugModel {
            id: "CVE-2019-6974",
            subsystem: "KVM",
            bug_type: "Use-after-free access",
            multi_variable: MultiVar::Loose,
            kind: FailureKind::UseAfterFree,
            target_func: Some("kvm_create_device"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 103.8,
                lifs_schedules: 664,
                interleavings: 1,
                ca_time_s: 1183.8,
                ca_schedules: 688,
                chain_races: None,
            },
            syscalls: &["ioctl", "close"],
            racing_vars: &["fdtable[fd]"],
            default_noise: NoiseSpec {
                shared_counters: 100,
                burst: 180,
                private_work: 2600,
                seed: 6974,
            },
            build: cve_2019_6974,
            doc: "KVM_CREATE_DEVICE installs the device's file descriptor \
                  (VFS layer) before the kvm object's initialization \
                  completes (KVM layer); a concurrent close() on the guessed \
                  fd releases the device under the creator's feet. The two \
                  racing objects — the fd-table slot and the kvm device — \
                  live in different subsystems and are loosely correlated \
                  (§2.2).",
        },
        BugModel {
            id: "CVE-2018-12232",
            subsystem: "SockFS",
            bug_type: "NULL pointer dereference",
            multi_variable: MultiVar::No,
            kind: FailureKind::NullDeref,
            target_func: Some("sock_setattr"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 37.8,
                lifs_schedules: 536,
                interleavings: 1,
                ca_time_s: 511.4,
                ca_schedules: 680,
                chain_races: None,
            },
            syscalls: &["ioctl", "close"],
            racing_vars: &["sock->sk"],
            default_noise: NoiseSpec {
                shared_counters: 100,
                burst: 170,
                private_work: 2200,
                seed: 12232,
            },
            build: cve_2018_12232,
            doc: "fchownat() on a socket inode races with close(): \
                  sock_close() NULLs sock->sk while sock_setattr re-reads it \
                  without synchronization. A single racing variable read \
                  twice on the setattr path.",
        },
        BugModel {
            id: "CVE-2017-15649",
            subsystem: "Packet socket",
            bug_type: "Assertion violation",
            multi_variable: MultiVar::Tight,
            kind: FailureKind::AssertionViolation,
            target_func: Some("fanout_unlink"),
            expected_chain_races: 4,
            expected_interleavings: 2,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 88.0,
                lifs_schedules: 1052,
                interleavings: 2,
                ca_time_s: 337.9,
                ca_schedules: 257,
                chain_races: None,
            },
            syscalls: &["setsockopt", "bind"],
            racing_vars: &["po->running", "po->fanout"],
            default_noise: NoiseSpec {
                shared_counters: 6,
                burst: 16,
                private_work: 3000,
                seed: 15649,
            },
            build: cve_2017_15649,
            doc: "The paper's running example (Figure 2/Figure 6): \
                  fanout_add() and packet_do_bind() communicate through the \
                  tightly correlated pair po->fanout / po->running; the \
                  multi-variable atomicity violation steers \
                  fanout_unlink() into BUG_ON(!list_contains(sk)). Needs \
                  two interleavings.",
        },
        BugModel {
            id: "CVE-2017-10661",
            subsystem: "Timer fd",
            bug_type: "List corruption",
            multi_variable: MultiVar::Tight,
            kind: FailureKind::ListCorruption,
            target_func: Some("timerfd_setup_cancel"),
            expected_chain_races: 3,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 32.8,
                lifs_schedules: 99,
                interleavings: 1,
                ca_time_s: 336.1,
                ca_schedules: 266,
                chain_races: None,
            },
            syscalls: &["timerfd_settime", "timerfd_settime"],
            racing_vars: &["ctx->might_cancel", "cancel_list"],
            default_noise: NoiseSpec {
                shared_counters: 24,
                burst: 41,
                private_work: 600,
                seed: 10661,
            },
            build: cve_2017_10661,
            doc: "Concurrent timerfd_settime() calls both observe \
                  ctx->might_cancel == 0 and both insert the context into \
                  the global cancel list — a check-then-act atomicity \
                  violation on the tightly correlated flag/list pair, \
                  corrupting the list by double insertion.",
        },
        BugModel {
            id: "CVE-2017-7533",
            subsystem: "Inotify",
            bug_type: "Slab-out-of-bounds access",
            multi_variable: MultiVar::Tight,
            kind: FailureKind::SlabOutOfBounds,
            target_func: Some("inotify_handle_event"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 64.5,
                lifs_schedules: 1056,
                interleavings: 1,
                ca_time_s: 1846.7,
                ca_schedules: 1578,
                chain_races: None,
            },
            syscalls: &["rename", "inotify_add_watch"],
            racing_vars: &["dentry->d_name.name", "dentry->d_name.len"],
            default_noise: NoiseSpec {
                shared_counters: 110,
                burst: 190,
                private_work: 4200,
                seed: 7533,
            },
            build: cve_2017_7533,
            doc: "inotify_handle_event() reads the dentry name pointer and \
                  the name length as two separate accesses while rename() \
                  updates both: a shorter name with the stale longer length \
                  drives the copy past the allocation — the classic \
                  pointer/length tightly-correlated multi-variable race.",
        },
        BugModel {
            id: "CVE-2017-2671",
            subsystem: "IPV4",
            bug_type: "NULL pointer dereference",
            multi_variable: MultiVar::No,
            kind: FailureKind::NullDeref,
            target_func: Some("ping_check_bind"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 33.2,
                lifs_schedules: 130,
                interleavings: 1,
                ca_time_s: 195.3,
                ca_schedules: 159,
                chain_races: None,
            },
            syscalls: &["connect", "connect"],
            racing_vars: &["sk->sk_node"],
            default_noise: NoiseSpec {
                shared_counters: 36,
                burst: 63,
                private_work: 800,
                seed: 2671,
            },
            build: cve_2017_2671,
            doc: "ping_unhash() clears the socket's hash-list linkage while \
                  a concurrent connect() re-reads it unlocked; the second \
                  read observes NULL and the subsequent dereference \
                  crashes. A single racing variable.",
        },
        BugModel {
            id: "CVE-2017-2636",
            subsystem: "TTY",
            bug_type: "Double free",
            multi_variable: MultiVar::No,
            kind: FailureKind::DoubleFree,
            target_func: Some("n_hdlc_release"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 34.3,
                lifs_schedules: 197,
                interleavings: 1,
                ca_time_s: 270.0,
                ca_schedules: 215,
                chain_races: None,
            },
            syscalls: &["ioctl", "ioctl"],
            racing_vars: &["n_hdlc->tbuf"],
            default_noise: NoiseSpec {
                shared_counters: 50,
                burst: 87,
                private_work: 900,
                seed: 2636,
            },
            build: cve_2017_2636,
            doc: "The n_hdlc line discipline's flush_tx_queue() and \
                  n_hdlc_release() both pop n_hdlc.tbuf and free it; without \
                  synchronization both observe the same buffer and free it \
                  twice (the analysis in the paper's reference [5]).",
        },
        BugModel {
            id: "CVE-2016-10200",
            subsystem: "L2TP",
            bug_type: "Use-after-free access",
            multi_variable: MultiVar::Tight,
            kind: FailureKind::UseAfterFree,
            target_func: Some("l2tp_ip_connect"),
            expected_chain_races: 2,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 32.8,
                lifs_schedules: 112,
                interleavings: 1,
                ca_time_s: 184.9,
                ca_schedules: 159,
                chain_races: None,
            },
            syscalls: &["bind", "connect"],
            racing_vars: &["sk->bound", "sk->hashed"],
            default_noise: NoiseSpec {
                shared_counters: 36,
                burst: 63,
                private_work: 700,
                seed: 10200,
            },
            build: cve_2016_10200,
            doc: "The l2tp socket-hashing race where AITIA encounters its \
                  single ambiguity case (§5.1): the surrounding data race \
                  cannot be flipped while preserving the nested one, and \
                  both avert the failure — the Figure 7 geometry. The model \
                  reproduces exactly that: two crossing races on the \
                  tightly-correlated bind state, where the nested race is \
                  causal and the surrounding race is reported ambiguous.",
        },
        BugModel {
            id: "CVE-2016-8655",
            subsystem: "Packet socket",
            bug_type: "Slab-out-of-bounds access",
            multi_variable: MultiVar::Tight,
            kind: FailureKind::SlabOutOfBounds,
            target_func: Some("packet_set_ring"),
            expected_chain_races: 3,
            expected_interleavings: 1,
            kthread: None,
            paper: PaperRow {
                lifs_time_s: 47.8,
                lifs_schedules: 213,
                interleavings: 1,
                ca_time_s: 184.0,
                ca_schedules: 135,
                chain_races: None,
            },
            syscalls: &["setsockopt", "setsockopt"],
            racing_vars: &["po->tp_version", "po->rx_ring.pg_vec"],
            default_noise: NoiseSpec {
                shared_counters: 32,
                burst: 55,
                private_work: 800,
                seed: 8655,
            },
            build: cve_2016_8655,
            doc: "packet_set_ring() reads po->tp_version twice while a \
                  concurrent PACKET_VERSION setsockopt changes it; the ring \
                  geometry computed for one version is used with the other, \
                  walking past the ring block — the tp_version/rx_ring \
                  tightly-correlated pair the fix made atomic.",
        },
    ]
}

/// CVE-2019-11486: slcan ldisc teardown vs write (UAF, chain 2).
fn cve_2019_11486(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("CVE-2019-11486");
    let mut noise = Noise::setup(&mut p, spec);
    let ldisc_obj = p.static_obj("slcan_ldisc", 16);
    let ldisc_ready = p.global("tty->ldisc_ready", 1);
    let ldisc = p.global_ptr("tty->disc_data", ldisc_obj);
    {
        let mut a = p.syscall_thread("A", "write");
        a.func("slcan_transmit").line(100);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        let out = a.new_label();
        a.n("A1").load_global("r0", ldisc_ready);
        a.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        a.n("A2").load_global("r1", ldisc);
        a.n("A3").store_ind("r1", 8, 1u64); // sl->xleft = ...
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "ioctl");
        b.func("tty_set_ldisc").line(200);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        b.n("B1").store_global(ldisc_ready, 0u64);
        b.n("B2").load_global("r0", ldisc);
        b.n("B3").free("r0"); // slcan_close() frees the ldisc state
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("CVE-2019-11486 builds")
}

/// CVE-2019-6974: KVM device fd install vs close (UAF, loose, chain 2).
fn cve_2019_6974(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("CVE-2019-6974");
    let mut noise = Noise::setup(&mut p, spec);
    let fd_slot = p.global("fdtable[fd]", 0);
    {
        let mut a = p.syscall_thread("A", "ioctl");
        a.func("kvm_create_device").line(300);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        a.n("A1").alloc("r0", 24); // dev = kzalloc()
        a.n("A2").store_global_from(fd_slot, "r0"); // fd_install(): published
        a.n("A3").store_ind("r0", 8, 7u64); // dev->kvm = kvm (init continues)
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "close");
        b.func("kvm_device_release").line(400);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        let out = b.new_label();
        b.n("B1").load_global("r0", fd_slot);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.n("B2").free("r0"); // kvm_device destroy
        b.place(out);
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("CVE-2019-6974 builds")
}

/// CVE-2018-12232: sock_close vs setattr re-read (NULL deref, chain 2).
fn cve_2018_12232(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("CVE-2018-12232");
    let mut noise = Noise::setup(&mut p, spec);
    let sk_obj = p.static_obj("sk", 16);
    let sk = p.global_ptr("sock->sk", sk_obj);
    {
        let mut a = p.syscall_thread("A", "ioctl");
        a.func("sock_setattr").line(500);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        let out = a.new_label();
        a.n("A1").load_global("r0", sk);
        a.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        a.n("A2").load_global("r1", sk); // unlocked re-read
        a.n("A3").load_ind("r2", "r1", 0); // sk->sk_uid
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "close");
        b.func("sock_close").line(600);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        b.n("B1").store_global(sk, 0u64); // sock->sk = NULL
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("CVE-2018-12232 builds")
}

/// CVE-2017-15649: the Figure 2 packet-fanout bug (BUG_ON, chain 4,
/// interleaving count 2).
///
/// Instruction names follow the paper's Figure 2 exactly.
#[must_use]
pub fn cve_2017_15649(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("CVE-2017-15649");
    let mut noise = Noise::setup(&mut p, spec);
    let sk_obj = p.static_obj("sk", 16);
    let po_running = p.global("po->running", 1);
    let po_fanout = p.global("po->fanout", 0);
    let global_list = p.global("fanout_list", 0);
    let sk = p.global_ptr("sk_ptr", sk_obj);
    {
        let mut a = p.syscall_thread("A", "setsockopt");
        a.func("fanout_add").line(1);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        let out = a.new_label();
        a.n("A2").load_global("r0", po_running);
        a.n("A3").jmp_if(cond_reg("r0", CmpOp::Eq, 0), out); // return -EINVAL
        a.n("A5").alloc("r1", 16); // match = kmalloc()
        a.n("A6").store_global_from(po_fanout, "r1");
        a.func("fanout_link").line(11);
        a.n("A8").load_global("r2", sk);
        a.n("A12").list_add(global_list, "r2"); // list_add(sk, &global_list)
        a.place(out);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "bind");
        b.func("packet_do_bind").line(1);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        let out = b.new_label();
        let skip_unlink = b.new_label();
        b.n("B2").load_global("r0", po_fanout);
        b.n("B3").jmp_if(cond_reg("r0", CmpOp::Ne, 0), out); // return -EINVAL
        b.func("unregister_hook").line(10);
        b.n("B11").store_global(po_running, 0u64);
        b.n("B12").load_global("r1", po_fanout);
        b.jmp_if(cond_reg("r1", CmpOp::Eq, 0), skip_unlink);
        b.func("fanout_unlink").line(16);
        b.n("B16").load_global("r2", sk);
        b.n("B17").list_contains("r3", global_list, "r2");
        b.bug_on_msg(
            cond_reg("r3", CmpOp::Eq, 0),
            "!list_contains(sk, &global_list)",
        );
        b.n("B18").list_del(global_list, "r2");
        b.place(skip_unlink);
        b.func("fanout_link").line(11);
        b.n("B7a").load_global("r4", sk);
        b.n("B7").list_add(global_list, "r4");
        b.place(out);
        b.ret();
    }
    p.build().expect("CVE-2017-15649 builds")
}

/// CVE-2017-10661: timerfd might_cancel double list insertion (chain 3).
fn cve_2017_10661(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("CVE-2017-10661");
    let mut noise = Noise::setup(&mut p, spec);
    let ctx_obj = p.static_obj("timerfd_ctx", 8);
    let might_cancel = p.global("ctx->might_cancel", 0);
    let cancel_list = p.global("cancel_list", 0);
    let ctx = p.global_ptr("ctx_ptr", ctx_obj);
    let thread = |p: &mut ProgramBuilder,
                  noise: &mut Noise,
                  name: &str,
                  n1: &'static str,
                  n2: &'static str,
                  n3: &'static str,
                  line: u32| {
        let mut t = p.syscall_thread(name, "timerfd_settime");
        t.func("timerfd_setup_cancel").line(line);
        noise.private_work(&mut t);
        noise.burst_pre(&mut t);
        let out = t.new_label();
        t.n(n1).load_global("r0", might_cancel);
        t.jmp_if(cond_reg("r0", CmpOp::Ne, 0), out); // already armed
        noise.burst_pre(&mut t);
        t.n(n2).store_global(might_cancel, 1u64);
        t.n("ld").load_global("r1", ctx);
        t.n(n3).list_add(cancel_list, "r1");
        t.place(out);
        noise.burst_post(&mut t);
        t.ret();
    };
    thread(&mut p, &mut noise, "A", "A1", "A2", "A3", 700);
    thread(&mut p, &mut noise, "B", "B1", "B2", "B3", 700);
    p.build().expect("CVE-2017-10661 builds")
}

/// CVE-2017-7533: inotify name pointer/length race (slab OOB, chain 2).
fn cve_2017_7533(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("CVE-2017-7533");
    let mut noise = Noise::setup(&mut p, spec);
    let long_name = p.static_obj("name_long", 24);
    let short_name = p.static_obj("name_short", 8);
    let name_ptr = p.global_ptr("dentry->d_name.name", long_name);
    let name_len = p.global("dentry->d_name.len", 24);
    // Hold the replacement buffer's address in a global the rename path
    // reads (a thread-private read, not racing).
    let short_ptr = p.global_ptr("new_name", short_name);
    {
        let mut a = p.syscall_thread("A", "inotify_add_watch");
        a.func("inotify_handle_event").line(800);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        a.n("A1").load_global("r0", name_ptr);
        a.n("A2").load_global("r1", name_len);
        // copy name[len-8] — in range for the original, past the end for
        // the shorter replacement.
        a.op("r2", ksim::instr::BinOp::Add, "r0", "r1");
        a.op("r2", ksim::instr::BinOp::Sub, "r2", 8u64);
        a.mov("r3", 0u64);
        a.op("r3", ksim::instr::BinOp::Add, "r3", "r2");
        a.n("A3").load_ind("r4", "r3", 0);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "rename");
        b.func("d_move").line(900);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        b.load_global("r0", short_ptr);
        b.n("B1").store_global_from(name_ptr, "r0"); // swap to shorter name
        b.n("B2").store_global(name_len, 8u64); // update the length
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("CVE-2017-7533 builds")
}

/// CVE-2017-2671: ping_unhash vs connect re-read (NULL deref, chain 2).
fn cve_2017_2671(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("CVE-2017-2671");
    let mut noise = Noise::setup(&mut p, spec);
    let node_obj = p.static_obj("hlist_node", 8);
    let hlist = p.global_ptr("sk->sk_node", node_obj);
    {
        let mut a = p.syscall_thread("A", "connect");
        a.func("ping_check_bind").line(1000);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        let out = a.new_label();
        a.n("A1").load_global("r0", hlist);
        a.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        a.n("A2").load_global("r1", hlist); // unlocked re-read
        a.n("A3").load_ind("r2", "r1", 0);
        a.place(out);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "connect");
        b.func("ping_unhash").line(1100);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        b.n("B1").store_global(hlist, 0u64); // hlist_nulls_del
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("CVE-2017-2671 builds")
}

/// CVE-2017-2636: n_hdlc tbuf double free (chain 2).
fn cve_2017_2636(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("CVE-2017-2636");
    let mut noise = Noise::setup(&mut p, spec);
    let buf_obj = p.static_obj("tbuf", 8);
    let tbuf = p.global_ptr("n_hdlc->tbuf", buf_obj);
    let side = |p: &mut ProgramBuilder,
                noise: &mut Noise,
                name: &str,
                func: &'static str,
                n1: &'static str,
                n2: &'static str,
                n3: &'static str| {
        let mut t = p.syscall_thread(name, "ioctl");
        t.func(func).line(1200);
        noise.private_work(&mut t);
        noise.burst_pre(&mut t);
        let out = t.new_label();
        t.n(n1).load_global("r0", tbuf);
        t.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        t.n(n2).free("r0");
        t.n(n3).store_global(tbuf, 0u64);
        t.place(out);
        noise.burst_post(&mut t);
        t.ret();
    };
    side(&mut p, &mut noise, "A", "flush_tx_queue", "A1", "A2", "A3");
    side(&mut p, &mut noise, "B", "n_hdlc_release", "B1", "B2", "B3");
    p.build().expect("CVE-2017-2636 builds")
}

/// CVE-2016-10200: the ambiguity case (Figure 7 geometry, UAF).
fn cve_2016_10200(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("CVE-2016-10200");
    let mut noise = Noise::setup(&mut p, spec);
    let sess_obj = p.static_obj("l2tp_session", 8);
    let conn_pending = p.global("sk->conn_pending", 0);
    let bound = p.global("sk->bound", 0);
    let hashed = p.global("sk->hashed", 0);
    let sess = p.global_ptr("session", sess_obj);
    {
        let mut a = p.syscall_thread("A", "bind");
        a.func("l2tp_ip_bind").line(1300);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        let out = a.new_label();
        // bind proceeds only while a connect is in flight (-EALREADY
        // otherwise), so the failure needs the calls to overlap.
        a.n("A0").load_global("r9", conn_pending);
        a.jmp_if(cond_reg("r9", CmpOp::Eq, 0), out);
        a.n("A1").store_global(bound, 1u64);
        a.n("A2").store_global(hashed, 1u64);
        a.place(out);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "connect");
        b.func("l2tp_ip_connect").line(1400);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        let out = b.new_label();
        b.n("B0").store_global(conn_pending, 1u64);
        b.n("B1").load_global("r0", hashed);
        b.n("B2").load_global("r1", bound);
        b.op("r2", ksim::instr::BinOp::And, "r0", "r1");
        b.jmp_if(cond_reg("r2", CmpOp::Eq, 0), out);
        // Both halves of the bind state observed: tear the session down
        // and touch it again — the published use-after-free.
        b.n("B3").load_global("r3", sess);
        b.n("B4").free("r3");
        b.n("B5").store_ind("r3", 0, 1u64);
        b.place(out);
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("CVE-2016-10200 builds")
}

/// CVE-2016-8655: tp_version vs packet_set_ring (slab OOB, chain 3).
fn cve_2016_8655(spec: NoiseSpec) -> Program {
    let mut p = ProgramBuilder::new("CVE-2016-8655");
    let mut noise = Noise::setup(&mut p, spec);
    let tp_version = p.global("po->tp_version", 1);
    let rx_ring = p.global("po->rx_ring.pg_vec", 0);
    {
        let mut a = p.syscall_thread("A", "setsockopt");
        a.func("packet_set_ring").line(1500);
        noise.private_work(&mut a);
        noise.burst_pre(&mut a);
        a.n("A1").load_global("r0", tp_version); // geometry for this version
        a.n("A2").alloc("r1", 8); // alloc_pg_vec()
        a.n("A3").store_global_from(rx_ring, "r1");
        a.n("A4").load_global("r2", tp_version); // re-read for init
        let ok = a.new_label();
        a.jmp_if(ksim::builder::cond_rr("r0", CmpOp::Eq, "r2"), ok);
        // Version changed mid-setup: the V3 walk uses V1 geometry and
        // steps past the ring block.
        a.n("A5").load_ind("r3", "r1", 16);
        a.place(ok);
        noise.burst_post(&mut a);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "setsockopt");
        b.func("packet_setsockopt").line(1600);
        noise.private_work(&mut b);
        noise.burst_pre(&mut b);
        let out = b.new_label();
        b.n("B1").load_global("r0", rx_ring);
        b.jmp_if(cond_reg("r0", CmpOp::Ne, 0), out); // -EBUSY if ring exists
        b.n("B2").store_global(tp_version, 3u64); // TPACKET_V3
        b.place(out);
        noise.burst_post(&mut b);
        b.ret();
    }
    p.build().expect("CVE-2016-8655 builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitia::{
        CausalityAnalysis,
        CausalityConfig,
        Lifs, //
    };

    /// Every CVE reproduces with small noise and the expected failure kind
    /// at the expected interleaving count.
    #[test]
    fn cves_reproduce_with_expected_shape() {
        for bug in all() {
            let prog = bug.program_scaled(0.05);
            let out = Lifs::new(prog, bug.lifs_config()).search();
            let run = out
                .failing
                .unwrap_or_else(|| panic!("{} did not reproduce", bug.id));
            assert_eq!(run.failure.kind, bug.kind, "{}", bug.id);
            assert_eq!(
                out.stats.interleaving_count, bug.expected_interleavings,
                "{}: interleaving count",
                bug.id
            );
        }
    }

    /// Every CVE's chain has the modeled number of causal races, and the
    /// ambiguity case is exactly CVE-2016-10200.
    #[test]
    fn cves_chains_match_expectations() {
        for bug in all() {
            let prog = bug.program_scaled(0.05);
            let run = Lifs::new(prog, bug.lifs_config())
                .search()
                .failing
                .unwrap_or_else(|| panic!("{} did not reproduce", bug.id));
            let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
            assert_eq!(
                res.chain.race_count(),
                bug.expected_chain_races,
                "{}: chain {} tested {:?}",
                bug.id,
                res.chain,
                res.tested
                    .iter()
                    .map(|t| (t.race.key(), t.verdict))
                    .collect::<Vec<_>>()
            );
            if bug.id == "CVE-2016-10200" {
                assert!(
                    !res.ambiguous().is_empty(),
                    "10200 must report the ambiguity case"
                );
            } else {
                assert!(
                    res.ambiguous().is_empty(),
                    "{}: unexpected ambiguity, chain {}",
                    bug.id,
                    res.chain
                );
            }
        }
    }

    /// The 15649 chain matches Figure 6(b): a conjunction of the two guard
    /// races, then the race-steered flow, then the pending list race.
    #[test]
    fn cve_15649_chain_matches_fig6() {
        let bug = all()
            .into_iter()
            .find(|b| b.id == "CVE-2017-15649")
            .unwrap();
        let prog = bug.program(NoiseSpec::silent());
        let run = Lifs::new(prog, bug.lifs_config())
            .search()
            .failing
            .expect("reproduces");
        let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        let s = res.chain.to_string();
        assert_eq!(res.chain.race_count(), 4, "{s}");
        assert!(s.contains('∧'), "conjunction expected: {s}");
        assert!(s.contains("BUG_ON"), "{s}");
        // The conjunction is the multi-variable pair on po->running /
        // po->fanout.
        let conj = res
            .chain
            .nodes
            .iter()
            .find_map(|n| match n {
                aitia::ChainNode::Conj(v) => Some(v),
                aitia::ChainNode::Single(_) => None,
            })
            .expect("has a conjunction");
        let vars: Vec<&str> = conj.iter().map(|r| r.variable.as_str()).collect();
        assert!(vars.contains(&"po->running"), "{vars:?}");
        assert!(vars.contains(&"po->fanout"), "{vars:?}");
    }
}
