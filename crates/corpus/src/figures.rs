//! The paper's figure scenarios as executable programs.
//!
//! * [`fig1`] — the abstract `ptr_valid`/`ptr` NULL-deref example (Fig 1);
//! * [`fig2_cve_2017_15649`] — the multi-variable packet-fanout bug the
//!   paper dissects in §2.1 and Figure 6 (also a Table 2 row);
//! * [`fig4a`], [`fig4b`], [`fig4c`] — the three complex background-thread
//!   patterns of Figure 4;
//! * [`fig5`] — the LIFS search-tree walkthrough example of Figure 5;
//! * [`fig7_ambiguous`] / [`fig7_clear`] — the nested/surrounding race
//!   geometry of Figure 7, in the ambiguous and the clearly-decidable
//!   variant.

use ksim::{
    builder::{
        cond_reg,
        ProgramBuilder, //
    },
    CmpOp, Program,
};

/// Figure 1: two semantically correlated variables, a race-steered control
/// flow, and a NULL dereference under `A1 ⇒ B1 ⇒ B2 ⇒ A2`.
#[must_use]
pub fn fig1() -> Program {
    let mut p = ProgramBuilder::new("fig1");
    let obj = p.static_obj("obj", 8);
    let ptr_valid = p.global("ptr_valid", 0);
    let ptr = p.global_ptr("ptr", obj);
    {
        let mut a = p.syscall_thread("A", "write");
        a.func("thread_a");
        a.n("A1").store_global(ptr_valid, 1u64);
        a.n("A2").load_global("r0", ptr);
        a.load_ind("r1", "r0", 0); // local = *ptr
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "write");
        b.func("thread_b");
        let out = b.new_label();
        b.n("B1").load_global("r0", ptr_valid);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out); // if (ptr_valid == 0) return
        b.n("B2").store_global(ptr, 0u64); // ptr = NULL
        b.place(out);
        b.ret();
    }
    p.build().expect("fig1 builds")
}

/// Figure 2 / Figure 6: CVE-2017-15649 (packet fanout). Re-exported from
/// the CVE corpus so the figure and the Table 2 row share one model.
#[must_use]
pub fn fig2_cve_2017_15649() -> Program {
    crate::cve::cve_2017_15649(crate::noise::NoiseSpec::silent())
}

/// Figure 4-(a): two system calls plus a `kworkerd` daemon. Syscall A's
/// store steers syscall B into queueing deferred work; the worker then
/// races with A on a second object.
#[must_use]
pub fn fig4a() -> Program {
    let mut p = ProgramBuilder::new("fig4a");
    let obj = p.static_obj("m2_obj", 8);
    let m1 = p.global("m1", 0);
    let m2 = p.global_ptr("m2", obj);
    let worker = {
        let mut k = p.kworker_thread("kworker");
        k.func("deferred_teardown");
        k.n("K1").store_global(m2, 0u64); // tear down m2
        k.ret();
        k.id()
    };
    {
        let mut a = p.syscall_thread("A", "ioctl");
        a.func("sys_a");
        a.n("A1").store_global(m1, 1u64);
        a.n("A2").load_global("r0", m2);
        a.load_ind("r1", "r0", 0); // use m2
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "close");
        b.func("sys_b");
        let out = b.new_label();
        b.n("B1").load_global("r0", m1);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.n("B2").queue_work(worker, None);
        b.place(out);
        b.ret();
    }
    p.build().expect("fig4a builds")
}

/// Figure 4-(b): one system call, a `kworkerd` daemon, and an RCU callback
/// chained behind it (`queue_work()` then `call_rcu()`).
#[must_use]
pub fn fig4b() -> Program {
    let mut p = ProgramBuilder::new("fig4b");
    let obj = p.static_obj("m1_obj", 8);
    let m1 = p.global_ptr("m1", obj);
    let busy = p.global("busy", 0);
    let rcu = {
        let mut r = p.rcu_thread("rcu_cb");
        r.func("rcu_free");
        r.n("R1").store_global(m1, 0u64);
        r.ret();
        r.id()
    };
    let worker = {
        let mut k = p.kworker_thread("kworker");
        k.func("deferred_step");
        k.n("K0").load_global("r0", busy);
        k.n("K1").call_rcu(rcu, None);
        k.ret();
        k.id()
    };
    {
        let mut a = p.syscall_thread("A", "ioctl");
        a.func("sys_a");
        a.n("A1").queue_work(worker, None);
        a.n("A1b").store_global(busy, 1u64);
        a.n("A2").load_global("r0", m1);
        a.load_ind("r1", "r0", 0);
        a.ret();
    }
    p.build().expect("fig4b builds")
}

/// Figure 4-(c): a *single* system call racing with the kernel thread it
/// spawned, across three memory objects.
#[must_use]
pub fn fig4c() -> Program {
    let mut p = ProgramBuilder::new("fig4c");
    let obj = p.static_obj("m3_obj", 8);
    let m1 = p.global("m1", 0);
    let m2 = p.global("m2", 0);
    let m3 = p.global_ptr("m3", obj);
    let worker = {
        let mut k = p.kworker_thread("kworker");
        k.func("async_work");
        let out = k.new_label();
        k.n("K1").load_global("r0", m1);
        k.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        k.n("K2").store_global(m2, 1u64);
        k.n("K3").store_global(m3, 0u64);
        k.place(out);
        k.ret();
        k.id()
    };
    {
        let mut a = p.syscall_thread("A", "write");
        a.func("sys_a");
        a.n("A1").store_global(m1, 1u64);
        a.n("A2").queue_work(worker, None);
        a.n("A3").load_global("r0", m2);
        a.n("A4").load_global("r1", m3);
        a.load_ind("r2", "r1", 0);
        a.ret();
    }
    p.build().expect("fig4c builds")
}

/// Figure 5: the LIFS walkthrough. Thread A accesses M1, M2, M3; thread B
/// accesses M1 and M2 and — only when `A1 ⇒ B1` — invokes kernel thread K,
/// whose `K1` tears M3 down; `K1 ⇒ A3` then fails.
#[must_use]
pub fn fig5() -> Program {
    let mut p = ProgramBuilder::new("fig5");
    let obj = p.static_obj("m3_obj", 8);
    let m1 = p.global("m1", 0);
    let m2 = p.global("m2", 0);
    let m3 = p.global_ptr("m3", obj);
    let k = {
        let mut k = p.kworker_thread("K");
        k.func("thread_k");
        k.n("K1").store_global(m3, 0u64);
        k.ret();
        k.id()
    };
    {
        let mut a = p.syscall_thread("A", "syscall_a");
        a.func("thread_a");
        a.n("A1").store_global(m1, 1u64);
        a.n("A2").store_global(m2, 1u64);
        a.n("A3").load_global("r0", m3);
        a.load_ind("r1", "r0", 0); // fails if K1 ⇒ A3
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "syscall_b");
        b.func("thread_b");
        let out = b.new_label();
        b.n("B1").load_global("r0", m1);
        b.n("B2").fetch_add_global(m2, 1u64);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.n("B3").queue_work(k, None); // only if A1 ⇒ B1
        b.place(out);
        b.ret();
    }
    p.build().expect("fig5 builds")
}

/// Figure 7, ambiguous variant: the surrounding race `A1 ⇒ B2` and the
/// nested race `A2 ⇒ B1` are *both* required for the failure; flipping the
/// surrounding race necessarily flips the nested one, so its verdict is
/// ambiguous.
#[must_use]
pub fn fig7_ambiguous() -> Program {
    let mut p = ProgramBuilder::new("fig7-ambiguous");
    let m1 = p.global("m1", 0);
    let m2 = p.global("m2", 0);
    {
        let mut a = p.syscall_thread("A", "writer");
        a.func("thread_a");
        a.n("A1").store_global(m1, 1u64);
        a.n("A2").store_global(m2, 1u64);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "reader");
        b.func("thread_b");
        b.n("B1").load_global("r0", m2);
        b.n("B2").load_global("r1", m1);
        // Fails only when BOTH reads observed the writes.
        b.op("r2", ksim::instr::BinOp::And, "r0", "r1");
        b.bug_on_msg(cond_reg("r2", CmpOp::Eq, 1), "both-observed");
        b.ret();
    }
    p.build().expect("fig7a builds")
}

/// Figure 7, decidable variant: only the surrounding race `A1 ⇒ B2`
/// matters; the nested `A2 ⇒ B1` is benign, so flipping the surrounding
/// race (which drags the nested one along) still yields a clear verdict.
#[must_use]
pub fn fig7_clear() -> Program {
    let mut p = ProgramBuilder::new("fig7-clear");
    let m1 = p.global("m1", 0);
    let m2 = p.global("m2", 0);
    {
        let mut a = p.syscall_thread("A", "writer");
        a.func("thread_a");
        a.n("A1").store_global(m1, 1u64);
        a.n("A2").store_global(m2, 1u64);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "reader");
        b.func("thread_b");
        b.n("B1").load_global("r0", m2); // nested race end; value unused
        b.n("B2").load_global("r1", m1);
        b.bug_on_msg(cond_reg("r1", CmpOp::Eq, 1), "m1-observed");
        b.ret();
    }
    p.build().expect("fig7c builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitia::{
        CausalityAnalysis,
        CausalityConfig,
        Lifs,
        LifsConfig,
        Verdict, //
    };
    use std::sync::Arc;

    fn diagnose(prog: Program) -> (aitia::FailingRun, aitia::CausalityResult) {
        let run = Lifs::new(Arc::new(prog), LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        (run, res)
    }

    #[test]
    fn fig1_reproduces_and_yields_two_race_chain() {
        let (run, res) = diagnose(fig1());
        assert_eq!(run.failure.kind, ksim::FailureKind::NullDeref);
        assert_eq!(res.chain.race_count(), 2, "{}", res.chain);
    }

    #[test]
    fn fig4a_pattern_reproduces() {
        let (run, res) = diagnose(fig4a());
        assert_eq!(run.failure.kind, ksim::FailureKind::NullDeref);
        // The kworker participated.
        assert!(run
            .trace
            .iter()
            .any(|r| run.sel(r.tid).prog != run.sel(run.trace[0].tid).prog));
        assert!(res.chain.race_count() >= 2, "{}", res.chain);
    }

    #[test]
    fn fig4b_chained_deferral_reproduces() {
        let (run, _res) = diagnose(fig4b());
        assert_eq!(run.failure.kind, ksim::FailureKind::NullDeref);
    }

    #[test]
    fn fig4c_single_syscall_vs_worker_reproduces() {
        let (run, res) = diagnose(fig4c());
        assert_eq!(run.failure.kind, ksim::FailureKind::NullDeref);
        assert!(res.chain.race_count() >= 1);
    }

    #[test]
    fn fig5_failure_needs_exactly_one_interleaving() {
        let out = Lifs::new(Arc::new(fig5()), LifsConfig::default()).search();
        let run = out.failing.expect("reproduces");
        assert_eq!(out.stats.interleaving_count, 1);
        assert_eq!(run.failure.kind, ksim::FailureKind::NullDeref);
        // Serial runs (interleaving count 0) came first and did not fail.
        let serial: Vec<_> = out
            .tree
            .nodes
            .iter()
            .filter(|n| n.interleavings == 0)
            .collect();
        assert_eq!(serial.len(), 2);
    }

    #[test]
    fn fig7_ambiguous_reports_ambiguity() {
        let (_, res) = diagnose(fig7_ambiguous());
        assert_eq!(res.ambiguous().len(), 1, "chain: {}", res.chain);
        // The nested race is causal and stays in the chain.
        assert!(res.tested.iter().any(|t| t.verdict == Verdict::Causal));
    }

    #[test]
    fn fig7_clear_has_no_ambiguity() {
        let (_, res) = diagnose(fig7_clear());
        assert!(res.ambiguous().is_empty(), "chain: {}", res.chain);
        assert_eq!(res.chain.race_count(), 1, "{}", res.chain);
        // The nested race was tested and judged benign.
        assert!(res.tested.iter().any(|t| t.verdict == Verdict::Benign));
    }
}

/// Extension scenario (§4.6): a system call racing a *hardware interrupt
/// handler*. The paper leaves IRQ contexts as future work and notes the
/// hypervisor could realize them by injecting an IRQ exactly as it controls
/// system calls; the simulator's `inject_irq` does precisely that, and LIFS
/// treats the handler as one more interleaving target.
#[must_use]
pub fn irq_scenario() -> Program {
    let mut p = ProgramBuilder::new("irq-scenario");
    let obj = p.static_obj("dma_buf", 8);
    let buf = p.global_ptr("dev->dma_buf", obj);
    let busy = p.global("dev->busy", 0);
    {
        let mut h = p.irq_thread("irq");
        h.func("dev_irq_handler");
        let out = h.new_label();
        h.n("I1").load_global("r0", busy);
        h.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        h.n("I2").store_global(buf, 0u64); // completion: release the buffer
        h.place(out);
        h.ret();
    }
    {
        let mut a = p.syscall_thread("A", "write");
        a.func("dev_write");
        a.n("A1").store_global(busy, 1u64);
        a.n("A2").load_global("r1", buf);
        a.n("A3").store_ind("r1", 0, 7u64); // fill the DMA buffer
        a.n("A4").store_global(busy, 0u64);
        a.ret();
    }
    p.build().expect("irq scenario builds")
}

/// Lock-discipline scenario for the §3.4 liveness/critical-section
/// ablation: both racing accesses live inside critical sections, so
/// Causality Analysis must flip whole critical sections — suspending a
/// thread mid-section leaves the other blocked on the lock (forced
/// resumes) and the flip cannot hold.
#[must_use]
pub fn locked_cs_scenario() -> Program {
    let mut p = ProgramBuilder::new("locked-cs");
    let obj = p.static_obj("session", 8);
    let enabled = p.global("dev->enabled", 0);
    let ptr = p.global("dev->session", 0); // published under the lock
    let real = p.global_ptr("session_storage", obj);
    let l = p.lock("dev->lock");
    {
        let mut a = p.syscall_thread("A", "read");
        a.func("dev_read");
        let out = a.new_label();
        a.n("A1").load_global("r0", enabled);
        a.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        a.lock(l);
        a.n("A2").load_global("r1", ptr);
        a.n("A3").load_ind("r2", "r1", 0); // NULL deref if A's CS runs first
        a.unlock(l);
        a.place(out);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "ioctl");
        b.func("dev_init");
        b.n("B1").store_global(enabled, 1u64);
        b.lock(l);
        b.load_global("r0", real);
        b.n("B2").store_global_from(ptr, "r0"); // publish the session
        b.unlock(l);
        b.ret();
    }
    p.build().expect("locked-cs builds")
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use aitia::{
        CausalityAnalysis,
        CausalityConfig,
        Lifs,
        LifsConfig, //
    };
    use std::sync::Arc;

    /// The IRQ handler is injected at a scheduling point, reproduces the
    /// NULL deref, and appears in the causality chain.
    #[test]
    fn irq_scenario_diagnoses_across_the_interrupt() {
        let prog = Arc::new(irq_scenario());
        let out = Lifs::new(Arc::clone(&prog), LifsConfig::default()).search();
        let run = out.failing.expect("reproduces via injection");
        assert_eq!(run.failure.kind, ksim::FailureKind::NullDeref);
        // The handler really ran.
        assert!(run
            .trace
            .iter()
            .any(|r| prog.instr_name(r.at).starts_with('I')));
        let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        let s = res.chain.to_string();
        assert!(s.contains("I2") || s.contains("I1"), "{s}");
    }

    /// Critical sections flip as units; without the rule the flip cannot
    /// hold (forced resumes) and the ptr race is misjudged.
    #[test]
    fn locked_cs_needs_unit_flipping() {
        let prog = Arc::new(locked_cs_scenario());
        let run = Lifs::new(Arc::clone(&prog), LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        let with_unit = CausalityAnalysis::new(CausalityConfig {
            cs_as_unit: true,
            ..CausalityConfig::default()
        })
        .analyze(&run);
        assert_eq!(with_unit.chain.race_count(), 2, "{}", with_unit.chain);
        assert!(with_unit.tested.iter().any(|t| t.cs_expanded));
    }
}

/// RCU discipline scenario: the reader protects its dereference with an
/// RCU read-side critical section, so the `call_rcu`-deferred free cannot
/// run inside it — LIFS finds no failure. Set `protected: false` for the
/// buggy variant (no read-side section) and the use-after-free appears.
#[must_use]
pub fn rcu_scenario(protected: bool) -> Program {
    let mut p = ProgramBuilder::new(if protected {
        "rcu-protected"
    } else {
        "rcu-unprotected"
    });
    let obj = p.static_obj("entry", 8);
    let entry = p.global_ptr("table->entry", obj);
    let free_cb = {
        let mut r = p.rcu_thread("rcu_free");
        r.func("entry_free_rcu");
        // `r0` carries the unpublished entry pointer from `call_rcu`.
        r.n("R1").free("r0");
        r.ret();
        r.id()
    };
    {
        let mut a = p.syscall_thread("A", "read");
        a.func("table_lookup");
        let out = a.new_label();
        if protected {
            a.rcu_read_lock();
        }
        a.n("A1").load_global("r1", entry);
        a.jmp_if(cond_reg("r1", CmpOp::Eq, 0), out); // unpublished: not found
        a.n("A2").load_ind("r2", "r1", 0);
        a.place(out);
        if protected {
            a.rcu_read_unlock();
        }
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "ioctl");
        b.func("table_remove");
        // RCU update discipline: unpublish first, defer the free.
        b.load_global("r9", entry);
        b.n("B1").store_global(entry, 0u64);
        b.n("B2").call_rcu(free_cb, Some("r9"));
        b.ret();
    }
    p.build().expect("rcu scenario builds")
}

#[cfg(test)]
mod rcu_scenario_tests {
    use super::*;
    use aitia::{
        Lifs,
        LifsConfig, //
    };
    use std::sync::Arc;

    /// With the read-side section, the grace period protects the reader —
    /// LIFS exhausts its search without reproducing any failure.
    #[test]
    fn rcu_protected_reader_cannot_fail() {
        let out = Lifs::new(Arc::new(rcu_scenario(true)), LifsConfig::default()).search();
        assert!(
            out.failing.is_none(),
            "grace period must protect the reader"
        );
        assert!(out.stats.schedules_executed > 2);
    }

    /// Without it, the deferred free lands between the pointer load and the
    /// dereference — the classic RCU-misuse use-after-free.
    #[test]
    fn unprotected_reader_fails() {
        let out = Lifs::new(Arc::new(rcu_scenario(false)), LifsConfig::default()).search();
        let run = out.failing.expect("must reproduce");
        assert_eq!(run.failure.kind, ksim::FailureKind::UseAfterFree);
    }
}

/// ABBA deadlock scenario: two paths take the same pair of locks in
/// opposite orders. The failure class is the watchdog's hung-task report;
/// the root cause is the *order of the critical sections* — exactly the
/// "unintended execution order of critical sections" failure mode the
/// paper cites (its reference [18], Dirty COW).
#[must_use]
pub fn abba_deadlock_scenario() -> Program {
    let mut p = ProgramBuilder::new("abba-deadlock");
    let x = p.global("inode->i_size", 0);
    let y = p.global("mm->flags", 0);
    let l_inode = p.lock("inode->lock");
    let l_mm = p.lock("mm->lock");
    {
        let mut a = p.syscall_thread("A", "write");
        a.func("do_write");
        a.lock(l_inode);
        a.n("A1").store_global(x, 1u64);
        a.lock(l_mm);
        a.n("A2").store_global(y, 1u64);
        a.unlock(l_mm);
        a.unlock(l_inode);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "madvise");
        b.func("do_madvise");
        b.lock(l_mm);
        b.n("B1").store_global(y, 2u64);
        b.lock(l_inode);
        b.n("B2").store_global(x, 2u64);
        b.unlock(l_inode);
        b.unlock(l_mm);
        b.ret();
    }
    p.build().expect("abba builds")
}

#[cfg(test)]
mod deadlock_tests {
    use super::*;
    use aitia::{
        Lifs,
        LifsConfig, //
    };
    use std::sync::Arc;

    /// LIFS reproduces the ABBA deadlock as a hung-task failure: one
    /// preemption between the two lock acquisitions suffices.
    #[test]
    fn abba_deadlock_reproduces_as_hung_task() {
        let out = Lifs::new(Arc::new(abba_deadlock_scenario()), LifsConfig::default()).search();
        let run = out.failing.expect("deadlock reproduces");
        assert_eq!(run.failure.kind, ksim::FailureKind::HungTask);
        assert_eq!(out.stats.interleaving_count, 1);
    }
}

#[cfg(test)]
mod deadlock_diagnosis_tests {
    use super::*;
    use aitia::{
        CausalityAnalysis,
        CausalityConfig,
        Lifs,
        LifsConfig, //
    };
    use std::sync::Arc;

    /// Causality Analysis diagnoses the deadlock: flipping the
    /// critical-section order (one whole CS before the other) averts the
    /// hang, so the CS-order pair is the chain.
    #[test]
    fn abba_deadlock_yields_a_cs_order_chain() {
        let run = Lifs::new(Arc::new(abba_deadlock_scenario()), LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        assert!(
            res.chain.race_count() >= 1,
            "chain: {} tested: {:?}",
            res.chain,
            res.tested
                .iter()
                .map(|t| (t.race.key(), t.verdict))
                .collect::<Vec<_>>()
        );
        // The flips had to move whole critical sections.
        assert!(res.tested.iter().any(|t| t.cs_expanded));
    }
}
