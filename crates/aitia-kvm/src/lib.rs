//! A minimal KVM microVM, driven through raw `/dev/kvm` ioctls.
//!
//! This crate is the hardware half of aitia's `kvm` execution backend: a
//! single-vcpu x86_64 long-mode guest whose only job is to execute 8-byte
//! loads and stores against real, virtualized memory on behalf of the
//! diagnosis engine. The guest runs a tiny hand-assembled command loop —
//! the host writes an `(op, addr, val)` triple into a fixed command block,
//! re-enters the vcpu, and the guest executes the access and parks itself
//! on `HLT` (the vmexit that hands control back). There is no firmware, no
//! kernel, no device model: setup is exactly the minimal vcpu-exit loop
//! idiom (identity-mapped page tables, flat 64-bit segments, one memory
//! region), so a full VM boots in well under a millisecond.
//!
//! No external crates are used: the four syscalls needed (`open` via std,
//! `ioctl`, `mmap`, `munmap`) go through hand-declared FFI. Struct layouts
//! (`kvm_regs` 0x90 bytes, `kvm_sregs` 0x138 bytes, `kvm_userspace_memory_region`
//! 0x20 bytes) are transcribed from the kernel ABI, which is frozen.
//!
//! Everything real is gated on `target_arch = "x86_64"`; on other hosts
//! [`probe`] reports the backend unavailable and [`MicroVm::new`] fails,
//! so the crate still compiles (and the conformance kit skips) anywhere.
//!
//! # Errors are poison
//!
//! Any unexpected vmexit (shutdown, failed entry, internal error, a runaway
//! guest that never reaches `HLT`) returns `Err` from the access method and
//! marks the VM dead ([`MicroVm::poisoned`]). The embedding backend treats
//! that as a genuine VM crash: the run becomes inconclusive and the
//! fault-injection/quarantine machinery upstack takes over. This crate never
//! panics on guest misbehavior.

#![warn(missing_docs)]

/// Guest physical memory size: 128 KiB covers the page tables, the command
/// block, the code blob, and the data region.
pub const MEM_SIZE: usize = 0x20000;

/// Guest physical address of the command block (`[op][addr][val][result]`,
/// four u64 cells).
pub const CMD_BASE: u64 = 0x1000;

/// Guest physical address the code blob is loaded at (and the vcpu's
/// initial RIP).
pub const CODE_BASE: u64 = 0x2000;

/// First guest physical address of the data region — the memory the
/// embedding backend allocates its 8-byte cells from.
pub const DATA_BASE: u64 = 0x10000;

/// Size of the data region in bytes (8192 cells of 8 bytes).
pub const DATA_SIZE: usize = 0x10000;

/// Upper bound on vmexits while executing one command; a guest that has not
/// reached `HLT` by then is runaway and the VM is poisoned.
const MAX_EXITS_PER_CMD: u32 = 64;

#[cfg(target_arch = "x86_64")]
mod real {
    use super::{CMD_BASE, CODE_BASE, DATA_BASE, DATA_SIZE, MAX_EXITS_PER_CMD, MEM_SIZE};
    use std::fs::{File, OpenOptions};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};

    // ---- FFI --------------------------------------------------------------

    extern "C" {
        fn ioctl(fd: i32, request: u64, ...) -> i32;
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 0x01;
    const MAP_PRIVATE: i32 = 0x02;
    const MAP_ANONYMOUS: i32 = 0x20;

    const KVM_GET_API_VERSION: u64 = 0xAE00;
    const KVM_CREATE_VM: u64 = 0xAE01;
    const KVM_GET_VCPU_MMAP_SIZE: u64 = 0xAE04;
    const KVM_CREATE_VCPU: u64 = 0xAE41;
    const KVM_SET_USER_MEMORY_REGION: u64 = 0x4020_AE46;
    const KVM_RUN: u64 = 0xAE80;
    const KVM_SET_REGS: u64 = 0x4090_AE82;
    const KVM_GET_SREGS: u64 = 0x8138_AE83;
    const KVM_SET_SREGS: u64 = 0x4138_AE84;

    const KVM_API_VERSION: i32 = 12;

    const KVM_EXIT_HLT: u32 = 5;

    // ---- kernel ABI structs ----------------------------------------------

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct KvmSegment {
        base: u64,
        limit: u32,
        selector: u16,
        type_: u8,
        present: u8,
        dpl: u8,
        db: u8,
        s: u8,
        l: u8,
        g: u8,
        avl: u8,
        unusable: u8,
        padding: u8,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct KvmDtable {
        base: u64,
        limit: u16,
        padding: [u16; 3],
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct KvmSregs {
        cs: KvmSegment,
        ds: KvmSegment,
        es: KvmSegment,
        fs: KvmSegment,
        gs: KvmSegment,
        ss: KvmSegment,
        tr: KvmSegment,
        ldt: KvmSegment,
        gdt: KvmDtable,
        idt: KvmDtable,
        cr0: u64,
        cr2: u64,
        cr3: u64,
        cr4: u64,
        cr8: u64,
        efer: u64,
        apic_base: u64,
        interrupt_bitmap: [u64; 4],
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct KvmRegs {
        rax: u64,
        rbx: u64,
        rcx: u64,
        rdx: u64,
        rsi: u64,
        rdi: u64,
        rsp: u64,
        rbp: u64,
        r8: u64,
        r9: u64,
        r10: u64,
        r11: u64,
        r12: u64,
        r13: u64,
        r14: u64,
        r15: u64,
        rip: u64,
        rflags: u64,
    }

    #[repr(C)]
    struct KvmUserspaceMemoryRegion {
        slot: u32,
        flags: u32,
        guest_phys_addr: u64,
        memory_size: u64,
        userspace_addr: u64,
    }

    const _: () = assert!(core::mem::size_of::<KvmSegment>() == 24);
    const _: () = assert!(core::mem::size_of::<KvmSregs>() == 0x138);
    const _: () = assert!(core::mem::size_of::<KvmRegs>() == 0x90);
    const _: () = assert!(core::mem::size_of::<KvmUserspaceMemoryRegion>() == 0x20);

    // ---- guest code -------------------------------------------------------

    /// Guest page-table roots (identity map of the first 2 MiB via one
    /// large page — everything the guest touches lives below 128 KiB).
    const PML4_BASE: u64 = 0x9000;
    const PDPT_BASE: u64 = 0xA000;
    const PD_BASE: u64 = 0xB000;

    /// Command opcodes understood by the guest loop.
    const OP_WRITE: u64 = 1;

    /// The hand-assembled 64-bit command loop (see module docs). Offsets:
    ///
    /// ```text
    /// 00  mov rbx, [0x1000]      ; op
    /// 08  mov rcx, [0x1008]      ; addr
    /// 16  mov rdx, [0x1010]      ; val
    /// 24  cmp rbx, 1
    /// 28  jne +5  -> 35          ; not a write => read
    /// 30  mov [rcx], rdx
    /// 33  jmp +11 -> 46
    /// 35  mov rax, [rcx]
    /// 38  mov [0x1018], rax      ; result
    /// 46  hlt                    ; vmexit: command done
    /// 47  jmp -49 -> 0           ; next command
    /// ```
    const GUEST_CODE: [u8; 49] = [
        0x48, 0x8B, 0x1C, 0x25, 0x00, 0x10, 0x00, 0x00, // mov rbx,[0x1000]
        0x48, 0x8B, 0x0C, 0x25, 0x08, 0x10, 0x00, 0x00, // mov rcx,[0x1008]
        0x48, 0x8B, 0x14, 0x25, 0x10, 0x10, 0x00, 0x00, // mov rdx,[0x1010]
        0x48, 0x83, 0xFB, 0x01, // cmp rbx,1
        0x75, 0x05, // jne read
        0x48, 0x89, 0x11, // mov [rcx],rdx
        0xEB, 0x0B, // jmp done
        0x48, 0x8B, 0x01, // read: mov rax,[rcx]
        0x48, 0x89, 0x04, 0x25, 0x18, 0x10, 0x00, 0x00, // mov [0x1018],rax
        0xF4, // done: hlt
        0xEB, 0xCF, // jmp start
    ];

    // ---- probe ------------------------------------------------------------

    fn open_kvm() -> Result<File, String> {
        OpenOptions::new()
            .read(true)
            .write(true)
            .open("/dev/kvm")
            .map_err(|e| format!("cannot open /dev/kvm: {e}"))
    }

    /// Whether a usable KVM is present on this host.
    pub fn probe() -> Result<(), String> {
        let kvm = open_kvm()?;
        let version = unsafe { ioctl(kvm.as_raw_fd(), KVM_GET_API_VERSION, 0) };
        if version != KVM_API_VERSION {
            return Err(format!(
                "KVM api version {version} (need {KVM_API_VERSION})"
            ));
        }
        Ok(())
    }

    // ---- the VM -----------------------------------------------------------

    /// Guest memory: an anonymous shared mapping handed to KVM, unmapped on
    /// drop.
    struct GuestMem {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is plain process memory; the raw pointer is only ever
    // dereferenced through &self/&mut self methods.
    unsafe impl Send for GuestMem {}

    impl GuestMem {
        fn new(len: usize) -> Result<GuestMem, String> {
            let ptr = unsafe {
                mmap(
                    core::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    -1,
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err("mmap of guest memory failed".into());
            }
            Ok(GuestMem {
                ptr: ptr.cast(),
                len,
            })
        }

        fn slice(&self) -> &[u8] {
            unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
        }

        fn slice_mut(&mut self) -> &mut [u8] {
            unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
        }

        fn write_u64(&mut self, gpa: u64, val: u64) {
            let off = usize::try_from(gpa).expect("gpa fits usize");
            self.slice_mut()[off..off + 8].copy_from_slice(&val.to_le_bytes());
        }

        fn read_u64(&self, gpa: u64) -> u64 {
            let off = usize::try_from(gpa).expect("gpa fits usize");
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.slice()[off..off + 8]);
            u64::from_le_bytes(b)
        }
    }

    impl Drop for GuestMem {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr.cast(), self.len);
            }
        }
    }

    /// The vcpu's shared `kvm_run` mapping (only `exit_reason`, at byte
    /// offset 8, is consulted).
    struct RunMap {
        ptr: *mut u8,
        len: usize,
    }

    unsafe impl Send for RunMap {}

    impl RunMap {
        fn exit_reason(&self) -> u32 {
            let mut b = [0u8; 4];
            b.copy_from_slice(unsafe { core::slice::from_raw_parts(self.ptr.add(8), 4) });
            u32::from_le_bytes(b)
        }
    }

    impl Drop for RunMap {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr.cast(), self.len);
            }
        }
    }

    /// A booted single-vcpu microVM executing the command loop.
    pub struct MicroVm {
        /// Keeps `/dev/kvm` open for the VM's lifetime.
        _kvm: File,
        /// VM fd (closed on drop).
        _vm: OwnedFd,
        /// vcpu fd.
        vcpu: OwnedFd,
        run: RunMap,
        mem: GuestMem,
        poisoned: Option<String>,
    }

    impl MicroVm {
        /// Boots a fresh microVM: long-mode vcpu, identity-mapped page
        /// tables, command loop loaded, RIP parked at the loop head.
        pub fn new() -> Result<MicroVm, String> {
            let kvm = open_kvm()?;
            let version = unsafe { ioctl(kvm.as_raw_fd(), KVM_GET_API_VERSION, 0) };
            if version != KVM_API_VERSION {
                return Err(format!(
                    "KVM api version {version} (need {KVM_API_VERSION})"
                ));
            }
            let vm_fd = unsafe { ioctl(kvm.as_raw_fd(), KVM_CREATE_VM, 0) };
            if vm_fd < 0 {
                return Err("KVM_CREATE_VM failed".into());
            }
            let vm = unsafe { OwnedFd::from_raw_fd(vm_fd) };

            let mut mem = GuestMem::new(MEM_SIZE)?;
            let region = KvmUserspaceMemoryRegion {
                slot: 0,
                flags: 0,
                guest_phys_addr: 0,
                memory_size: MEM_SIZE as u64,
                userspace_addr: mem.ptr as u64,
            };
            if unsafe { ioctl(vm.as_raw_fd(), KVM_SET_USER_MEMORY_REGION, &region) } < 0 {
                return Err("KVM_SET_USER_MEMORY_REGION failed".into());
            }

            let vcpu_fd = unsafe { ioctl(vm.as_raw_fd(), KVM_CREATE_VCPU, 0) };
            if vcpu_fd < 0 {
                return Err("KVM_CREATE_VCPU failed".into());
            }
            let vcpu = unsafe { OwnedFd::from_raw_fd(vcpu_fd) };

            let run_len = unsafe { ioctl(kvm.as_raw_fd(), KVM_GET_VCPU_MMAP_SIZE, 0) };
            if run_len <= 0 {
                return Err("KVM_GET_VCPU_MMAP_SIZE failed".into());
            }
            let run_len = run_len as usize;
            let run_ptr = unsafe {
                mmap(
                    core::ptr::null_mut(),
                    run_len,
                    PROT_READ | PROT_WRITE,
                    MAP_SHARED,
                    vcpu.as_raw_fd(),
                    0,
                )
            };
            if run_ptr as isize == -1 {
                return Err("mmap of kvm_run failed".into());
            }
            let run = RunMap {
                ptr: run_ptr.cast(),
                len: run_len,
            };

            // Page tables: identity-map the first 2 MiB with one large page.
            mem.write_u64(PML4_BASE, PDPT_BASE | 0b11); // present | write
            mem.write_u64(PDPT_BASE, PD_BASE | 0b11);
            mem.write_u64(PD_BASE, 0x83); // present | write | 2MiB page

            // Code.
            let code_off = usize::try_from(CODE_BASE).expect("fits");
            mem.slice_mut()[code_off..code_off + GUEST_CODE.len()].copy_from_slice(&GUEST_CODE);

            // Long-mode segmentation and control registers.
            let mut sregs = KvmSregs::default();
            if unsafe { ioctl(vcpu.as_raw_fd(), KVM_GET_SREGS, &mut sregs) } < 0 {
                return Err("KVM_GET_SREGS failed".into());
            }
            let code_seg = KvmSegment {
                base: 0,
                limit: 0xFFFF_FFFF,
                selector: 0x08,
                type_: 0x0B, // execute/read, accessed
                present: 1,
                dpl: 0,
                db: 0,
                s: 1,
                l: 1, // 64-bit
                g: 1,
                avl: 0,
                unusable: 0,
                padding: 0,
            };
            let data_seg = KvmSegment {
                base: 0,
                limit: 0xFFFF_FFFF,
                selector: 0x10,
                type_: 0x03, // read/write, accessed
                present: 1,
                dpl: 0,
                db: 1,
                s: 1,
                l: 0,
                g: 1,
                avl: 0,
                unusable: 0,
                padding: 0,
            };
            sregs.cs = code_seg;
            sregs.ds = data_seg;
            sregs.es = data_seg;
            sregs.fs = data_seg;
            sregs.gs = data_seg;
            sregs.ss = data_seg;
            sregs.cr3 = PML4_BASE;
            sregs.cr4 = 1 << 5; // PAE
            sregs.cr0 = 0x8005_0033; // PE | MP | ET | NE | WP | AM | PG
            sregs.efer = (1 << 8) | (1 << 10); // LME | LMA
            if unsafe { ioctl(vcpu.as_raw_fd(), KVM_SET_SREGS, &sregs) } < 0 {
                return Err("KVM_SET_SREGS failed".into());
            }

            let regs = KvmRegs {
                rip: CODE_BASE,
                rflags: 0x2,    // reserved bit
                rsp: DATA_BASE, // unused by the loop, but keep it mapped
                ..KvmRegs::default()
            };
            if unsafe { ioctl(vcpu.as_raw_fd(), KVM_SET_REGS, &regs) } < 0 {
                return Err("KVM_SET_REGS failed".into());
            }

            Ok(MicroVm {
                _kvm: kvm,
                _vm: vm,
                vcpu,
                run,
                mem,
                poisoned: None,
            })
        }

        /// Why this VM is dead, if it is.
        pub fn poisoned(&self) -> Option<&str> {
            self.poisoned.as_deref()
        }

        fn poison(&mut self, why: String) -> String {
            self.poisoned = Some(why.clone());
            why
        }

        /// Runs the vcpu until the guest parks on `HLT` (one command).
        fn run_to_hlt(&mut self) -> Result<(), String> {
            for _ in 0..MAX_EXITS_PER_CMD {
                if unsafe { ioctl(self.vcpu.as_raw_fd(), KVM_RUN, 0) } < 0 {
                    return Err(self.poison("KVM_RUN failed".into()));
                }
                match self.run.exit_reason() {
                    KVM_EXIT_HLT => return Ok(()),
                    // IO/MMIO/shutdown/failed-entry/internal-error: the
                    // guest left the command loop — it is not coming back.
                    r @ (2 | 6 | 8 | 9 | 17) => {
                        return Err(self.poison(format!("unexpected vmexit {r}")))
                    }
                    // Anything else (interrupted run, irq window) re-enters.
                    _ => {}
                }
            }
            Err(self.poison(format!(
                "guest did not reach HLT within {MAX_EXITS_PER_CMD} exits"
            )))
        }

        /// Executes one command (already staged in the command block).
        fn exec_cmd(&mut self, op: u64, gpa: u64, val: u64) -> Result<(), String> {
            if let Some(why) = &self.poisoned {
                return Err(why.clone());
            }
            if gpa < DATA_BASE || gpa + 8 > DATA_BASE + DATA_SIZE as u64 {
                return Err(self.poison(format!("guest address {gpa:#x} outside data region")));
            }
            self.mem.write_u64(CMD_BASE, op);
            self.mem.write_u64(CMD_BASE + 8, gpa);
            self.mem.write_u64(CMD_BASE + 16, val);
            self.run_to_hlt()
        }

        /// Stores `val` at guest physical address `gpa` *in the guest* (the
        /// vcpu executes the store).
        pub fn write_u64(&mut self, gpa: u64, val: u64) -> Result<(), String> {
            self.exec_cmd(OP_WRITE, gpa, val)
        }

        /// Loads the u64 at guest physical address `gpa` in the guest.
        pub fn read_u64(&mut self, gpa: u64) -> Result<u64, String> {
            self.exec_cmd(0, gpa, 0)?;
            Ok(self.mem.read_u64(CMD_BASE + 24))
        }

        /// A copy of the data region — the microVM half of a backend
        /// snapshot.
        pub fn snapshot_data(&self) -> Vec<u8> {
            let base = usize::try_from(DATA_BASE).expect("fits");
            self.mem.slice()[base..base + DATA_SIZE].to_vec()
        }

        /// Overwrites the data region from a [`MicroVm::snapshot_data`]
        /// copy.
        ///
        /// # Errors
        ///
        /// When `bytes` is not exactly [`DATA_SIZE`] long.
        pub fn restore_data(&mut self, bytes: &[u8]) -> Result<(), String> {
            if bytes.len() != DATA_SIZE {
                return Err(format!(
                    "data snapshot is {} bytes (expected {DATA_SIZE})",
                    bytes.len()
                ));
            }
            let base = usize::try_from(DATA_BASE).expect("fits");
            self.mem.slice_mut()[base..base + DATA_SIZE].copy_from_slice(bytes);
            Ok(())
        }

        /// Zeroes the data region (reboot-equivalent for guest state). Does
        /// not clear poisoning — a dead vcpu stays dead; boot a fresh VM.
        pub fn reset_data(&mut self) {
            let base = usize::try_from(DATA_BASE).expect("fits");
            self.mem.slice_mut()[base..base + DATA_SIZE].fill(0);
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod real {
    /// KVM probing on a non-x86_64 host: always unavailable.
    pub fn probe() -> Result<(), String> {
        Err("the kvm backend requires an x86_64 host".into())
    }

    /// Stub microVM for non-x86_64 hosts; construction always fails.
    pub struct MicroVm {
        never: core::convert::Infallible,
    }

    impl MicroVm {
        /// Always fails on this architecture.
        pub fn new() -> Result<MicroVm, String> {
            Err("the kvm backend requires an x86_64 host".into())
        }

        /// Unreachable (the VM cannot be constructed).
        pub fn poisoned(&self) -> Option<&str> {
            match self.never {}
        }

        /// Unreachable.
        pub fn write_u64(&mut self, _gpa: u64, _val: u64) -> Result<(), String> {
            match self.never {}
        }

        /// Unreachable.
        pub fn read_u64(&mut self, _gpa: u64) -> Result<u64, String> {
            match self.never {}
        }

        /// Unreachable.
        pub fn snapshot_data(&self) -> Vec<u8> {
            match self.never {}
        }

        /// Unreachable.
        pub fn restore_data(&mut self, _bytes: &[u8]) -> Result<(), String> {
            match self.never {}
        }

        /// Unreachable.
        pub fn reset_data(&mut self) {
            match self.never {}
        }
    }
}

pub use real::{probe, MicroVm};

#[cfg(test)]
mod tests {
    use super::*;

    /// The full guest round-trip, exercised only where a real KVM exists
    /// (skips cleanly on CI runners without `/dev/kvm`).
    #[test]
    fn guest_executes_reads_and_writes() {
        if let Err(why) = probe() {
            eprintln!("skipping: {why}");
            return;
        }
        let mut vm = MicroVm::new().expect("boot");
        let a = DATA_BASE;
        let b = DATA_BASE + 8;
        vm.write_u64(a, 0xDEAD_BEEF).expect("write a");
        vm.write_u64(b, 7).expect("write b");
        assert_eq!(vm.read_u64(a).expect("read a"), 0xDEAD_BEEF);
        assert_eq!(vm.read_u64(b).expect("read b"), 7);
        // Fresh cells read zero.
        assert_eq!(vm.read_u64(DATA_BASE + 64).expect("read fresh"), 0);
    }

    #[test]
    fn snapshot_and_restore_round_trip_guest_memory() {
        if let Err(why) = probe() {
            eprintln!("skipping: {why}");
            return;
        }
        let mut vm = MicroVm::new().expect("boot");
        vm.write_u64(DATA_BASE, 41).expect("write");
        let snap = vm.snapshot_data();
        vm.write_u64(DATA_BASE, 42).expect("overwrite");
        assert_eq!(vm.read_u64(DATA_BASE).expect("read"), 42);
        vm.restore_data(&snap).expect("restore");
        assert_eq!(vm.read_u64(DATA_BASE).expect("read"), 41);
        vm.reset_data();
        assert_eq!(vm.read_u64(DATA_BASE).expect("read"), 0);
    }

    #[test]
    fn out_of_region_access_poisons_the_vm() {
        if let Err(why) = probe() {
            eprintln!("skipping: {why}");
            return;
        }
        let mut vm = MicroVm::new().expect("boot");
        assert!(vm.write_u64(0x100, 1).is_err());
        assert!(vm.poisoned().is_some());
        // Dead VMs refuse further work.
        assert!(vm.read_u64(DATA_BASE).is_err());
    }

    #[test]
    fn restore_rejects_wrong_length() {
        if let Err(why) = probe() {
            eprintln!("skipping: {why}");
            return;
        }
        let mut vm = MicroVm::new().expect("boot");
        assert!(vm.restore_data(&[0u8; 3]).is_err());
    }
}
