//! Kernel events: background-thread invocations.

use serde::{
    Deserialize,
    Serialize, //
};

/// The kind of kernel background context that was invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KthreadKind {
    /// Deferred work executed by `kworkerd` (`queue_work`).
    Kworker,
    /// An RCU callback (`call_rcu`, runs in softirq context).
    RcuCallback,
    /// A timer callback.
    Timer,
}

/// The source context that triggered a background-thread invocation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvokeSource {
    /// A system call issued by the given user task.
    Syscall {
        /// User task id.
        task: u32,
    },
    /// Another background thread (chained deferral).
    Kthread {
        /// The invoking kernel-thread event's `work` id.
        work: u64,
    },
    /// A software interrupt.
    Softirq,
}

/// One background-thread invocation recorded by kernel event tracing
/// (ftrace `workqueue_queue_work` / `rcu_callback`-style events, §4.2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KthreadEvent {
    /// Invocation timestamp (nanoseconds since trace start).
    pub ts: u64,
    /// Execution duration in nanoseconds.
    pub dur: u64,
    /// What kind of background context ran.
    pub kind: KthreadKind,
    /// A stable id for the deferred work item.
    pub work: u64,
    /// The context that queued the work.
    pub source: InvokeSource,
    /// Symbol name of the work function (e.g. `"irqfd_shutdown"`).
    pub func: String,
}

impl KthreadEvent {
    /// End timestamp of the execution.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.ts + self.dur
    }
}

/// Convenience constructor for trace generators and tests.
#[must_use]
pub fn kthread(
    ts: u64,
    dur: u64,
    kind: KthreadKind,
    work: u64,
    source: InvokeSource,
) -> KthreadEvent {
    KthreadEvent {
        ts,
        dur,
        kind,
        work,
        source,
        func: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_is_ts_plus_dur() {
        let e = kthread(100, 20, KthreadKind::Kworker, 1, InvokeSource::Softirq);
        assert_eq!(e.end(), 120);
    }

    #[test]
    fn source_distinguishes_contexts() {
        assert_ne!(
            InvokeSource::Syscall { task: 1 },
            InvokeSource::Kthread { work: 1 }
        );
    }
}
