//! Failure information extracted from a crash report / coredump.
//!
//! AITIA "identifies the symptom of the failure (e.g., kernel panic or
//! watchdog report) and the location of the failure" by analyzing the crash
//! report (§4.2). This module models exactly that extract: the symptom
//! string, the faulting symbol, the failure timestamp, and the execution
//! contexts the report mentions.

use serde::{
    Deserialize,
    Serialize, //
};

/// The execution contexts named in a crash report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReportedContext {
    /// A user task executing a system call.
    Task {
        /// User task id.
        task: u32,
        /// System call name, when the report resolves it.
        syscall: Option<String>,
    },
    /// A kernel background thread.
    Kthread {
        /// Worker description (e.g. `"kworker/1:2"`).
        desc: String,
    },
}

/// Failure information AITIA takes as input alongside the trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureInfo {
    /// Symptom line of the report (e.g. `"KASAN: use-after-free Write in
    /// irq_bypass_register_consumer"`).
    pub symptom: String,
    /// Faulting symbol / function.
    pub location: String,
    /// Timestamp of the failure within the trace.
    pub ts: u64,
    /// Contexts the report mentions (criterion ii of the paper's bug
    /// selection: "a crash report contains multiple contexts").
    pub contexts: Vec<ReportedContext>,
}

impl FailureInfo {
    /// Whether the report involves a kernel background thread.
    #[must_use]
    pub fn involves_kthread(&self) -> bool {
        self.contexts
            .iter()
            .any(|c| matches!(c, ReportedContext::Kthread { .. }))
    }

    /// Whether the report names more than one execution context.
    #[must_use]
    pub fn multi_context(&self) -> bool {
        self.contexts.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> FailureInfo {
        FailureInfo {
            symptom: "KASAN: use-after-free Write in irq_bypass_register_consumer".into(),
            location: "irq_bypass_register_consumer".into(),
            ts: 1000,
            contexts: vec![
                ReportedContext::Task {
                    task: 7,
                    syscall: Some("ioctl".into()),
                },
                ReportedContext::Kthread {
                    desc: "kworker/1:2".into(),
                },
            ],
        }
    }

    #[test]
    fn context_queries() {
        let i = info();
        assert!(i.involves_kthread());
        assert!(i.multi_context());
    }

    #[test]
    fn single_task_report() {
        let mut i = info();
        i.contexts.truncate(1);
        assert!(!i.involves_kthread());
        assert!(!i.multi_context());
    }

    #[test]
    fn serde_roundtrip() {
        let i = info();
        let s = serde_json::to_string(&i).unwrap();
        let back: FailureInfo = serde_json::from_str(&s).unwrap();
        assert_eq!(i, back);
    }
}
