//! Timestamped system-call records.

use serde::{
    Deserialize,
    Serialize, //
};

/// One system call executed during a failed run, as recorded by the
/// bug-finding system with kernel event tracing enabled (§4.2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallRecord {
    /// Entry timestamp (nanoseconds since trace start).
    pub ts: u64,
    /// Duration in nanoseconds; the call occupies `[ts, ts + dur]`.
    pub dur: u64,
    /// User-space task id that issued the call.
    pub task: u32,
    /// System call name (e.g. `"setsockopt"`).
    pub name: String,
    /// Raw arguments, as the fuzzer recorded them.
    pub args: Vec<u64>,
    /// The file descriptor the call operates on, when applicable — used for
    /// semantic closure when slicing (`open`/`close` of the same fd are
    /// pulled into a slice containing its `read`/`write`, §4.2).
    pub fd: Option<u64>,
    /// Return value.
    pub ret: i64,
}

impl SyscallRecord {
    /// End timestamp of the call.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.ts + self.dur
    }

    /// Whether this call's time span overlaps `other`'s (the two executed
    /// concurrently).
    #[must_use]
    pub fn overlaps(&self, other: &SyscallRecord) -> bool {
        self.ts <= other.end() && other.ts <= self.end()
    }
}

/// Convenience constructor for trace generators and tests.
#[must_use]
pub fn syscall(ts: u64, dur: u64, task: u32, name: &str) -> SyscallRecord {
    SyscallRecord {
        ts,
        dur,
        task,
        name: name.to_string(),
        args: Vec::new(),
        fd: None,
        ret: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_symmetric_and_inclusive() {
        let a = syscall(0, 10, 1, "read");
        let b = syscall(10, 5, 2, "write");
        let c = syscall(15, 5, 2, "close");
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        // Spans are inclusive: b ends exactly where c starts.
        assert!(b.overlaps(&c));
    }

    #[test]
    fn end_is_ts_plus_dur() {
        assert_eq!(syscall(5, 7, 0, "x").end(), 12);
    }
}
