//! The execution history: a merged, timestamped event sequence.

use crate::{
    coredump::FailureInfo,
    event::KthreadEvent,
    syscall::SyscallRecord, //
};
use serde::{
    Deserialize,
    Serialize, //
};

/// One entry of the execution history.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Entry {
    /// A system call span.
    Syscall(SyscallRecord),
    /// A background-thread invocation span.
    Kthread(KthreadEvent),
}

impl Entry {
    /// Start timestamp.
    #[must_use]
    pub fn ts(&self) -> u64 {
        match self {
            Entry::Syscall(s) => s.ts,
            Entry::Kthread(k) => k.ts,
        }
    }

    /// End timestamp.
    #[must_use]
    pub fn end(&self) -> u64 {
        match self {
            Entry::Syscall(s) => s.end(),
            Entry::Kthread(k) => k.end(),
        }
    }

    /// Whether the two entries' spans overlap (executed concurrently).
    #[must_use]
    pub fn overlaps(&self, other: &Entry) -> bool {
        self.ts() <= other.end() && other.ts() <= self.end()
    }

    /// A short human-readable description.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Entry::Syscall(s) => format!("{}({})", s.name, s.task),
            Entry::Kthread(k) => format!("{:?}[{}]", k.kind, k.work),
        }
    }
}

/// The modeled execution history of one failed run (§4.2): system calls with
/// parameters plus kernel background-thread invocations, all timestamped so
/// concurrent events can be identified.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecHistory {
    /// Entries, kept sorted by start timestamp.
    entries: Vec<Entry>,
    /// The failure extract from the crash report.
    pub failure: Option<FailureInfo>,
}

impl ExecHistory {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        ExecHistory::default()
    }

    /// Adds a system call record.
    pub fn push_syscall(&mut self, s: SyscallRecord) {
        self.entries.push(Entry::Syscall(s));
        self.entries.sort_by_key(Entry::ts);
    }

    /// Adds a background-thread invocation.
    pub fn push_kthread(&mut self, k: KthreadEvent) {
        self.entries.push(Entry::Kthread(k));
        self.entries.sort_by_key(Entry::ts);
    }

    /// Attaches the crash-report extract.
    pub fn set_failure(&mut self, f: FailureInfo) {
        self.failure = Some(f);
    }

    /// All entries, sorted by start timestamp.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Entries whose span starts at or before `ts` (candidates for slicing:
    /// events after the failure cannot have caused it).
    #[must_use]
    pub fn entries_before(&self, ts: u64) -> Vec<&Entry> {
        self.entries.iter().filter(|e| e.ts() <= ts).collect()
    }

    /// Groups entries into *connected components of concurrency*: two
    /// entries are linked when their spans overlap. Components are returned
    /// ordered by their latest end timestamp, descending — nearest the
    /// failure first, matching the paper's backward slicing.
    #[must_use]
    pub fn concurrency_groups(&self, before: u64) -> Vec<Vec<&Entry>> {
        let cand = self.entries_before(before);
        let n = cand.len();
        let mut comp: Vec<usize> = (0..n).collect();
        fn find(comp: &mut Vec<usize>, x: usize) -> usize {
            if comp[x] != x {
                let r = find(comp, comp[x]);
                comp[x] = r;
                r
            } else {
                x
            }
        }
        for (i, a) in cand.iter().enumerate() {
            for (j, b) in cand.iter().enumerate().skip(i + 1) {
                if a.overlaps(b) {
                    let (a, b) = (find(&mut comp, i), find(&mut comp, j));
                    if a != b {
                        comp[a] = b;
                    }
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<&Entry>> = Default::default();
        for (i, e) in cand.iter().enumerate() {
            let root = find(&mut comp, i);
            groups.entry(root).or_default().push(e);
        }
        let mut out: Vec<Vec<&Entry>> = groups.into_values().collect();
        out.sort_by_key(|g| std::cmp::Reverse(g.iter().map(|e| e.end()).max().unwrap_or(0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{
        kthread,
        InvokeSource,
        KthreadKind, //
    };
    use crate::syscall::syscall;

    fn history() -> ExecHistory {
        let mut h = ExecHistory::new();
        // Early isolated call.
        h.push_syscall(syscall(0, 5, 1, "open"));
        // Concurrent cluster near the failure.
        h.push_syscall(syscall(100, 50, 1, "ioctl"));
        h.push_syscall(syscall(120, 60, 2, "ioctl"));
        h.push_kthread(kthread(
            150,
            40,
            KthreadKind::Kworker,
            9,
            InvokeSource::Syscall { task: 2 },
        ));
        h
    }

    #[test]
    fn entries_stay_sorted() {
        let h = history();
        let ts: Vec<u64> = h.entries().iter().map(Entry::ts).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn groups_cluster_overlapping_entries() {
        let h = history();
        let groups = h.concurrency_groups(u64::MAX);
        assert_eq!(groups.len(), 2);
        // Nearest-failure group first: the 3-entry concurrent cluster.
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[1].len(), 1);
        assert_eq!(groups[1][0].describe(), "open(1)");
    }

    #[test]
    fn entries_after_cutoff_excluded() {
        let h = history();
        let groups = h.concurrency_groups(50);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 1);
    }

    #[test]
    fn transitive_overlap_joins_groups() {
        let mut h = ExecHistory::new();
        // a overlaps b, b overlaps c, a does not overlap c — still one group.
        h.push_syscall(syscall(0, 10, 1, "a"));
        h.push_syscall(syscall(8, 10, 2, "b"));
        h.push_syscall(syscall(16, 10, 3, "c"));
        let groups = h.concurrency_groups(u64::MAX);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }
}
