//! ftrace-style serialization of execution histories.
//!
//! The paper obtains its execution history "by enabling kernel-event tracing
//! (e.g., ftrace in Linux)" (§4.2). This module renders a history in an
//! ftrace-flavoured text form for human inspection and round-trips it as
//! JSON-lines for tool interchange.

use crate::trace::{
    Entry,
    ExecHistory, //
};

/// Renders the history in an ftrace-flavoured text format (display only).
#[must_use]
pub fn render(history: &ExecHistory) -> String {
    let mut out = String::new();
    out.push_str("# tracer: aitia-hist\n#\n#   TASK-CTX      TIMESTAMP  FUNCTION\n");
    for e in history.entries() {
        match e {
            Entry::Syscall(s) => {
                out.push_str(&format!(
                    "  task-{:<5} [{:>10}] sys_enter: {}({}) = {}\n",
                    s.task,
                    s.ts,
                    s.name,
                    s.args
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                    s.ret
                ));
                out.push_str(&format!(
                    "  task-{:<5} [{:>10}] sys_exit: {}\n",
                    s.task,
                    s.end(),
                    s.name
                ));
            }
            Entry::Kthread(k) => {
                out.push_str(&format!(
                    "  {:?}-{:<4} [{:>10}] invoke: {} (src {:?})\n",
                    k.kind, k.work, k.ts, k.func, k.source
                ));
            }
        }
    }
    if let Some(f) = &history.failure {
        out.push_str(&format!(
            "# FAILURE [{:>10}] {} in {}\n",
            f.ts, f.symptom, f.location
        ));
    }
    out
}

/// Serializes the history as JSON lines (one entry per line, failure last).
///
/// # Errors
///
/// Propagates JSON serialization failures.
pub fn to_jsonl(history: &ExecHistory) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for e in history.entries() {
        out.push_str(&serde_json::to_string(e)?);
        out.push('\n');
    }
    if let Some(f) = &history.failure {
        out.push_str("#failure ");
        out.push_str(&serde_json::to_string(f)?);
        out.push('\n');
    }
    Ok(out)
}

/// Parses a JSON-lines history produced by [`to_jsonl`].
///
/// # Errors
///
/// Propagates JSON parse failures.
pub fn from_jsonl(text: &str) -> Result<ExecHistory, serde_json::Error> {
    let mut h = ExecHistory::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("#failure ") {
            h.set_failure(serde_json::from_str(rest)?);
            continue;
        }
        match serde_json::from_str::<Entry>(line)? {
            Entry::Syscall(s) => h.push_syscall(s),
            Entry::Kthread(k) => h.push_kthread(k),
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coredump::FailureInfo;
    use crate::event::{
        kthread,
        InvokeSource,
        KthreadKind, //
    };
    use crate::syscall::syscall;

    fn sample() -> ExecHistory {
        let mut h = ExecHistory::new();
        h.push_syscall(syscall(100, 50, 1, "ioctl"));
        h.push_kthread(kthread(
            150,
            40,
            KthreadKind::RcuCallback,
            3,
            InvokeSource::Softirq,
        ));
        h.set_failure(FailureInfo {
            symptom: "general protection fault".into(),
            location: "dev_map_hash_update_elem".into(),
            ts: 180,
            contexts: vec![],
        });
        h
    }

    #[test]
    fn jsonl_roundtrip_preserves_history() {
        let h = sample();
        let text = to_jsonl(&h).unwrap();
        let back = from_jsonl(&text).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn render_mentions_all_entries_and_failure() {
        let s = render(&sample());
        assert!(s.contains("sys_enter: ioctl"));
        assert!(s.contains("RcuCallback"));
        assert!(s.contains("FAILURE"));
        assert!(s.contains("dev_map_hash_update_elem"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let h = sample();
        let text = format!("\n{}\n\n", to_jsonl(&h).unwrap());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(h, back);
    }
}
