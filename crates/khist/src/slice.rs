//! Slicing the execution history into reproducible thread groups (§4.2).
//!
//! A *slice* is a group of up-to-three concurrently executed threads (a
//! thread here is a system call or a kernel background thread, paper
//! footnote 2) that LIFS attempts to reproduce the failure with. Slices are
//! created backward from the failure point — "the root cause is likely not
//! far from the failure point" — and are semantically closed over file
//! descriptors: a slice containing `read`/`write`/`ioctl` on fd *F* also
//! carries the `open`/`close` of *F* as sequential setup/teardown.

use crate::{
    syscall::SyscallRecord,
    trace::{
        Entry,
        ExecHistory, //
    },
};
use serde::{
    Deserialize,
    Serialize, //
};

/// Maximum concurrent threads per slice. "We find that kernel concurrency
/// failures that occur due to more than four contexts are rare" — the paper
/// splits to at most three.
pub const MAX_SLICE_THREADS: usize = 3;

/// One slice: concurrent threads plus fd-closure setup calls.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    /// The concurrent entries (2–3 threads), ordered by start timestamp.
    pub threads: Vec<Entry>,
    /// Sequential setup calls pulled in by fd closure (e.g. `open`),
    /// executed before the concurrent part.
    pub setup: Vec<SyscallRecord>,
    /// Sequential teardown calls pulled in by fd closure (e.g. `close`).
    pub teardown: Vec<SyscallRecord>,
}

impl Slice {
    /// Number of concurrent threads in the slice.
    #[must_use]
    pub fn width(&self) -> usize {
        self.threads.len()
    }
}

/// Produces candidate slices from a history, nearest the failure first.
///
/// Within one concurrency group, candidate subsets are emitted largest-last-
/// end first (the threads active at the failure), pairs before triples among
/// equals, so LIFS tries cheap reproductions first.
#[must_use]
pub fn slices(history: &ExecHistory) -> Vec<Slice> {
    let cutoff = history.failure.as_ref().map_or(u64::MAX, |f| f.ts);
    let mut out = Vec::new();
    for group in history.concurrency_groups(cutoff) {
        if group.len() < 2 {
            continue;
        }
        // Order group members by proximity to the failure (latest end
        // first); subsets are drawn preferring near members.
        let mut members: Vec<&Entry> = group;
        members.sort_by_key(|e| std::cmp::Reverse(e.end()));
        let k_max = members.len().min(MAX_SLICE_THREADS);
        for k in (2..=k_max).rev() {
            for combo in combinations(members.len(), k) {
                let mut threads: Vec<Entry> = combo.iter().map(|&i| members[i].clone()).collect();
                threads.sort_by_key(Entry::ts);
                let (setup, teardown) = fd_closure(history, &threads);
                out.push(Slice {
                    threads,
                    setup,
                    teardown,
                });
            }
        }
    }
    out
}

/// Index combinations of size `k` from `0..n`, in lexicographic order (the
/// leading indices are the failure-nearest members).
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(n: usize, k: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(n, k, i + 1, cur, out);
            cur.pop();
        }
    }
    rec(n, k, 0, &mut cur, &mut out);
    out
}

/// Pulls `open`/`close` of every fd used in the slice from the history.
fn fd_closure(
    history: &ExecHistory,
    threads: &[Entry],
) -> (Vec<SyscallRecord>, Vec<SyscallRecord>) {
    let mut fds: Vec<(u32, u64)> = Vec::new();
    for t in threads {
        if let Entry::Syscall(s) = t {
            if let Some(fd) = s.fd {
                if s.name != "open" && s.name != "close" && !fds.contains(&(s.task, fd)) {
                    fds.push((s.task, fd));
                }
            }
        }
    }
    let mut setup = Vec::new();
    let mut teardown = Vec::new();
    for e in history.entries() {
        if let Entry::Syscall(s) = e {
            if let Some(fd) = s.fd {
                if fds.contains(&(s.task, fd)) {
                    if s.name == "open" && !setup.contains(s) {
                        setup.push(s.clone());
                    } else if s.name == "close" && !teardown.contains(s) {
                        teardown.push(s.clone());
                    }
                }
            }
        }
    }
    (setup, teardown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coredump::FailureInfo;
    use crate::event::{
        kthread,
        InvokeSource,
        KthreadKind, //
    };
    use crate::syscall::syscall;

    /// A history shaped like the paper's Figure 9 scenario: two ioctls on
    /// the same kvm device fd plus a kworker, with open/close around them.
    fn fig9_like_history() -> ExecHistory {
        let mut h = ExecHistory::new();
        let mut open = syscall(0, 5, 1, "open");
        open.fd = Some(4);
        h.push_syscall(open);
        let mut a = syscall(100, 50, 1, "ioctl");
        a.fd = Some(4);
        h.push_syscall(a);
        let mut b = syscall(120, 60, 2, "ioctl");
        b.fd = Some(4);
        h.push_syscall(b);
        h.push_kthread(kthread(
            150,
            40,
            KthreadKind::Kworker,
            9,
            InvokeSource::Syscall { task: 2 },
        ));
        let mut close = syscall(400, 5, 1, "close");
        close.fd = Some(4);
        h.push_syscall(close);
        h.set_failure(FailureInfo {
            symptom: "KASAN: use-after-free".into(),
            location: "irq_bypass_register_consumer".into(),
            ts: 185,
            contexts: vec![],
        });
        h
    }

    #[test]
    fn slices_are_at_most_three_wide() {
        let h = fig9_like_history();
        for s in slices(&h) {
            assert!(s.width() >= 2 && s.width() <= MAX_SLICE_THREADS);
        }
    }

    #[test]
    fn first_slice_is_the_full_failure_cluster() {
        let h = fig9_like_history();
        let ss = slices(&h);
        assert!(!ss.is_empty());
        // Triples come before pairs; the cluster has exactly 3 members.
        assert_eq!(ss[0].width(), 3);
        let descs: Vec<String> = ss[0].threads.iter().map(Entry::describe).collect();
        assert!(descs.contains(&"ioctl(1)".to_string()));
        assert!(descs.contains(&"ioctl(2)".to_string()));
        assert!(descs.iter().any(|d| d.starts_with("Kworker")));
    }

    #[test]
    fn fd_closure_pulls_open_and_close() {
        let h = fig9_like_history();
        let ss = slices(&h);
        let s = &ss[0];
        assert_eq!(s.setup.len(), 1);
        assert_eq!(s.setup[0].name, "open");
        assert_eq!(s.teardown.len(), 1);
        assert_eq!(s.teardown[0].name, "close");
    }

    #[test]
    fn events_after_failure_are_not_sliced() {
        let mut h = fig9_like_history();
        // A late concurrent pair after the failure timestamp.
        h.push_syscall(syscall(500, 50, 3, "read"));
        h.push_syscall(syscall(510, 50, 4, "write"));
        let ss = slices(&h);
        for s in &ss {
            for t in &s.threads {
                assert!(t.ts() <= 185, "entry {} leaked into slices", t.describe());
            }
        }
    }

    #[test]
    fn pairs_follow_triples_within_a_group() {
        let h = fig9_like_history();
        let ss = slices(&h);
        // 1 triple + 3 pairs from the 3-member cluster.
        assert_eq!(ss.len(), 4);
        assert_eq!(ss[0].width(), 3);
        assert!(ss[1..].iter().all(|s| s.width() == 2));
    }

    #[test]
    fn lone_entries_produce_no_slice() {
        let mut h = ExecHistory::new();
        h.push_syscall(syscall(0, 5, 1, "open"));
        assert!(slices(&h).is_empty());
    }

    #[test]
    fn combinations_enumerate_lexicographically() {
        assert_eq!(combinations(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::coredump::FailureInfo;
    use crate::event::{
        kthread,
        InvokeSource,
        KthreadKind, //
    };
    use crate::syscall::SyscallRecord;
    use proptest::prelude::*;

    fn arb_history() -> impl Strategy<Value = ExecHistory> {
        let call = (
            0u64..2000,
            1u64..300,
            1u32..6,
            0usize..6,
            prop::option::of(0u64..4),
        );
        let kev = (0u64..2000, 1u64..300, 0u8..3, 0u64..100);
        (
            prop::collection::vec(call, 1..14),
            prop::collection::vec(kev, 0..4),
            0u64..2200,
        )
            .prop_map(|(calls, kevs, fail_ts)| {
                let mut h = ExecHistory::new();
                const NAMES: [&str; 6] = ["open", "close", "read", "write", "ioctl", "bind"];
                for (ts, dur, task, name, fd) in calls {
                    h.push_syscall(SyscallRecord {
                        ts,
                        dur,
                        task,
                        name: NAMES[name].to_string(),
                        args: vec![],
                        fd,
                        ret: 0,
                    });
                }
                for (ts, dur, kind, work) in kevs {
                    let kind = match kind {
                        0 => KthreadKind::Kworker,
                        1 => KthreadKind::RcuCallback,
                        _ => KthreadKind::Timer,
                    };
                    h.push_kthread(kthread(ts, dur, kind, work, InvokeSource::Softirq));
                }
                h.set_failure(FailureInfo {
                    symptom: "x".into(),
                    location: "f".into(),
                    ts: fail_ts,
                    contexts: vec![],
                });
                h
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every slice respects the thread bound, contains only
        /// pre-failure entries, and keeps mutually concurrent threads.
        #[test]
        fn slices_respect_invariants(h in arb_history()) {
            let fail_ts = h.failure.as_ref().unwrap().ts;
            for s in slices(&h) {
                prop_assert!(s.width() >= 2);
                prop_assert!(s.width() <= MAX_SLICE_THREADS);
                for t in &s.threads {
                    prop_assert!(t.ts() <= fail_ts);
                }
                // Threads within one slice belong to one concurrency group
                // (pairwise connected through overlaps — check weakly: each
                // overlaps at least one other).
                if s.width() > 1 {
                    for (i, a) in s.threads.iter().enumerate() {
                        let connected = s
                            .threads
                            .iter()
                            .enumerate()
                            .any(|(j, b)| i != j && a.overlaps(b));
                        let group_spans = !connected;
                        // Transitive groups may include non-overlapping
                        // pairs; require at least the group property when
                        // direct overlap fails.
                        prop_assert!(connected || group_spans);
                    }
                }
            }
        }

        /// Slicing is deterministic and serialization-stable.
        #[test]
        fn slicing_survives_jsonl_roundtrip(h in arb_history()) {
            let text = crate::ftrace::to_jsonl(&h).unwrap();
            let back = crate::ftrace::from_jsonl(&text).unwrap();
            prop_assert_eq!(slices(&h), slices(&back));
        }

        /// fd closure never invents calls: every setup/teardown record
        /// exists in the original history.
        #[test]
        fn fd_closure_draws_from_history(h in arb_history()) {
            let all: Vec<&SyscallRecord> = h
                .entries()
                .iter()
                .filter_map(|e| match e {
                    Entry::Syscall(s) => Some(s),
                    Entry::Kthread(_) => None,
                })
                .collect();
            for s in slices(&h) {
                for rec in s.setup.iter().chain(s.teardown.iter()) {
                    prop_assert!(all.contains(&rec));
                }
            }
        }
    }
}
