//! `khist` — execution-history modeling for AITIA (§4.2).
//!
//! AITIA's input is a timestamped system-call trace plus failure information
//! from a bug-finding system (Syzkaller with ftrace events enabled). This
//! crate models that input and implements the history processing of the
//! paper's modeling stage:
//!
//! * [`syscall`] / [`event`] — timestamped syscall spans and kernel
//!   background-thread invocation events;
//! * [`coredump`] — the failure extract (symptom, location, contexts);
//! * [`trace`] — the merged history with concurrency-group detection;
//! * [`mod@slice`] — backward slicing into ≤3-thread groups with
//!   file-descriptor semantic closure;
//! * [`ftrace`] — ftrace-flavoured rendering and JSON-lines interchange.
//!
//! The crate is independent of the simulator: it manipulates trace records
//! only. Mapping a slice onto an executable `ksim` program is the corpus'
//! job.
//!
//! # Example
//!
//! ```
//! use khist::{ExecHistory, FailureInfo, SyscallRecord};
//!
//! let mut h = ExecHistory::new();
//! for (ts, task, name) in [(100, 1, "ioctl"), (120, 2, "close")] {
//!     h.push_syscall(SyscallRecord {
//!         ts, dur: 50, task, name: name.into(),
//!         args: vec![], fd: Some(3), ret: 0,
//!     });
//! }
//! h.set_failure(FailureInfo {
//!     symptom: "KASAN: use-after-free".into(),
//!     location: "kvm_create_device".into(),
//!     ts: 160,
//!     contexts: vec![],
//! });
//! let slices = khist::slices(&h);
//! assert_eq!(slices[0].width(), 2); // the two concurrent calls
//! ```

#![warn(missing_docs)]

pub mod coredump;
pub mod event;
pub mod ftrace;
pub mod slice;
pub mod syscall;
pub mod trace;

pub use coredump::{
    FailureInfo,
    ReportedContext, //
};
pub use event::{
    InvokeSource,
    KthreadEvent,
    KthreadKind, //
};
pub use slice::{
    slices,
    Slice,
    MAX_SLICE_THREADS, //
};
pub use syscall::SyscallRecord;
pub use trace::{
    Entry,
    ExecHistory, //
};
