//! Kairux-style inflection-point localization (the paper's §5.3 comparator).
//!
//! Kairux defines the root cause as the *inflection point*: "an instruction
//! that resides in a failed run and deviates from all non-failed runs". We
//! implement the concurrency instantiation the paper discusses: project
//! every run onto its sequence of static instructions, find the longest
//! prefix of the failing run shared with any passing run, and report the
//! first deviating instruction.
//!
//! The comparison point (§5.3): the output is a *single instruction*, so it
//! cannot express multi-race causality chains — the comprehensiveness gap
//! Table 1 records.

use crate::sampler::SampledRun;
use ksim::{
    InstrAddr,
    Trace, //
};

/// The reported inflection point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InflectionPoint {
    /// The first instruction of the failing run deviating from every
    /// passing run.
    pub at: InstrAddr,
    /// Position within the failing trace.
    pub position: usize,
}

fn projection(trace: &Trace) -> Vec<InstrAddr> {
    trace.iter().map(|r| r.at).collect()
}

fn lcp(a: &[InstrAddr], b: &[InstrAddr]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Locates the inflection point of `failing` against the passing runs.
///
/// Returns `None` when the failing run is a prefix of some passing run
/// (no deviation exists) or when there are no passing runs to compare
/// against.
#[must_use]
pub fn inflection_point(failing: &Trace, passing: &[SampledRun]) -> Option<InflectionPoint> {
    if passing.is_empty() {
        return None;
    }
    let f = projection(failing);
    let best = passing
        .iter()
        .map(|p| lcp(&f, &projection(&p.trace)))
        .max()
        .unwrap_or(0);
    if best >= f.len() {
        return None;
    }
    Some(InflectionPoint {
        at: f[best],
        position: best,
    })
}

/// Whether an inflection point *covers* a causality chain: Kairux's single
/// instruction explains the chain only when the chain has a single race and
/// the instruction is one of its ends. This is the §5.3 comprehensiveness
/// measurement.
#[must_use]
pub fn covers_chain(point: &InflectionPoint, chain: &aitia::CausalityChain) -> bool {
    if chain.race_count() != 1 {
        return false;
    }
    chain
        .nodes
        .iter()
        .flat_map(|n| n.races().iter())
        .any(|r| r.first == point.at || r.second == point.at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{
        sample_runs,
        split,
        SamplerConfig, //
    };
    use ksim::builder::ProgramBuilder;
    use std::sync::Arc;

    #[test]
    fn inflection_point_found_for_racy_program() {
        let mut p = ProgramBuilder::new("racy");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "w");
            a.store_global(ptr_valid, 1u64);
            a.load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "c");
            let out = b.new_label();
            b.load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let (fail, pass) = split(sample_runs(&prog, 300, 11, &SamplerConfig::default()));
        assert!(!fail.is_empty() && !pass.is_empty());
        let ip = inflection_point(&fail[0].trace, &pass).expect("deviation exists");
        assert!(ip.position < fail[0].trace.len());
    }

    #[test]
    fn no_passing_runs_means_no_point() {
        assert!(inflection_point(&Trace::new(), &[]).is_none());
    }
}
