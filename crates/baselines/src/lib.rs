//! `baselines` — the root-cause-diagnosis techniques AITIA is compared
//! against (paper Table 1 and §5.3).
//!
//! * [`kairux`] — inflection-point localization: the first instruction of
//!   the failing run deviating from every passing run (a single
//!   instruction, hence not *comprehensive* for multi-race chains);
//! * [`coop`] — cooperative bug localization (Gist/Snorlax/CCI style):
//!   statistical ranking of predefined single-variable order/atomicity
//!   violation patterns (hence not *pattern-agnostic*);
//! * [`muvi`] — access-correlation mining: flags multi-variable pairs by
//!   co-access probability (fails on loosely correlated objects);
//! * [`replay`] — naive replay-based benign-race classification (flips a
//!   race without preserving the other orders, hence misclassifies);
//! * [`sampler`] — the randomized-schedule execution sampler the
//!   statistical baselines consume.
//!
//! Each module measures, on the shared corpus, exactly the comparison the
//! paper makes.

#![warn(missing_docs)]

pub mod coop;
pub mod kairux;
pub mod muvi;
pub mod replay;
pub mod sampler;

pub use coop::{
    localize,
    Pattern,
    RankedPattern, //
};
pub use kairux::{
    inflection_point,
    InflectionPoint, //
};
pub use muvi::{
    correlations,
    flags_pair,
    THRESHOLD,
    WINDOW, //
};
pub use replay::{
    classify_all,
    ReplayVerdict, //
};
pub use sampler::{
    sample_runs,
    split,
    SampledRun,
    SamplerConfig, //
};
