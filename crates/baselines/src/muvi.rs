//! MUVI-style access-correlation inference (§2.2, §5.3).
//!
//! MUVI assumes that semantically correlated variables are *accessed
//! together*: "if one of these two is accessed, the other variable should
//! be accessed with a high probability". It mines that correlation from
//! execution traces and flags variable pairs whose correlation crosses a
//! threshold as multi-variable candidates.
//!
//! The §2.2/§5.3 comparison point: kernel multi-variable races often
//! involve *loosely correlated* objects (different subsystems, most paths
//! touching only one of the two), which fall below any reasonable
//! correlation threshold — MUVI's assumption fails on exactly the
//! asterisked rows of Table 3.

use crate::sampler::SampledRun;
use ksim::Addr;
use std::collections::{
    HashMap,
    HashSet, //
};

/// Default co-access window (instructions within one thread).
pub const WINDOW: usize = 8;

/// Default correlation threshold for flagging a pair.
pub const THRESHOLD: f64 = 0.6;

/// Computes pairwise co-access correlation over the sampled traces.
///
/// For each ordered pair `(x, y)` of shared addresses:
/// `corr(x, y) = P(y accessed within WINDOW same-thread instructions | x accessed)`.
/// The symmetric correlation of a pair is the *minimum* of the two
/// directions (both variables must imply each other, per MUVI).
#[must_use]
pub fn correlations(samples: &[SampledRun], window: usize) -> HashMap<(Addr, Addr), f64> {
    let mut x_count: HashMap<Addr, usize> = HashMap::new();
    let mut co_count: HashMap<(Addr, Addr), usize> = HashMap::new();
    for run in samples {
        // Per-thread access streams.
        let mut streams: HashMap<ksim::ThreadId, Vec<Addr>> = HashMap::new();
        for rec in &run.trace {
            for acc in &rec.accesses {
                streams.entry(rec.tid).or_default().push(acc.addr);
            }
        }
        for stream in streams.values() {
            for (i, &x) in stream.iter().enumerate() {
                *x_count.entry(x).or_insert(0) += 1;
                let mut seen: HashSet<Addr> = HashSet::new();
                for &y in stream.iter().skip(i + 1).take(window) {
                    if y != x && seen.insert(y) {
                        *co_count.entry((x, y)).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let mut out = HashMap::new();
    for (&(x, y), &co) in &co_count {
        let cx = x_count.get(&x).copied().unwrap_or(1) as f64;
        out.insert((x, y), co as f64 / cx);
    }
    out
}

/// The symmetric correlation of a pair (minimum of both directions).
#[must_use]
pub fn pair_correlation(corr: &HashMap<(Addr, Addr), f64>, x: Addr, y: Addr) -> f64 {
    let a = corr.get(&(x, y)).copied().unwrap_or(0.0);
    let b = corr.get(&(y, x)).copied().unwrap_or(0.0);
    a.min(b)
}

/// Whether MUVI would flag `(x, y)` as a correlated multi-variable pair.
#[must_use]
pub fn flags_pair(corr: &HashMap<(Addr, Addr), f64>, x: Addr, y: Addr, threshold: f64) -> bool {
    pair_correlation(corr, x, y) >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{
        sample_runs,
        SamplerConfig, //
    };
    use ksim::builder::ProgramBuilder;
    use std::sync::Arc;

    #[test]
    fn tight_pair_correlates_loose_pair_does_not() {
        // Thread A always accesses t1 and t2 together (tight). Thread B
        // hammers l1 alone and touches l2 once (loose).
        let mut p = ProgramBuilder::new("corr");
        let t1 = p.global("tight1", 0);
        let t2 = p.global("tight2", 0);
        let l1 = p.global("loose1", 0);
        let l2 = p.global("loose2", 0);
        {
            let mut a = p.syscall_thread("A", "t");
            for _ in 0..8 {
                a.fetch_add_global(t1, 1u64);
                a.fetch_add_global(t2, 1u64);
            }
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "l");
            for _ in 0..16 {
                b.fetch_add_global(l1, 1u64);
            }
            b.fetch_add_global(l2, 1u64);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let samples = sample_runs(&prog, 20, 5, &SamplerConfig::default());
        let corr = correlations(&samples, WINDOW);
        assert!(
            flags_pair(&corr, t1.addr(), t2.addr(), THRESHOLD),
            "tight pair must be flagged: {}",
            pair_correlation(&corr, t1.addr(), t2.addr())
        );
        assert!(
            !flags_pair(&corr, l1.addr(), l2.addr(), THRESHOLD),
            "loose pair must not be flagged: {}",
            pair_correlation(&corr, l1.addr(), l2.addr())
        );
    }

    #[test]
    fn empty_samples_have_no_correlations() {
        let corr = correlations(&[], WINDOW);
        assert!(corr.is_empty());
    }
}
