//! Naive replay-based benign-race classification (§2.3).
//!
//! Narayanasamy et al. classify a detected race by replaying both orders of
//! the racing pair and comparing outcomes. The crucial difference from
//! Causality Analysis: the naive replay does **not** preserve the other
//! interleaving orders of the failure-causing sequence — it simply forces
//! the flipped pair from a fresh execution and lets everything else run
//! free. Races whose effect depends on the surrounding interleavings get
//! misclassified (the paper cites ≈40% misclassification among
//! harmful-flagged races), which is exactly what this module exhibits next
//! to `aitia::causality`.

use aitia::{
    enforce::{
        self,
        EnforceConfig, //
    },
    race::RaceEnd,
    schedule::{
        Anchor,
        SchedPoint,
        Schedule, //
    },
    FailingRun, ObservedRace,
};
use ksim::Engine;
use std::sync::Arc;

/// Classification verdict of the naive replay analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// Outcomes differ between the two orders: flagged harmful.
    Harmful,
    /// Same outcome in both orders: flagged benign.
    Benign,
}

/// Classifies one race by running both orders without preserving any other
/// interleaving order.
#[must_use]
pub fn classify(run: &FailingRun, race: &ObservedRace) -> ReplayVerdict {
    let program = Arc::clone(&run.program);
    let first_sel = run.sel(race.first.tid);
    let second_sel = match &race.second {
        RaceEnd::Executed(a) => run.sel(a.tid),
        RaceEnd::Pending { tid, .. } => run.sel(*tid),
    };
    let second_at = race.second.at();

    // Order 1: first end's thread gated at the racing instruction until the
    // other thread completes — approximates "first ⇒ second".
    let forward = Schedule {
        start: Some(second_sel),
        points: vec![SchedPoint {
            thread: second_sel,
            at: second_at,
            nth: 0,
            when: Anchor::Before,
            switch_to: first_sel,
        }],
        fallback: vec![first_sel, second_sel],
        segments: Vec::new(),
    };
    // Order 2: the reverse gate.
    let backward = Schedule {
        start: Some(first_sel),
        points: vec![SchedPoint {
            thread: first_sel,
            at: race.first.at,
            nth: 0,
            when: Anchor::Before,
            switch_to: second_sel,
        }],
        fallback: vec![second_sel, first_sel],
        segments: Vec::new(),
    };
    let outcome = |schedule: &Schedule| {
        let mut engine = Engine::new(Arc::clone(&program));
        let res = enforce::run(&mut engine, schedule, &EnforceConfig::default());
        res.failure.map(|f| f.kind)
    };
    if outcome(&forward) == outcome(&backward) {
        ReplayVerdict::Benign
    } else {
        ReplayVerdict::Harmful
    }
}

/// Classifies every race of a failing run and reports agreement with the
/// ground truth from Causality Analysis.
#[must_use]
pub fn classify_all(run: &FailingRun) -> Vec<(ObservedRace, ReplayVerdict)> {
    run.races
        .iter()
        .map(|r| (r.clone(), classify(run, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitia::{
        CausalityAnalysis,
        CausalityConfig,
        Lifs,
        LifsConfig,
        Verdict, //
    };
    use ksim::builder::ProgramBuilder;

    #[test]
    fn replay_disagrees_with_causality_analysis_somewhere() {
        // Fig-1-like bug plus benign counters: the naive replay classifies
        // races without preserving the remaining orders, so its verdicts
        // need not match Causality Analysis everywhere.
        let mut p = ProgramBuilder::new("replay");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        let stats = p.global("stats", 0);
        {
            let mut a = p.syscall_thread("A", "w");
            a.fetch_add_global(stats, 1u64);
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "c");
            b.fetch_add_global(stats, 1u64);
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        let prog = std::sync::Arc::new(p.build().unwrap());
        let run = Lifs::new(prog, LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        let truth = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        let replay = classify_all(&run);
        assert_eq!(replay.len(), run.races.len());
        // Ground truth marks the counter race benign; replay classifies the
        // same set of races, and we can measure agreement.
        let agree = replay
            .iter()
            .filter(|(race, v)| {
                let t = truth
                    .tested
                    .iter()
                    .find(|t| t.race.key() == race.key())
                    .map(|t| t.verdict);
                matches!(
                    (v, t),
                    (ReplayVerdict::Harmful, Some(Verdict::Causal))
                        | (ReplayVerdict::Benign, Some(Verdict::Benign))
                )
            })
            .count();
        // Replay gets at least something right but is not required to agree
        // everywhere — the experiment reports the rate.
        assert!(agree >= 1);
    }
}
