//! Cooperative bug localization (Gist / Snorlax / CCI style, §5.3).
//!
//! These techniques predefine a small set of *single-variable* interleaving
//! patterns — order violations and atomicity violations — and report the
//! pattern with the strongest statistical correlation to failure across
//! many labeled executions. We implement exactly that:
//!
//! * pattern extraction per run — for every shared address: cross-thread
//!   ordered access pairs (order-violation candidates) and
//!   local–remote–local access triples (atomicity-violation candidates);
//! * suspiciousness ranking — frequency in failing runs minus frequency in
//!   passing runs.
//!
//! The §5.3 comparison point: the pattern vocabulary is single-variable, so
//! multi-variable bugs fall outside it, and the statistically top pattern
//! can be failure-irrelevant (e.g. the paper's `B17 ⇒ A12`-only diagnosis
//! of CVE-2017-15649, which leads to a wrong fix).

use crate::sampler::SampledRun;
use ksim::{
    Addr,
    InstrAddr,
    Trace, //
};
use std::collections::{
    HashMap,
    HashSet, //
};

/// A predefined single-variable interleaving pattern.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `first ⇒ second` on one variable, across threads.
    OrderViolation {
        /// Earlier access.
        first: InstrAddr,
        /// Later access.
        second: InstrAddr,
        /// The variable.
        addr: Addr,
    },
    /// Local access – remote access – local access on one variable.
    AtomicityViolation {
        /// First local access.
        pre: InstrAddr,
        /// Interleaved remote access.
        remote: InstrAddr,
        /// Second local access.
        post: InstrAddr,
        /// The variable.
        addr: Addr,
    },
}

impl Pattern {
    /// The single variable the pattern concerns.
    #[must_use]
    pub fn addr(&self) -> Addr {
        match self {
            Pattern::OrderViolation { addr, .. } | Pattern::AtomicityViolation { addr, .. } => {
                *addr
            }
        }
    }
}

/// A ranked pattern.
#[derive(Clone, Debug)]
pub struct RankedPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Suspiciousness: failing frequency minus passing frequency.
    pub score: f64,
}

fn patterns_in(trace: &Trace) -> HashSet<Pattern> {
    // Accesses grouped per address, in execution order.
    let mut per_addr: HashMap<Addr, Vec<(usize, ksim::ThreadId, InstrAddr, bool)>> = HashMap::new();
    for rec in trace {
        for acc in &rec.accesses {
            per_addr.entry(acc.addr).or_default().push((
                rec.seq,
                rec.tid,
                rec.at,
                acc.kind.is_write(),
            ));
        }
    }
    let mut out = HashSet::new();
    for (addr, accs) in per_addr {
        for (i, &(_, tid_a, at_a, w_a)) in accs.iter().enumerate() {
            // Order violations: adjacent-ish cross-thread conflicting pairs.
            for &(_, tid_b, at_b, w_b) in accs.iter().skip(i + 1).take(4) {
                if tid_a != tid_b && (w_a || w_b) {
                    out.insert(Pattern::OrderViolation {
                        first: at_a,
                        second: at_b,
                        addr,
                    });
                }
            }
            // Atomicity violations: local, remote, local.
            if i + 2 < accs.len() {
                let (_, tid_b, at_b, w_b) = accs[i + 1];
                let (_, tid_c, at_c, _) = accs[i + 2];
                if tid_a == tid_c && tid_b != tid_a && (w_a || w_b) {
                    out.insert(Pattern::AtomicityViolation {
                        pre: at_a,
                        remote: at_b,
                        post: at_c,
                        addr,
                    });
                }
            }
        }
    }
    out
}

/// Ranks patterns by statistical correlation with failure.
#[must_use]
pub fn localize(failing: &[SampledRun], passing: &[SampledRun]) -> Vec<RankedPattern> {
    let mut fail_counts: HashMap<Pattern, usize> = HashMap::new();
    let mut pass_counts: HashMap<Pattern, usize> = HashMap::new();
    for run in failing {
        for p in patterns_in(&run.trace) {
            *fail_counts.entry(p).or_insert(0) += 1;
        }
    }
    for run in passing {
        for p in patterns_in(&run.trace) {
            *pass_counts.entry(p).or_insert(0) += 1;
        }
    }
    let nf = failing.len().max(1) as f64;
    let np = passing.len().max(1) as f64;
    let mut ranked: Vec<RankedPattern> = fail_counts
        .into_iter()
        .map(|(pattern, fc)| {
            let pc = pass_counts.get(&pattern).copied().unwrap_or(0);
            RankedPattern {
                score: fc as f64 / nf - pc as f64 / np,
                pattern,
            }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ranked
}

/// The §5.3 diagnosis criterion: cooperative bug localization explains a
/// bug only when it is a *single-variable* bug (the semantic object
/// classification of Tables 2–3 — the pattern vocabulary cannot express
/// multi-variable causality) and the racing object appears among the
/// top-ranked patterns (the short ranked list a Gist/Snorlax user
/// inspects).
#[must_use]
pub fn diagnoses(
    ranked: &[RankedPattern],
    chain: &aitia::CausalityChain,
    chain_vars: &[Addr],
    single_variable: bool,
) -> bool {
    if !single_variable || chain.race_count() == 0 {
        return false;
    }
    ranked
        .iter()
        .take(5)
        .any(|p| chain_vars.contains(&p.pattern.addr()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{
        sample_runs,
        split,
        SamplerConfig, //
    };
    use ksim::builder::ProgramBuilder;
    use std::sync::Arc;

    #[test]
    fn order_violation_is_extracted_and_ranked() {
        // x is the bug variable: B's store between A's check and use.
        let mut p = ProgramBuilder::new("ov");
        let obj = p.static_obj("obj", 8);
        let x = p.global_ptr("x", obj);
        {
            let mut a = p.syscall_thread("A", "u");
            a.load_global("r0", x);
            a.load_global("r1", x);
            a.load_ind("r2", "r1", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "c");
            b.store_global(x, 0u64);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let (fail, pass) = split(sample_runs(&prog, 400, 3, &SamplerConfig::default()));
        assert!(!fail.is_empty() && !pass.is_empty());
        let ranked = localize(&fail, &pass);
        assert!(!ranked.is_empty());
        assert!(ranked[0].score > 0.0);
        // The top pattern concerns the bug variable x.
        assert_eq!(ranked[0].pattern.addr(), ksim::GlobalId(0).addr());
    }

    #[test]
    fn empty_samples_rank_nothing() {
        assert!(localize(&[], &[]).is_empty());
    }
}
