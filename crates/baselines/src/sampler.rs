//! Randomized schedule sampling.
//!
//! The cooperative-bug-localization and Kairux baselines are statistical:
//! they need many labeled executions (failing / passing) of the same
//! program. This sampler produces them with a PCT-flavoured randomized
//! scheduler (random preemptions at every step boundary), seeded for
//! determinism.

use ksim::{
    Engine,
    Program,
    StepOutcome,
    ThreadId,
    Trace, //
};
use rand::{
    Rng,
    SeedableRng, //
};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// One sampled execution.
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// The executed trace (structurally shared).
    pub trace: Trace,
    /// Whether the run failed.
    pub failed: bool,
}

/// Sampler configuration.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Probability of preempting the running thread at each step.
    pub preempt_prob: f64,
    /// Per-run step budget.
    pub step_budget: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            preempt_prob: 0.15,
            step_budget: 100_000,
        }
    }
}

/// Runs `n` randomized executions of `program`.
#[must_use]
pub fn sample_runs(
    program: &Arc<Program>,
    n: usize,
    seed: u64,
    cfg: &SamplerConfig,
) -> Vec<SampledRun> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut engine = Engine::new(Arc::clone(program));
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        engine.reboot();
        let mut current: Option<ThreadId> = engine.runnable().first().copied();
        let mut steps = 0usize;
        while !engine.halted() && steps < cfg.step_budget {
            let runnable = engine.runnable();
            if runnable.is_empty() {
                break;
            }
            let cur = match current {
                Some(c) if runnable.contains(&c) && !rng.gen_bool(cfg.preempt_prob) => c,
                _ => runnable[rng.gen_range(0..runnable.len())],
            };
            current = Some(cur);
            match engine.step(cur) {
                Ok(StepOutcome::Blocked { .. }) => {
                    // Pick someone else next iteration.
                    current = None;
                }
                Ok(_) => steps += 1,
                Err(_) => break,
            }
        }
        out.push(SampledRun {
            trace: engine.trace().clone(),
            failed: engine.failure().is_some(),
        });
    }
    out
}

/// Runs `n` executions *guided* by a known failure-triggering schedule:
/// each run enforces a random subset of the schedule's preemption points
/// (each kept with probability 0.7). This models the
/// cooperative-bug-localization setting — a production site that keeps
/// hitting interleavings *near* the failing one, sometimes completing the
/// full pattern (failing run) and sometimes not — which blind random
/// sampling cannot reproduce for bugs this rare (the corpus bugs needed a
/// fuzzer plus AITIA to surface at all).
#[must_use]
pub fn sample_runs_guided(
    program: &Arc<Program>,
    schedule: &aitia::Schedule,
    n: usize,
    seed: u64,
    cfg: &SamplerConfig,
) -> Vec<SampledRun> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut engine = Engine::new(Arc::clone(program));
    let mut out = Vec::with_capacity(n);
    let enforce_cfg = aitia::EnforceConfig {
        step_budget: cfg.step_budget,
    };
    for _ in 0..n {
        engine.reboot();
        let kept: Vec<aitia::SchedPoint> = schedule
            .points
            .iter()
            .filter(|_| rng.gen_bool(0.7))
            .cloned()
            .collect();
        let sub = aitia::Schedule {
            start: schedule.start,
            points: kept,
            fallback: schedule.fallback.clone(),
            segments: Vec::new(),
        };
        let run = aitia::enforce_run(&mut engine, &sub, &enforce_cfg);
        out.push(SampledRun {
            trace: run.trace,
            failed: run.failure.is_some(),
        });
    }
    out
}

/// Splits samples into failing and passing sets.
#[must_use]
pub fn split(samples: Vec<SampledRun>) -> (Vec<SampledRun>, Vec<SampledRun>) {
    samples.into_iter().partition(|s| s.failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::builder::ProgramBuilder;

    fn racy_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("racy");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "w");
            a.store_global(ptr_valid, 1u64);
            a.load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "c");
            let out = b.new_label();
            b.load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn sampling_finds_both_outcomes() {
        let prog = racy_program();
        let samples = sample_runs(&prog, 200, 42, &SamplerConfig::default());
        let (fail, pass) = split(samples);
        assert!(!fail.is_empty(), "randomized runs should hit the race");
        assert!(!pass.is_empty(), "most runs should pass");
        assert!(pass.len() > fail.len());
    }

    #[test]
    fn sampling_is_deterministic() {
        let prog = racy_program();
        let a = sample_runs(&prog, 50, 7, &SamplerConfig::default());
        let b = sample_runs(&prog, 50, 7, &SamplerConfig::default());
        let fa: Vec<bool> = a.iter().map(|s| s.failed).collect();
        let fb: Vec<bool> = b.iter().map(|s| s.failed).collect();
        assert_eq!(fa, fb);
    }
}
