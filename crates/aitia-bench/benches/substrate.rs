//! Substrate microbenchmarks: engine step throughput, snapshot/restore,
//! schedule enforcement, and race detection — the building blocks every
//! experiment leans on.

use criterion::{
    criterion_group,
    criterion_main,
    Criterion,
    Throughput, //
};
use ksim::builder::ProgramBuilder;
use ksim::Engine;
use std::sync::Arc;

fn counter_program(iters: u64) -> Arc<ksim::Program> {
    let mut p = ProgramBuilder::new("counter");
    let x = p.global("x", 0);
    {
        let mut a = p.syscall_thread("A", "loop");
        a.mov("r1", 0u64);
        let top = a.new_label();
        let done = a.new_label();
        a.place(top);
        a.jmp_if(ksim::builder::cond_reg("r1", ksim::CmpOp::Ge, iters), done);
        a.fetch_add_global(x, 1u64);
        a.op("r1", ksim::instr::BinOp::Add, "r1", 1u64);
        a.jmp(top);
        a.place(done);
        a.ret();
    }
    Arc::new(p.build().unwrap())
}

fn bench_engine(c: &mut Criterion) {
    let prog = counter_program(1_000);
    let mut group = c.benchmark_group("substrate");
    group.throughput(Throughput::Elements(4_000));
    group.bench_function("engine_steps_4k", |b| {
        let mut e = Engine::new(Arc::clone(&prog));
        b.iter(|| {
            e.reboot();
            e.run_to_completion(ksim::ThreadId(0))
        });
    });
    group.finish();

    let mut e = Engine::new(Arc::clone(&prog));
    e.run_to_completion(ksim::ThreadId(0));
    c.bench_function("substrate/snapshot_restore", |b| {
        let snap = e.snapshot();
        b.iter(|| {
            e.restore(&snap);
            e.trace().len()
        });
    });
    c.bench_function("substrate/races_in_trace_4k_steps", |b| {
        b.iter(|| aitia::races_in_trace(e.trace()).len());
    });

    // Enforcement overhead: the same 4k steps driven through enforce::run
    // with an empty schedule. The delta against engine_steps_4k is pure
    // drive()-loop bookkeeping (point matching, exec counts, trace
    // publication).
    c.bench_function("substrate/enforced_steps_4k", |b| {
        let mut e = Engine::new(Arc::clone(&prog));
        let schedule = aitia::Schedule::default();
        let cfg = aitia::EnforceConfig {
            step_budget: 100_000,
        };
        b.iter(|| {
            e.reboot();
            aitia::enforce_run(&mut e, &schedule, &cfg).steps
        });
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
