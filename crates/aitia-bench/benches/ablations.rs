//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! partial-order reduction in LIFS, backward testing order in Causality
//! Analysis, and critical-section-as-unit flipping.

use aitia::causality::{
    CausalityAnalysis,
    CausalityConfig, //
};
use aitia::lifs::{
    Lifs,
    LifsConfig, //
};
use criterion::{
    criterion_group,
    criterion_main,
    Criterion, //
};

const SCALE: f64 = 0.1;

fn bench_lifs_por(c: &mut Criterion) {
    let bug = corpus::cves()
        .into_iter()
        .find(|b| b.id == "CVE-2019-11486")
        .expect("11486");
    let mut group = c.benchmark_group("ablation_lifs_por");
    group.sample_size(10);
    for (name, prune) in [
        ("dpor", aitia::lifs::PruneLevel::Dpor),
        ("with_por", aitia::lifs::PruneLevel::Conflict),
        ("without_por", aitia::lifs::PruneLevel::Off),
    ] {
        let cfg = LifsConfig {
            prune,
            ..bug.lifs_config()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = Lifs::new(bug.program_scaled(SCALE), cfg.clone()).search();
                assert!(out.failing.is_some());
                out.stats.schedules_executed
            });
        });
    }
    group.finish();
}

fn bench_causality_direction(c: &mut Criterion) {
    let bug = corpus::cves()
        .into_iter()
        .find(|b| b.id == "CVE-2017-15649")
        .expect("15649");
    let run = Lifs::new(bug.program_scaled(SCALE), bug.lifs_config())
        .search()
        .failing
        .expect("reproduces");
    let mut group = c.benchmark_group("ablation_causality");
    group.sample_size(10);
    for (name, backward) in [("backward", true), ("forward", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                CausalityAnalysis::new(CausalityConfig {
                    backward,
                    ..CausalityConfig::default()
                })
                .analyze(&run)
                .stats
                .schedules_executed
            });
        });
    }
    for (name, cs) in [("cs_as_unit", true), ("cs_individual", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                CausalityAnalysis::new(CausalityConfig {
                    cs_as_unit: cs,
                    ..CausalityConfig::default()
                })
                .analyze(&run)
                .stats
                .schedules_executed
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lifs_por, bench_causality_direction);
criterion_main!(benches);
