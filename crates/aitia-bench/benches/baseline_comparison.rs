//! §5.3 baseline benchmarks: the comparator techniques next to AITIA on
//! the same bug.

use aitia::causality::{
    CausalityAnalysis,
    CausalityConfig, //
};
use aitia::lifs::Lifs;
use baselines::sampler::{
    sample_runs,
    split,
    SamplerConfig, //
};
use criterion::{
    criterion_group,
    criterion_main,
    Criterion, //
};

fn bench_baselines(c: &mut Criterion) {
    let bug = corpus::syzkaller()
        .into_iter()
        .find(|b| b.id == "#3")
        .expect("bug #3");
    let prog = bug.program_scaled(0.1);
    let run = Lifs::new(prog.clone(), bug.lifs_config())
        .search()
        .failing
        .expect("reproduces");
    let samples = sample_runs(&prog, 200, 7, &SamplerConfig::default());
    let (failing, passing) = split(samples);

    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(10);
    group.bench_function("aitia_causality", |b| {
        b.iter(|| {
            CausalityAnalysis::new(CausalityConfig::default())
                .analyze(&run)
                .chain
                .race_count()
        });
    });
    group.bench_function("kairux_inflection", |b| {
        b.iter(|| baselines::inflection_point(&run.trace, &passing));
    });
    group.bench_function("coop_localization", |b| {
        b.iter(|| baselines::localize(&failing, &passing).len());
    });
    group.bench_function("muvi_correlation", |b| {
        b.iter(|| baselines::correlations(&passing, baselines::WINDOW).len());
    });
    group.bench_function("replay_classification", |b| {
        b.iter(|| baselines::classify_all(&run).len());
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
