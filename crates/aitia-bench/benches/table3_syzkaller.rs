//! Table 3 — wall-clock benchmarks over the twelve Syzkaller bugs, plus the
//! §5.2 conciseness pipeline (race detection on the failing trace).

use aitia::causality::{
    CausalityAnalysis,
    CausalityConfig, //
};
use aitia::lifs::Lifs;
use criterion::{
    criterion_group,
    criterion_main,
    Criterion, //
};

const SCALE: f64 = 0.15;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_syzkaller");
    group.sample_size(10);
    for bug in corpus::syzkaller() {
        group.bench_function(format!("diagnose/{}", bug.id), |b| {
            b.iter(|| {
                let out = Lifs::new(bug.program_scaled(SCALE), bug.lifs_config()).search();
                let run = out.failing.expect("reproduces");
                let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
                assert_eq!(res.chain.race_count(), bug.expected_chain_races);
                res.tested.len()
            });
        });
    }
    group.finish();
}

fn bench_conciseness(c: &mut Criterion) {
    let mut group = c.benchmark_group("conciseness");
    group.sample_size(10);
    let bug = corpus::syzkaller()
        .into_iter()
        .find(|b| b.id == "#1")
        .expect("bug #1");
    let run = Lifs::new(bug.program_scaled(0.5), bug.lifs_config())
        .search()
        .failing
        .expect("reproduces");
    group.bench_function("races_in_failing_trace", |b| {
        b.iter(|| aitia::races_in_trace(&run.trace).len());
    });
    group.finish();
}

criterion_group!(benches, bench_table3, bench_conciseness);
criterion_main!(benches);
