//! VM-pool scaling — wall-clock time of a single-slice diagnosis (LIFS +
//! Causality Analysis through the shared executor) at worker counts 1, 2,
//! and 8 over the Table 2 CVE corpus.
//!
//! Outputs are bit-for-bit identical across worker counts (the executor
//! folds in canonical submission order); only wall-clock time changes, so
//! the `vms/8` rows against `vms/1` measure the within-slice speedup of the
//! execution layer.
//!
//! The pool spawns at most `available_parallelism` OS threads regardless of
//! `vms`, so the speedup shows on multicore hosts; on a single-core host
//! the rows coincide instead of regressing (results are identical either
//! way).

use aitia::exec::Executor;
use aitia_bench::experiments::diagnose_bug_on;
use criterion::{
    criterion_group,
    criterion_main,
    Criterion, //
};
use std::sync::Arc;

/// Noise scale for benches: large enough to exercise the search, small
/// enough for Criterion's sampling.
const SCALE: f64 = 0.15;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for vms in [1usize, 2, 8] {
        let exec = Arc::new(Executor::new(vms));
        group.bench_function(format!("table2/vms/{vms}"), |b| {
            b.iter(|| {
                let mut schedules = 0usize;
                for bug in corpus::cves() {
                    let outcome = diagnose_bug_on(&bug, SCALE, &exec);
                    schedules +=
                        outcome.lifs.schedules_executed + outcome.result.stats.schedules_executed;
                }
                schedules
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
