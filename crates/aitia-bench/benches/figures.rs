//! Figure benchmarks: the LIFS walkthrough (Fig 5), the Figure 4
//! background-thread patterns, the Figure 6 analysis, and the Figure 7
//! nested-race geometry.

use aitia::causality::{
    CausalityAnalysis,
    CausalityConfig, //
};
use aitia::lifs::{
    Lifs,
    LifsConfig, //
};
use corpus::figures;
use criterion::{
    criterion_group,
    criterion_main,
    Criterion, //
};
use std::sync::Arc;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    let cases: Vec<(&str, ksim::Program)> = vec![
        ("fig1", figures::fig1()),
        ("fig4a", figures::fig4a()),
        ("fig4b", figures::fig4b()),
        ("fig4c", figures::fig4c()),
        ("fig5", figures::fig5()),
        ("fig7_ambiguous", figures::fig7_ambiguous()),
        ("fig7_clear", figures::fig7_clear()),
    ];
    for (name, prog) in cases {
        let prog = Arc::new(prog);
        group.bench_function(format!("reproduce/{name}"), |b| {
            b.iter(|| {
                let out = Lifs::new(Arc::clone(&prog), LifsConfig::default()).search();
                assert!(out.failing.is_some());
                out.stats.schedules_executed
            });
        });
        let run = Lifs::new(Arc::clone(&prog), LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        group.bench_function(format!("diagnose/{name}"), |b| {
            b.iter(|| {
                CausalityAnalysis::new(CausalityConfig::default())
                    .analyze(&run)
                    .tested
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let bug = corpus::cves()
        .into_iter()
        .find(|b| b.id == "CVE-2017-15649")
        .expect("15649");
    let prog = bug.program(corpus::noise::NoiseSpec::silent());
    c.bench_function("figures/fig6_cve_15649_full", |b| {
        b.iter(|| {
            let run = Lifs::new(Arc::clone(&prog), bug.lifs_config())
                .search()
                .failing
                .expect("reproduces");
            let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
            assert_eq!(res.chain.race_count(), 4);
        });
    });
}

criterion_group!(benches, bench_figures, bench_fig6);
criterion_main!(benches);
