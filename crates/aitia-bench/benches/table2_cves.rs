//! Table 2 — wall-clock benchmarks of LIFS + Causality Analysis over the
//! ten CVE bugs (the simulated-time columns come from the `report` binary;
//! this measures the Rust harness itself).

use aitia::causality::{
    CausalityAnalysis,
    CausalityConfig, //
};
use aitia::lifs::Lifs;
use criterion::{
    criterion_group,
    criterion_main,
    Criterion, //
};

/// Noise scale for benches: large enough to exercise the search, small
/// enough for Criterion's sampling.
const SCALE: f64 = 0.15;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_cves");
    group.sample_size(10);
    for bug in corpus::cves() {
        group.bench_function(format!("lifs/{}", bug.id), |b| {
            b.iter(|| {
                let out = Lifs::new(bug.program_scaled(SCALE), bug.lifs_config()).search();
                assert!(out.failing.is_some());
                out.stats.schedules_executed
            });
        });
        let run = Lifs::new(bug.program_scaled(SCALE), bug.lifs_config())
            .search()
            .failing
            .expect("reproduces");
        group.bench_function(format!("causality/{}", bug.id), |b| {
            b.iter(|| {
                let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
                assert!(res.chain.race_count() >= 1);
                res.stats.schedules_executed
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
