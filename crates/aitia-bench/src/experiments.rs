//! The paper's experiments, as reusable functions.
//!
//! Each table/figure of the evaluation (§5) has a function here producing
//! structured results; the `report` binary renders them next to the paper's
//! reported numbers, and the Criterion benches time the same entry points.

use aitia::{
    causality::{
        CausalityAnalysis,
        CausalityConfig, //
    },
    exec::{
        ClaimMode,
        Executor,
        ExecutorConfig, //
    },
    journal::JournalStats,
    lifs::{
        Lifs,
        LifsStats, //
    },
    manager::{
        Diagnosis,
        ManagerConfig, //
    },
    report::{
        conciseness,
        Conciseness, //
    },
    simtime::CostModel,
    Campaign,
    CausalityResult,
    FailingRun, //
};
use corpus::{
    noise::NoiseSpec,
    BugModel,
    MultiVar, //
};
use std::sync::Arc;

/// The diagnosis of one corpus bug.
pub struct BugOutcome {
    /// The bug's identifier.
    pub id: &'static str,
    /// Subsystem column.
    pub subsystem: &'static str,
    /// Bug-type column.
    pub bug_type: &'static str,
    /// Multi-variable classification.
    pub multi: MultiVar,
    /// LIFS statistics.
    pub lifs: LifsStats,
    /// The failing run.
    pub run: FailingRun,
    /// Causality Analysis result.
    pub result: CausalityResult,
    /// Conciseness figures for this failure.
    pub conciseness: Conciseness,
    /// The paper's reported numbers.
    pub paper: corpus::PaperRow,
}

impl BugOutcome {
    /// Races in the final chain.
    #[must_use]
    pub fn chain_races(&self) -> usize {
        self.result.chain.race_count()
    }
}

/// Diagnoses one bug at the given noise scale on a single-worker VM.
///
/// # Panics
///
/// Panics when the bug fails to reproduce — every corpus bug must.
#[must_use]
pub fn diagnose_bug(bug: &BugModel, scale: f64) -> BugOutcome {
    diagnose_bug_on(bug, scale, &Arc::new(Executor::new(1)))
}

/// Diagnoses one bug with LIFS rounds and Causality Analysis flips fanned
/// out over the given VM pool. Results are bit-for-bit identical at any
/// worker count (the executor folds in canonical order); only wall-clock
/// time changes.
///
/// # Panics
///
/// Panics when the bug fails to reproduce — every corpus bug must.
#[must_use]
pub fn diagnose_bug_on(bug: &BugModel, scale: f64, exec: &Arc<Executor>) -> BugOutcome {
    diagnose_program_on(bug, bug.program_scaled(scale), exec)
}

/// Diagnoses an already-built program of `bug` on the given pool.
///
/// Callers that diagnose the same bug repeatedly (regression re-runs,
/// parameter sweeps) should build the [`ksim::Program`] once and pass the
/// same `Arc` each time: the cross-run memo table keys on program
/// *identity* (`Arc::ptr_eq`, the ABA-safe choice), so only shared-`Arc`
/// re-runs can be answered from the table.
///
/// # Panics
///
/// Panics when the bug fails to reproduce — every corpus bug must.
#[must_use]
pub fn diagnose_program_on(
    bug: &BugModel,
    prog: Arc<ksim::Program>,
    exec: &Arc<Executor>,
) -> BugOutcome {
    diagnose_program_with_prune(bug, prog, exec, bug.lifs_config().prune)
}

/// [`diagnose_program_on`] at an explicit LIFS prune level (the
/// `--prune-level` ablation knob).
///
/// # Panics
///
/// Panics when the bug fails to reproduce — every corpus bug must, at
/// every prune level.
#[must_use]
pub fn diagnose_program_with_prune(
    bug: &BugModel,
    prog: Arc<ksim::Program>,
    exec: &Arc<Executor>,
    prune: aitia::lifs::PruneLevel,
) -> BugOutcome {
    diagnose_program_with_levels(bug, prog, exec, prune, CausalityConfig::default())
}

/// [`diagnose_program_with_prune`] with an explicit Causality Analysis
/// configuration (the `--causality-level` knob).
///
/// # Panics
///
/// Panics when the bug fails to reproduce — every corpus bug must, at
/// every level combination.
#[must_use]
pub fn diagnose_program_with_levels(
    bug: &BugModel,
    prog: Arc<ksim::Program>,
    exec: &Arc<Executor>,
    prune: aitia::lifs::PruneLevel,
    causality: CausalityConfig,
) -> BugOutcome {
    let cfg = aitia::lifs::LifsConfig {
        prune,
        ..bug.lifs_config()
    };
    let out = Lifs::with_executor(prog, cfg, Arc::clone(exec)).search();
    let run = out
        .failing
        .unwrap_or_else(|| panic!("{} did not reproduce", bug.id));
    let result = CausalityAnalysis::with_executor(causality, Arc::clone(exec)).analyze(&run);
    let c = conciseness(&run, &result);
    BugOutcome {
        id: bug.id,
        subsystem: bug.subsystem,
        bug_type: bug.bug_type,
        multi: bug.multi_variable,
        lifs: out.stats,
        run,
        result,
        conciseness: c,
        paper: bug.paper,
    }
}

/// The cost model describing a pool: `vms` mirrors the executor's actual
/// worker count, so simulated-time reports reflect the pool that ran the
/// schedules.
#[must_use]
pub fn cost_model_for(exec: &Executor) -> CostModel {
    CostModel {
        vms: u32::try_from(exec.vms()).unwrap_or(u32::MAX),
        ..CostModel::default()
    }
}

/// Renders the pool's robustness counter block ([`aitia::ExecStats`]) —
/// the `report` binary prints this after every run so the perf trajectory
/// tracks robustness alongside speed.
#[must_use]
pub fn render_exec_stats(stats: &aitia::ExecStats) -> String {
    format!(
        "VM-pool execution stats\n\
        \x20 enforced runs:       {}\n\
        \x20 retries:             {}\n\
        \x20 faults:              {} crash / {} hang\n\
        \x20 gave up (no result): {}\n\
        \x20 VM restarts:         {}\n\
        \x20 quarantined slots:   {}\n\
        \x20 snapshot cache:      {} hits / {} misses\n\
        \x20 memo table:          {} hits / {} misses / {} excluded\n\
        \x20 snapshot forest:     {} cross-worker hits\n\
        \x20 throughput:          {:.0} schedules/s, {:.0} instrs/s (per busy worker)\n\
        \x20 deadline fired:      {}\n",
        stats.runs,
        stats.retries,
        stats.crash_faults,
        stats.hang_faults,
        stats.gave_up,
        stats.vm_restarts,
        stats.quarantined_slots,
        stats.snapshot_hits,
        stats.snapshot_misses,
        stats.memo_hits,
        stats.memo_misses,
        stats.memo_excluded,
        stats.forest_hits,
        stats.schedules_per_sec(),
        stats.instrs_per_sec(),
        stats.deadline_fired,
    )
}

/// Renders the Causality Analysis intervention counter block summed over a
/// set of diagnosed bugs — the `report` binary prints this under the
/// evaluation tables so the adaptive level's savings are visible next to
/// the pool stats.
#[must_use]
pub fn render_ca_stats(rows: &[BugOutcome]) -> String {
    let sum = |f: fn(&aitia::causality::CaStats) -> usize| -> usize {
        rows.iter().map(|r| f(&r.result.stats)).sum()
    };
    format!(
        "Causality-intervention stats\n\
        \x20 flip schedules:      {}\n\
        \x20 skipped (static):    {}\n\
        \x20 reordered (gain):    {}\n\
        \x20 sim time saved:      {:.1}s\n",
        sum(|s| s.schedules_executed),
        sum(|s| s.flips_skipped_static),
        sum(|s| s.flips_reordered),
        rows.iter()
            .map(|r| r.result.stats.sim_time_saved_s)
            .sum::<f64>(),
    )
}

/// Renders the journal counter block, appended to the stats block whenever
/// a run journal is configured.
#[must_use]
pub fn render_journal_stats(stats: &JournalStats) -> String {
    format!(
        "Run-journal stats\n\
        \x20 records replayed:    {}\n\
        \x20 records appended:    {}\n\
        \x20 torn-tail truncs:    {}\n\
        \x20 fsync failed:        {}\n",
        stats.records_replayed,
        stats.records_appended,
        stats.torn_tail_truncations,
        if stats.fsync_failed {
            "yes (journal disabled; campaign ran without crash-safety)"
        } else {
            "no"
        },
    )
}

/// One side (memo off or on) of the memoization A/B benchmark.
#[derive(Clone, Debug, serde::Serialize)]
pub struct MemoBenchSide {
    /// Actual VM executions ([`aitia::ExecStats::runs`] — memo hits never
    /// count here).
    pub vm_executions: u64,
    /// Jobs answered from the cross-run memo table.
    pub memo_hits: u64,
    /// Snapshot-prefix restores served by the shared forest.
    pub forest_hits: u64,
    /// Serial simulated seconds the memo hits avoided paying.
    pub sim_time_saved_s: f64,
    /// Schedules charged to the diagnosis statistics (memo-invariant: both
    /// sides must agree).
    pub schedules_executed: usize,
}

/// Result of `report bench-memo`: the memoization A/B over Table 2.
///
/// The memo table is *cross-run*: it pays off when schedules recur —
/// Phase C re-flips inside one diagnosis, and whole diagnosis sessions
/// re-run for regression confirmation or parameter sweeps (the
/// interventional-debugging budget argument: never spend a VM execution on
/// a run whose outcome is already known). The benchmark models the re-run
/// workload: each side diagnoses the corpus [`MemoBench::passes`] times on
/// fresh single-worker pools (as the manager constructs them), memo-off
/// paying full VM execution every pass, memo-on answering repeats from the
/// process-wide table.
#[derive(Clone, Debug, serde::Serialize)]
pub struct MemoBench {
    /// Noise scale both sides ran at.
    pub scale: f64,
    /// Diagnosis passes over the corpus per side.
    pub passes: usize,
    /// Memoization disabled.
    pub baseline: MemoBenchSide,
    /// Memoization enabled.
    pub memoized: MemoBenchSide,
    /// Percent of the baseline's VM executions the memoized side avoided.
    pub vm_execution_reduction_percent: f64,
    /// Whether every diagnosis-facing output — chains, verdicts, failing
    /// schedules, trace lengths, per-stage schedule counts — is
    /// bit-identical across the two sides.
    pub diagnoses_identical: bool,
}

/// Everything diagnosis-facing in one outcome, as a comparable string.
fn diagnosis_digest(rows: &[BugOutcome]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            let verdicts: Vec<aitia::Verdict> = r.result.tested.iter().map(|t| t.verdict).collect();
            format!(
                "{} chain={} verdicts={:?} sched={:?} steps={} lifs={} ca={}",
                r.id,
                r.result.chain,
                verdicts,
                r.run.schedule,
                r.run.trace.len(),
                r.lifs.schedules_executed,
                r.result.stats.schedules_executed,
            )
        })
        .collect()
}

/// Everything diagnosis-facing *except schedule counts*, which prune
/// levels change by design. The failing schedule, trace length, chain,
/// verdicts and Causality Analysis counts (a pure function of the failing
/// run) must still be bit-identical across prune levels.
fn prune_digest(rows: &[BugOutcome]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            let verdicts: Vec<aitia::Verdict> = r.result.tested.iter().map(|t| t.verdict).collect();
            format!(
                "{} chain={} verdicts={:?} sched={:?} steps={} ca={}",
                r.id,
                r.result.chain,
                verdicts,
                r.run.schedule,
                r.run.trace.len(),
                r.result.stats.schedules_executed,
            )
        })
        .collect()
}

/// One prune level's aggregate LIFS counters over the Table 2 corpus.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PruneBenchSide {
    /// The prune level the side ran at.
    pub level: String,
    /// Schedules LIFS executed across the corpus.
    pub schedules_executed: usize,
    /// Candidates skipped as statically non-conflicting.
    pub pruned_nonconflicting: usize,
    /// Candidates skipped or discounted as equivalent interleavings.
    pub pruned_equivalent: usize,
    /// Candidates skipped by the DPOR sleep-set rule.
    pub pruned_sleep_set: usize,
    /// Candidates skipped by the DPOR persistent-set rule.
    pub pruned_persistent: usize,
}

/// Result of `report bench-prune`: the `--prune-level` ablation over
/// Table 2 (`BENCH_prune.json`).
///
/// Every level must produce a bit-identical diagnosis — the levels differ
/// only in how much of the schedule space they refuse to execute, never in
/// what they find. The acceptance gate asserts the `dpor` level executes
/// at least 30% fewer schedules than `conflict`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PruneBench {
    /// Noise scale every side ran at.
    pub scale: f64,
    /// No pruning.
    pub off: PruneBenchSide,
    /// Conflict-based pruning (the default level).
    pub conflict: PruneBenchSide,
    /// Full DPOR (sleep sets + persistent sets).
    pub dpor: PruneBenchSide,
    /// Percent of `conflict`'s executed schedules that `dpor` avoided.
    pub dpor_vs_conflict_reduction_percent: f64,
    /// Whether every diagnosis-facing output (chains, verdicts, failing
    /// schedules, trace lengths) is bit-identical across all three levels.
    pub diagnoses_identical: bool,
    /// The acceptance gate: ≥30% fewer schedules at `dpor` than at
    /// `conflict`, with `diagnoses_identical` true.
    pub meets_prune_gate: bool,
}

/// Runs the prune-level ablation over Table 2.
#[must_use]
pub fn bench_prune(scale: f64) -> PruneBench {
    use aitia::lifs::PruneLevel;
    let run = |level: PruneLevel| {
        let bugs = corpus::cves();
        // Each side builds its own programs so the process-wide memo table
        // (keyed on program identity) never leaks results across levels.
        let rows: Vec<BugOutcome> = bugs
            .iter()
            .map(|b| {
                let exec = Arc::new(Executor::with_config(ExecutorConfig {
                    vms: 1,
                    ..ExecutorConfig::default()
                }));
                diagnose_program_with_prune(b, b.program_scaled(scale), &exec, level)
            })
            .collect();
        let sum = |f: fn(&LifsStats) -> usize| rows.iter().map(|r| f(&r.lifs)).sum();
        let side = PruneBenchSide {
            level: level.to_string(),
            schedules_executed: sum(|s| s.schedules_executed),
            pruned_nonconflicting: sum(|s| s.pruned_nonconflicting),
            pruned_equivalent: sum(|s| s.pruned_equivalent),
            pruned_sleep_set: sum(|s| s.pruned_sleep_set),
            pruned_persistent: sum(|s| s.pruned_persistent),
        };
        (rows, side)
    };
    let (off_rows, off) = run(PruneLevel::Off);
    let (conflict_rows, conflict) = run(PruneLevel::Conflict);
    let (dpor_rows, dpor) = run(PruneLevel::Dpor);
    let diagnoses_identical = prune_digest(&off_rows) == prune_digest(&conflict_rows)
        && prune_digest(&conflict_rows) == prune_digest(&dpor_rows);
    let dpor_vs_conflict_reduction_percent = if conflict.schedules_executed > 0 {
        100.0
            * conflict
                .schedules_executed
                .saturating_sub(dpor.schedules_executed) as f64
            / conflict.schedules_executed as f64
    } else {
        0.0
    };
    let meets_prune_gate = diagnoses_identical && dpor_vs_conflict_reduction_percent >= 30.0;
    PruneBench {
        scale,
        off,
        conflict,
        dpor,
        dpor_vs_conflict_reduction_percent,
        diagnoses_identical,
        meets_prune_gate,
    }
}

/// One causality level's aggregate intervention counters over the Table 2
/// corpus.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CausalityBenchSide {
    /// The causality level (plus `+verify` for the agreement audit side).
    pub level: String,
    /// Actual VM executions ([`aitia::ExecStats::runs`]) attributable to
    /// Causality Analysis: pool runs after LIFS handed over each failing
    /// run. Statically skipped flips never execute, so they are absent
    /// here.
    pub flip_vm_executions: u64,
    /// Schedules charged to the diagnosis statistics
    /// ([`aitia::causality::CaStats::schedules_executed`]).
    pub flip_schedules: usize,
    /// Flips the static prover discharged without execution.
    pub flips_skipped_static: usize,
    /// Flips submitted out of canonical order by the gain ranking.
    pub flips_reordered: usize,
    /// Serial simulated seconds avoided (static skips plus memo hits).
    pub sim_time_saved_s: f64,
}

/// Result of `report bench-causality`: the `--causality-level` A/B over
/// Table 2 (`BENCH_causality.json`).
///
/// Both levels must produce a bit-identical diagnosis — adaptivity changes
/// *which* and *how many* flips execute, never what the diagnosis says.
/// The third side re-runs adaptive in `verify_static` agreement mode:
/// every statically proved flip still executes and the run must agree
/// (failure manifested ⇒ Benign); any disagreement is a soundness bug and
/// fails the gate. The acceptance gate additionally asserts the adaptive
/// level pays at least 30% fewer flip VM executions than exhaustive.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CausalityBench {
    /// Noise scale every side ran at.
    pub scale: f64,
    /// Flip every race (the paper's §3.4 procedure).
    pub exhaustive: CausalityBenchSide,
    /// Static benign proofs + information-gain ordering.
    pub adaptive: CausalityBenchSide,
    /// Adaptive with the agreement audit: proved flips still execute.
    pub verified: CausalityBenchSide,
    /// Agreement-audit failures across the verified side (must be 0).
    pub static_disagreements: usize,
    /// Percent of exhaustive's flip VM executions adaptive avoided.
    pub flip_execution_reduction_percent: f64,
    /// Whether chains, verdicts, failing schedules, trace lengths and LIFS
    /// counters are bit-identical across all three sides.
    pub diagnoses_identical: bool,
    /// The acceptance gate: `diagnoses_identical`, zero disagreements, and
    /// ≥ 30% flip-execution reduction.
    pub meets_causality_gate: bool,
}

/// Runs the `--causality-level` A/B over Table 2.
///
/// # Panics
///
/// Panics when a corpus bug fails to reproduce — every corpus bug must,
/// at every causality level.
#[must_use]
pub fn bench_causality(scale: f64) -> CausalityBench {
    use aitia::CausalityLevel;
    let run = |level: CausalityLevel, verify_static: bool| {
        let bugs = corpus::cves();
        // Each side builds its own programs and pools so the process-wide
        // memo table (keyed on program identity) never leaks flip results
        // across sides.
        let mut digests: Vec<String> = Vec::new();
        let mut side = CausalityBenchSide {
            level: format!("{level}{}", if verify_static { "+verify" } else { "" }),
            flip_vm_executions: 0,
            flip_schedules: 0,
            flips_skipped_static: 0,
            flips_reordered: 0,
            sim_time_saved_s: 0.0,
        };
        let mut disagreements = 0usize;
        for b in &bugs {
            let exec = Arc::new(Executor::with_config(ExecutorConfig {
                vms: 1,
                ..ExecutorConfig::default()
            }));
            let out =
                Lifs::with_executor(b.program_scaled(scale), b.lifs_config(), Arc::clone(&exec))
                    .search();
            let run = out
                .failing
                .unwrap_or_else(|| panic!("{} did not reproduce", b.id));
            // LIFS ran first on the same pool, so the delta in pool runs is
            // exactly the flip executions Causality Analysis paid for.
            let lifs_runs = exec.stats().runs;
            let result = CausalityAnalysis::with_executor(
                CausalityConfig {
                    level,
                    verify_static,
                    ..CausalityConfig::default()
                },
                Arc::clone(&exec),
            )
            .analyze(&run);
            side.flip_vm_executions += exec.stats().runs - lifs_runs;
            side.flip_schedules += result.stats.schedules_executed;
            side.flips_skipped_static += result.stats.flips_skipped_static;
            side.flips_reordered += result.stats.flips_reordered;
            side.sim_time_saved_s += result.stats.sim_time_saved_s;
            disagreements += result.stats.static_disagreements;
            let verdicts: Vec<aitia::Verdict> = result.tested.iter().map(|t| t.verdict).collect();
            digests.push(format!(
                "{} chain={} verdicts={:?} sched={:?} steps={} lifs={}",
                b.id,
                result.chain,
                verdicts,
                run.schedule,
                run.trace.len(),
                out.stats.schedules_executed,
            ));
        }
        (digests, side, disagreements)
    };
    let (ex_digests, exhaustive, _) = run(CausalityLevel::Exhaustive, false);
    let (ad_digests, adaptive, _) = run(CausalityLevel::Adaptive, false);
    let (ve_digests, verified, static_disagreements) = run(CausalityLevel::Adaptive, true);
    // The digest pins everything diagnosis-facing except CA schedule
    // counts, which the levels change by design; LIFS counters stay in so
    // the causality knob provably never perturbs the search.
    let diagnoses_identical = ex_digests == ad_digests && ad_digests == ve_digests;
    let flip_execution_reduction_percent = if exhaustive.flip_vm_executions > 0 {
        100.0
            * exhaustive
                .flip_vm_executions
                .saturating_sub(adaptive.flip_vm_executions) as f64
            / exhaustive.flip_vm_executions as f64
    } else {
        0.0
    };
    let meets_causality_gate = diagnoses_identical
        && static_disagreements == 0
        && flip_execution_reduction_percent >= 30.0;
    CausalityBench {
        scale,
        exhaustive,
        adaptive,
        verified,
        static_disagreements,
        flip_execution_reduction_percent,
        diagnoses_identical,
        meets_causality_gate,
    }
}

/// Runs the memoization A/B benchmark over Table 2.
///
/// The baseline must run before the memoized side: the memo table and the
/// snapshot forest are process-wide, so this function measures them cold.
/// (The baseline never consults either, so the order only matters for the
/// memoized side's hit counters, not for any diagnosis.)
#[must_use]
pub fn bench_memo(scale: f64) -> MemoBench {
    let passes = 2;
    let run = |memo: bool| {
        // One program per bug, shared across passes — the memo table keys
        // on program identity, exactly as a live re-diagnosis session
        // holds one `Arc<Program>` (each side still builds its own, so
        // sides never share memo entries).
        let bugs = corpus::cves();
        let progs: Vec<Arc<ksim::Program>> = bugs.iter().map(|b| b.program_scaled(scale)).collect();
        let mut all_rows = Vec::new();
        let mut vm_executions = 0;
        let mut memo_hits = 0;
        let mut forest_hits = 0;
        for _ in 0..passes {
            // Fresh pool per pass; single worker because hit counters are
            // racy across workers (two fingerprint-equal jobs in flight
            // race to insert first), so the benchmark pins vms to 1 for
            // reproducible numbers.
            let exec = Arc::new(Executor::with_config(ExecutorConfig {
                vms: 1,
                memo,
                ..ExecutorConfig::default()
            }));
            all_rows.push(
                bugs.iter()
                    .zip(&progs)
                    .map(|(b, p)| diagnose_program_on(b, Arc::clone(p), &exec))
                    .collect::<Vec<_>>(),
            );
            let stats = exec.stats();
            vm_executions += stats.runs;
            memo_hits += stats.memo_hits;
            forest_hits += stats.forest_hits;
        }
        let sim_time_saved_s = all_rows
            .iter()
            .flatten()
            .map(|r| r.lifs.sim_time_saved_s + r.result.stats.sim_time_saved_s)
            .sum();
        let schedules_executed = all_rows
            .iter()
            .flatten()
            .map(|r| r.lifs.schedules_executed + r.result.stats.schedules_executed)
            .sum();
        let side = MemoBenchSide {
            vm_executions,
            memo_hits,
            forest_hits,
            sim_time_saved_s,
            schedules_executed,
        };
        (all_rows, side)
    };
    // Baseline first: it never consults the process-wide table, so the
    // order only matters for the memoized side's counters, which this way
    // are measured from a cold table.
    let (base_rows, baseline) = run(false);
    let (memo_rows, memoized) = run(true);
    let diagnoses_identical = base_rows
        .iter()
        .zip(&memo_rows)
        .all(|(b, m)| diagnosis_digest(b) == diagnosis_digest(m));
    let vm_execution_reduction_percent = if baseline.vm_executions > 0 {
        100.0
            * baseline
                .vm_executions
                .saturating_sub(memoized.vm_executions) as f64
            / baseline.vm_executions as f64
    } else {
        0.0
    };
    MemoBench {
        scale,
        passes,
        baseline,
        memoized,
        vm_execution_reduction_percent,
        diagnoses_identical,
    }
}

/// One interruption point of the kill-and-resume benchmark.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ResumePoint {
    /// Where the campaign was "killed", as a percent of its journal.
    pub interrupted_at_percent: u32,
    /// Conclusive records the uninterrupted campaign journaled.
    pub journal_records_total: usize,
    /// Records surviving the simulated kill (the journal prefix replayed
    /// on resume).
    pub journal_records_kept: usize,
    /// VM executions the uninterrupted campaign paid.
    pub baseline_vm_executions: u64,
    /// VM executions the resumed campaign paid (journal replay answers the
    /// rest at zero cost).
    pub resumed_vm_executions: u64,
    /// Percent of the baseline's VM executions the resume avoided.
    pub vm_executions_saved_percent: f64,
    /// Whether the resumed diagnosis is bit-identical to the
    /// uninterrupted one (chain, verdicts, schedules, statistics).
    pub diagnosis_identical: bool,
}

/// Result of `report bench-resume`: VM executions saved by journal replay
/// when a campaign is killed at 25/50/75% progress and relaunched.
///
/// Each interruption point runs an uninterrupted journaled campaign,
/// truncates its journal at a record boundary to the given fraction
/// (exactly what a kill mid-campaign leaves behind, minus the torn tail
/// the journal would truncate anyway), then resumes with a
/// content-identical program in a fresh allocation — so the process-wide
/// memo table (keyed on `Arc` identity) cannot answer, and every saved
/// execution is attributable to the digest-keyed journal replay alone.
/// This is the honest single-process model of a process restart.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ResumeBench {
    /// Noise scale the campaigns ran at.
    pub scale: f64,
    /// The corpus bug diagnosed.
    pub bug_id: String,
    /// The 25/50/75% interruption points.
    pub points: Vec<ResumePoint>,
    /// The acceptance gate: the 50% interruption point saves at least 40%
    /// of the baseline's VM executions, and every point resumes to a
    /// bit-identical diagnosis.
    pub meets_resume_gate: bool,
}

/// Everything diagnosis-facing in one campaign diagnosis, as a comparable
/// string (the campaign-level analogue of [`diagnosis_digest`]).
fn campaign_digest(d: &Diagnosis) -> String {
    let verdicts: Vec<aitia::Verdict> = d.result.tested.iter().map(|t| t.verdict).collect();
    format!(
        "slice={} chain={} verdicts={:?} sched={:?} steps={} lifs={} ca={}",
        d.slice_index,
        d.result.chain,
        verdicts,
        d.failing.schedule,
        d.failing.trace.len(),
        d.lifs_stats.schedules_executed,
        d.result.stats.schedules_executed,
    )
}

/// Runs the kill-and-resume benchmark on a representative Table 2 bug.
#[must_use]
pub fn bench_resume(scale: f64) -> ResumeBench {
    let bugs = corpus::cves();
    let bug = bugs
        .iter()
        .find(|b| b.id == "CVE-2017-15649")
        .expect("15649 in corpus");
    let config = || ManagerConfig {
        vms: 1,
        lifs: bug.lifs_config(),
        ..ManagerConfig::default()
    };
    let mut points = Vec::new();
    for pct in [25u32, 50, 75] {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "aitia-bench-resume-{}-{pct}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // The uninterrupted campaign, journaled from cold.
        let baseline = Campaign::with_journal_path(config(), &path);
        let base_outcome = baseline.diagnose_program(bug.program_scaled(scale));
        let base_digest = base_outcome.diagnosis().map(campaign_digest);
        let baseline_vm_executions = baseline.manager().exec_stats().runs;
        // Simulate the kill: keep a prefix of the journal at a record
        // boundary.
        let journal_records_total = aitia::journal::record_count(&path).unwrap_or(0);
        let keep = journal_records_total * pct as usize / 100;
        let journal_records_kept = aitia::journal::truncate_at_record(&path, keep).unwrap_or(0);
        // The relaunched campaign: fresh program allocation, same journal.
        let resumed = Campaign::with_journal_path(config(), &path);
        let resumed_outcome = resumed.diagnose_program(bug.program_scaled(scale));
        let resumed_digest = resumed_outcome.diagnosis().map(campaign_digest);
        let resumed_vm_executions = resumed.manager().exec_stats().runs;
        let vm_executions_saved_percent = if baseline_vm_executions > 0 {
            100.0 * baseline_vm_executions.saturating_sub(resumed_vm_executions) as f64
                / baseline_vm_executions as f64
        } else {
            0.0
        };
        points.push(ResumePoint {
            interrupted_at_percent: pct,
            journal_records_total,
            journal_records_kept,
            baseline_vm_executions,
            resumed_vm_executions,
            vm_executions_saved_percent,
            diagnosis_identical: base_digest.is_some() && base_digest == resumed_digest,
        });
        let _ = std::fs::remove_file(&path);
    }
    let meets_resume_gate = points.iter().all(|p| p.diagnosis_identical)
        && points
            .iter()
            .find(|p| p.interrupted_at_percent == 50)
            .is_some_and(|p| p.vm_executions_saved_percent >= 40.0);
    ResumeBench {
        scale,
        bug_id: bug.id.to_string(),
        points,
        meets_resume_gate,
    }
}

/// One measured worker count of one throughput side.
///
/// The headline rates divide by *busy* time — the seconds workers spent
/// inside `run_cached_shared` ([`aitia::ExecStats::busy_ns`]) — because
/// that is the layer this A/B varies. Wall-clock seconds are reported
/// alongside for context; wall time is dominated by analysis work (LIFS
/// tree maintenance, race detection, chain construction) that is byte-for-
/// byte identical on both sides and would dilute the substrate comparison.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ThroughputPoint {
    /// VM-pool worker count (`--vms`, with OS threads forced to match).
    pub workers: usize,
    /// Wall-clock seconds to diagnose the corpus.
    pub wall_s: f64,
    /// Seconds workers spent executing schedules (summed across workers).
    pub busy_s: f64,
    /// Schedules actually executed ([`aitia::ExecStats::runs`], summed
    /// over per-bug pools). Can vary slightly across worker counts
    /// (speculative execution past a stop bound is discarded work).
    pub schedules_executed: u64,
    /// Engine instructions executed ([`aitia::ExecStats::steps_executed`]).
    pub instrs_executed: u64,
    /// Schedules per busy-worker second.
    pub schedules_per_sec: f64,
    /// Engine instructions per busy-worker second.
    pub instrs_per_sec: f64,
}

/// One side (substrate configuration) of the throughput A/B.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ThroughputSide {
    /// Human-readable configuration label.
    pub label: String,
    /// Measurements at 1, 2 and 8 workers.
    pub points: Vec<ThroughputPoint>,
}

/// Result of `report bench-throughput`: the substrate-throughput A/B over
/// Table 2 (`BENCH_throughput.json`).
///
/// The *before* side re-enacts the pre-refactor substrate — deep-clone
/// snapshots ([`ksim::SnapshotMode::Deep`]) and shared-counter job
/// claiming ([`ClaimMode::Counter`]); the *after* side is the shipped
/// default — structurally-shared copy-on-write snapshots plus
/// work-stealing claim deques. Both sides must produce bit-identical
/// diagnoses at every worker count: the refactor moves wall-clock time
/// only, never results.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ThroughputBench {
    /// Noise scale every cell ran at.
    pub scale: f64,
    /// Deep-clone snapshots + counter claiming (pre-refactor semantics).
    pub before: ThroughputSide,
    /// COW snapshots + work stealing (the shipped default).
    pub after: ThroughputSide,
    /// `after` schedules/sec over `before` schedules/sec at 8 workers.
    pub speedup_at_8: f64,
    /// Whether every diagnosis-facing output is bit-identical across all
    /// six cells.
    pub diagnoses_identical: bool,
    /// The acceptance gate: ≥2× schedules/sec at 8 workers with
    /// bit-identical diagnoses.
    pub meets_throughput_gate: bool,
}

/// Runs the substrate-throughput A/B over Table 2.
///
/// Each of the six cells (two substrate configurations × three worker
/// counts) diagnoses the whole corpus `repeats` times; the least-busy
/// pass is reported, the noise-robust estimator for a shared host. Every
/// pass's diagnosis digest feeds the bit-identity check, so extra repeats
/// strengthen the differential guarantee rather than hiding flakes.
#[must_use]
pub fn bench_throughput(scale: f64, repeats: usize) -> ThroughputBench {
    let repeats = repeats.max(1);
    let measure = |claim: ClaimMode, deep: bool, workers: usize| {
        let bugs = corpus::cves();
        let mut schedules_executed = 0u64;
        let mut instrs_executed = 0u64;
        let mut busy_ns = 0u64;
        let started = std::time::Instant::now();
        let rows: Vec<BugOutcome> = bugs
            .iter()
            .map(|b| {
                // Fresh program and pool per bug, memo off: every cell
                // pays full VM execution, and the process-wide memo table
                // (keyed on program identity) can never answer across
                // cells — the honest A/B.
                let exec = Arc::new(Executor::with_config(ExecutorConfig {
                    vms: workers,
                    os_threads: Some(workers),
                    memo: false,
                    claim,
                    deep_snapshots: deep,
                    ..ExecutorConfig::default()
                }));
                let row = diagnose_program_on(b, b.program_scaled(scale), &exec);
                let stats = exec.stats();
                schedules_executed += stats.runs;
                instrs_executed += stats.steps_executed;
                busy_ns += stats.busy_ns;
                row
            })
            .collect();
        let wall_s = started.elapsed().as_secs_f64();
        let busy_s = busy_ns as f64 / 1e9;
        let point = ThroughputPoint {
            workers,
            wall_s,
            busy_s,
            schedules_executed,
            instrs_executed,
            schedules_per_sec: schedules_executed as f64 / busy_s.max(1e-9),
            instrs_per_sec: instrs_executed as f64 / busy_s.max(1e-9),
        };
        (diagnosis_digest(&rows), point)
    };
    let side = |label: &str, claim: ClaimMode, deep: bool| {
        let mut digests = Vec::new();
        let mut points = Vec::new();
        for workers in [1usize, 2, 8] {
            let mut best: Option<ThroughputPoint> = None;
            for _ in 0..repeats {
                let (digest, point) = measure(claim, deep, workers);
                digests.push(digest);
                if best.as_ref().is_none_or(|b| point.busy_s < b.busy_s) {
                    best = Some(point);
                }
            }
            points.push(best.expect("at least one repeat ran"));
        }
        (
            digests,
            ThroughputSide {
                label: label.to_string(),
                points,
            },
        )
    };
    let (before_digests, before) = side("deep-clone + counter", ClaimMode::Counter, true);
    let (after_digests, after) = side("cow + steal", ClaimMode::Steal, false);
    let diagnoses_identical = before_digests
        .iter()
        .chain(&after_digests)
        .all(|d| *d == before_digests[0]);
    let at8 = |s: &ThroughputSide| {
        s.points
            .iter()
            .find(|p| p.workers == 8)
            .map_or(0.0, |p| p.schedules_per_sec)
    };
    let speedup_at_8 = if at8(&before) > 0.0 {
        at8(&after) / at8(&before)
    } else {
        0.0
    };
    let meets_throughput_gate = diagnoses_identical && speedup_at_8 >= 2.0;
    ThroughputBench {
        scale,
        before,
        after,
        speedup_at_8,
        diagnoses_identical,
        meets_throughput_gate,
    }
}

/// Table 2: the ten CVE bugs.
#[must_use]
pub fn table2(scale: f64) -> Vec<BugOutcome> {
    table2_on(scale, &Arc::new(Executor::new(1)))
}

/// Table 2 diagnosed over a shared VM pool.
#[must_use]
pub fn table2_on(scale: f64, exec: &Arc<Executor>) -> Vec<BugOutcome> {
    table2_on_prune(scale, exec, None)
}

/// [`table2_on`] with an optional `--prune-level` override (`None` keeps
/// each bug's calibrated default).
#[must_use]
pub fn table2_on_prune(
    scale: f64,
    exec: &Arc<Executor>,
    prune: Option<aitia::lifs::PruneLevel>,
) -> Vec<BugOutcome> {
    table2_on_levels(scale, exec, prune, aitia::CausalityLevel::default())
}

/// [`table2_on_prune`] with an explicit `--causality-level`.
#[must_use]
pub fn table2_on_levels(
    scale: f64,
    exec: &Arc<Executor>,
    prune: Option<aitia::lifs::PruneLevel>,
    causality: aitia::CausalityLevel,
) -> Vec<BugOutcome> {
    corpus::cves()
        .iter()
        .map(|b| {
            diagnose_program_with_levels(
                b,
                b.program_scaled(scale),
                exec,
                prune.unwrap_or(b.lifs_config().prune),
                CausalityConfig {
                    level: causality,
                    ..CausalityConfig::default()
                },
            )
        })
        .collect()
}

/// Table 3: the twelve Syzkaller bugs.
#[must_use]
pub fn table3(scale: f64) -> Vec<BugOutcome> {
    table3_on(scale, &Arc::new(Executor::new(1)))
}

/// Table 3 diagnosed over a shared VM pool.
#[must_use]
pub fn table3_on(scale: f64, exec: &Arc<Executor>) -> Vec<BugOutcome> {
    table3_on_prune(scale, exec, None)
}

/// [`table3_on`] with an optional `--prune-level` override (`None` keeps
/// each bug's calibrated default).
#[must_use]
pub fn table3_on_prune(
    scale: f64,
    exec: &Arc<Executor>,
    prune: Option<aitia::lifs::PruneLevel>,
) -> Vec<BugOutcome> {
    table3_on_levels(scale, exec, prune, aitia::CausalityLevel::default())
}

/// [`table3_on_prune`] with an explicit `--causality-level`.
#[must_use]
pub fn table3_on_levels(
    scale: f64,
    exec: &Arc<Executor>,
    prune: Option<aitia::lifs::PruneLevel>,
    causality: aitia::CausalityLevel,
) -> Vec<BugOutcome> {
    corpus::syzkaller()
        .iter()
        .map(|b| {
            diagnose_program_with_levels(
                b,
                b.program_scaled(scale),
                exec,
                prune.unwrap_or(b.lifs_config().prune),
                CausalityConfig {
                    level: causality,
                    ..CausalityConfig::default()
                },
            )
        })
        .collect()
}

/// Renders a Table 2-shaped report (measured vs paper).
#[must_use]
pub fn render_table2(rows: &[BugOutcome], model: &CostModel) -> String {
    let mut s = String::new();
    s.push_str("Table 2 — CVEs caused by a concurrency failure in Linux (measured | paper)\n");
    s.push_str(&format!(
        "{:<18} {:<14} | {:>8} {:>8} {:>6} | {:>8} {:>8} | {:>8} {:>8} {:>6} {:>8} {:>8}\n",
        "Bug ID",
        "Subsystem",
        "LIFS(s)",
        "#sched",
        "Inter.",
        "CA(s)",
        "#sched",
        "pLIFS(s)",
        "p#sched",
        "pInt",
        "pCA(s)",
        "p#sched"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<18} {:<14} | {:>8.1} {:>8} {:>6} | {:>8.1} {:>8} | {:>8.1} {:>8} {:>6} {:>8.1} {:>8}\n",
            r.id,
            r.subsystem,
            r.lifs.sim.seconds(model),
            r.lifs.schedules_executed,
            r.lifs.interleaving_count,
            r.result.stats.sim.seconds(model),
            r.result.stats.schedules_executed,
            r.paper.lifs_time_s,
            r.paper.lifs_schedules,
            r.paper.interleavings,
            r.paper.ca_time_s,
            r.paper.ca_schedules,
        ));
    }
    s
}

/// Renders a Table 3-shaped report (measured vs paper).
#[must_use]
pub fn render_table3(rows: &[BugOutcome], model: &CostModel) -> String {
    let mut s = String::new();
    s.push_str("Table 3 — Syzkaller concurrency bugs (measured | paper)\n");
    s.push_str(&format!(
        "{:<5} {:<14} {:<26} {:<6} | {:>8} {:>7} {:>4} {:>8} {:>7} {:>6} | {:>8} {:>7} {:>4} {:>8} {:>7} {:>6}\n",
        "Bug",
        "Subsystem",
        "Bug type",
        "Multi?",
        "LIFS(s)",
        "#sched",
        "Int",
        "CA(s)",
        "#sched",
        "#chain",
        "pLIFS",
        "p#schd",
        "pInt",
        "pCA",
        "p#schd",
        "p#chn"
    ));
    for r in rows {
        let multi = match r.multi {
            MultiVar::No => "No",
            MultiVar::Tight => "Yes",
            MultiVar::Loose => "Yes*",
        };
        s.push_str(&format!(
            "{:<5} {:<14} {:<26} {:<6} | {:>8.1} {:>7} {:>4} {:>8.1} {:>7} {:>6} | {:>8.1} {:>7} {:>4} {:>8.1} {:>7} {:>6}\n",
            r.id,
            r.subsystem,
            r.bug_type,
            multi,
            r.lifs.sim.seconds(model),
            r.lifs.schedules_executed,
            r.lifs.interleaving_count,
            r.result.stats.sim.seconds(model),
            r.result.stats.schedules_executed,
            r.chain_races(),
            r.paper.lifs_time_s,
            r.paper.lifs_schedules,
            r.paper.interleavings,
            r.paper.ca_time_s,
            r.paper.ca_schedules,
            r.paper
                .chain_races
                .map_or("-".to_string(), |c| c.to_string()),
        ));
    }
    s
}

/// Conciseness aggregate (§5.2).
#[derive(Clone, Copy, Debug)]
pub struct ConcisenessSummary {
    /// Average memory-accessing instructions per failed execution.
    pub avg_mem: f64,
    /// Range of memory-accessing instructions.
    pub mem_range: (usize, usize),
    /// Average individual data races.
    pub avg_races: f64,
    /// Range of individual data races.
    pub race_range: (usize, usize),
    /// Average races in the chain.
    pub avg_chain: f64,
    /// Benign races found inside any chain (must be 0).
    pub benign_in_chains: usize,
}

/// Computes the §5.2 conciseness aggregate over outcomes.
#[must_use]
pub fn conciseness_summary(rows: &[BugOutcome]) -> ConcisenessSummary {
    let n = rows.len().max(1) as f64;
    let mems: Vec<usize> = rows.iter().map(|r| r.conciseness.mem_instrs).collect();
    let races: Vec<usize> = rows.iter().map(|r| r.conciseness.races_detected).collect();
    let chains: Vec<usize> = rows.iter().map(|r| r.conciseness.chain_races).collect();
    // A chain race is benign-in-chain when Causality Analysis judged it
    // benign yet it appears in the chain — impossible by construction, but
    // measured, not assumed.
    let benign_in_chains = rows
        .iter()
        .map(|r| {
            r.result
                .benign()
                .iter()
                .filter(|b| r.result.chain.contains(b.first.at, b.second.at()))
                .count()
        })
        .sum();
    ConcisenessSummary {
        avg_mem: mems.iter().sum::<usize>() as f64 / n,
        mem_range: (
            mems.iter().copied().min().unwrap_or(0),
            mems.iter().copied().max().unwrap_or(0),
        ),
        avg_races: races.iter().sum::<usize>() as f64 / n,
        race_range: (
            races.iter().copied().min().unwrap_or(0),
            races.iter().copied().max().unwrap_or(0),
        ),
        avg_chain: chains.iter().sum::<usize>() as f64 / n,
        benign_in_chains,
    }
}

/// Per-bug baseline comparison results (§5.3).
pub struct ComparisonRow {
    /// The bug.
    pub id: &'static str,
    /// Multi-variable classification.
    pub multi: MultiVar,
    /// AITIA's chain length (it diagnoses every bug).
    pub aitia_chain: usize,
    /// Whether Kairux's single inflection point covers the chain.
    pub kairux_covers: bool,
    /// Whether cooperative bug localization diagnoses the bug (single
    /// variable and top pattern on it).
    pub coop_diagnoses: bool,
    /// Whether MUVI's correlation assumption holds (`None` for
    /// single-variable bugs, which MUVI does not reason about).
    pub muvi_explains: Option<bool>,
    /// Naive replay classification agreement with Causality Analysis
    /// (fraction of races classified identically).
    pub replay_agreement: f64,
}

/// Runs the §5.3 baseline comparison over Table 3's bugs.
#[must_use]
pub fn comparison(scale: f64, samples: usize) -> Vec<ComparisonRow> {
    use baselines::sampler::{
        sample_runs,
        sample_runs_guided,
        split,
        SamplerConfig, //
    };
    let mut out = Vec::new();
    for bug in corpus::syzkaller() {
        let outcome = diagnose_bug(&bug, scale);
        let prog = bug.program_scaled(scale);
        // Blind random runs plus failure-guided runs (the production site
        // that keeps hitting the interleaving — the setting cooperative
        // localization assumes).
        let mut all = sample_runs(
            &prog,
            samples / 2,
            bug.paper.lifs_schedules as u64,
            &SamplerConfig::default(),
        );
        all.extend(sample_runs_guided(
            &prog,
            &outcome.run.schedule,
            samples / 2,
            bug.paper.ca_schedules as u64,
            &SamplerConfig::default(),
        ));
        let (failing, passing) = split(all);
        // Kairux.
        let kairux_covers = baselines::inflection_point(&outcome.run.trace, &passing)
            .map(|p| baselines::kairux::covers_chain(&p, &outcome.result.chain))
            .unwrap_or(false);
        // Cooperative bug localization.
        let ranked = baselines::localize(&failing, &passing);
        let chain_vars: Vec<ksim::Addr> = outcome
            .result
            .root_causes
            .iter()
            .map(|r| r.first.addr)
            .collect();
        let coop_diagnoses = baselines::coop::diagnoses(
            &ranked,
            &outcome.result.chain,
            &chain_vars,
            !bug.multi_variable.is_multi(),
        );
        // MUVI.
        let muvi_explains = if bug.multi_variable.is_multi() {
            let profile = corpus::profile_program(&bug, NoiseSpec::silent());
            let profile_samples = sample_runs(&profile, 30, 99, &SamplerConfig::default());
            let corr = baselines::correlations(&profile_samples, baselines::WINDOW);
            let vars: Vec<ksim::Addr> = bug
                .racing_vars
                .iter()
                .filter_map(|v| {
                    profile
                        .globals
                        .iter()
                        .position(|g| g.name == *v)
                        .map(|i| ksim::GlobalId(i as u32).addr())
                })
                .collect();
            let all_flagged = vars.len() >= 2
                && vars.iter().enumerate().all(|(i, &x)| {
                    vars.iter()
                        .skip(i + 1)
                        .all(|&y| baselines::flags_pair(&corr, x, y, baselines::THRESHOLD))
                });
            Some(all_flagged)
        } else {
            None
        };
        // Replay classification agreement.
        let replay = baselines::classify_all(&outcome.run);
        let agree = replay
            .iter()
            .filter(|(race, v)| {
                let truth = outcome
                    .result
                    .tested
                    .iter()
                    .find(|t| t.race.key() == race.key())
                    .map(|t| t.verdict);
                matches!(
                    (v, truth),
                    (
                        baselines::ReplayVerdict::Harmful,
                        Some(aitia::Verdict::Causal)
                    ) | (
                        baselines::ReplayVerdict::Benign,
                        Some(aitia::Verdict::Benign)
                    )
                )
            })
            .count();
        let replay_agreement = agree as f64 / replay.len().max(1) as f64;
        out.push(ComparisonRow {
            id: bug.id,
            multi: bug.multi_variable,
            aitia_chain: outcome.chain_races(),
            kairux_covers,
            coop_diagnoses,
            muvi_explains,
            replay_agreement,
        });
    }
    out
}

/// Renders the §5.3 comparison and the derived Table 1 matrix.
#[must_use]
pub fn render_comparison(rows: &[ComparisonRow]) -> String {
    let mut s = String::new();
    s.push_str("§5.3 — baseline comparison over Table 3 bugs\n");
    s.push_str(&format!(
        "{:<5} {:<6} {:>6} {:>8} {:>6} {:>6} {:>8}\n",
        "Bug", "Multi?", "AITIA", "Kairux", "Coop", "MUVI", "Replay"
    ));
    for r in rows {
        let multi = match r.multi {
            MultiVar::No => "No",
            MultiVar::Tight => "Yes",
            MultiVar::Loose => "Yes*",
        };
        s.push_str(&format!(
            "{:<5} {:<6} {:>6} {:>8} {:>6} {:>6} {:>7.0}%\n",
            r.id,
            multi,
            format!("{} races", r.aitia_chain),
            if r.kairux_covers { "covers" } else { "-" },
            if r.coop_diagnoses { "yes" } else { "-" },
            r.muvi_explains
                .map_or("n/a".to_string(), |b| if b { "yes" } else { "-" }
                    .to_string()),
            r.replay_agreement * 100.0,
        ));
    }
    let aitia_all = rows.iter().all(|r| r.aitia_chain >= 1);
    let kairux_n = rows.iter().filter(|r| r.kairux_covers).count();
    let coop_n = rows.iter().filter(|r| r.coop_diagnoses).count();
    let muvi_n = rows
        .iter()
        .filter(|r| r.muvi_explains == Some(true))
        .count();
    s.push_str(&format!(
        "\nAITIA diagnoses {} / {} bugs; Kairux covers {}, cooperative localization {}, MUVI {}.\n",
        if aitia_all { rows.len() } else { 0 },
        rows.len(),
        kairux_n,
        coop_n,
        muvi_n
    ));
    s.push_str("\nTable 1 — requirements matrix (measured behaviour → mark; paper's marks in parentheses)\n");
    s.push_str(&format!(
        "{:<26} {:>16} {:>18} {:>12}\n",
        "Tool", "Comprehensive", "Pattern-agnostic", "Concise"
    ));
    s.push_str(&format!(
        "{:<26} {:>16} {:>18} {:>12}\n",
        "AITIA",
        if aitia_all { "yes (✓)" } else { "NO (✓)" },
        if aitia_all { "yes (✓)" } else { "NO (✓)" },
        "yes (✓)"
    ));
    s.push_str(&format!(
        "{:<26} {:>16} {:>18} {:>12}\n",
        "Kairux",
        format!("{kairux_n}/12 (-)"),
        "yes (✓)",
        "yes (✓)"
    ));
    s.push_str(&format!(
        "{:<26} {:>16} {:>18} {:>12}\n",
        "MUVI",
        "partial (△)",
        format!("{muvi_n}/12 (-)"),
        "yes (✓)"
    ));
    s.push_str(&format!(
        "{:<26} {:>16} {:>18} {:>12}\n",
        "Coop. (Snorlax/Gist/CCI)",
        "partial (△)",
        format!("{coop_n}/12 (-)"),
        "yes (✓)"
    ));
    s.push_str(&format!(
        "{:<26} {:>16} {:>18} {:>12}\n",
        "Reproduction (REPT/RR)", "yes (✓)", "yes (✓)", "NO (-)"
    ));
    s
}

/// Ablation results for one configuration toggle.
pub struct Ablation {
    /// Name of the toggle.
    pub name: &'static str,
    /// Schedules with the paper's design.
    pub with: usize,
    /// Schedules with the toggle disabled.
    pub without: usize,
    /// Whether both configurations succeeded.
    pub both_succeed: bool,
}

/// Design-choice ablations over a representative bug subset.
#[must_use]
pub fn ablations(scale: f64) -> Vec<Ablation> {
    let bugs = corpus::cves();
    let sample: Vec<&BugModel> = bugs
        .iter()
        .filter(|b| ["CVE-2017-15649", "CVE-2019-11486", "CVE-2017-2671"].contains(&b.id))
        .collect();
    let mut out = Vec::new();
    // LIFS partial-order reduction on/off.
    let mut with = 0;
    let mut without = 0;
    let mut ok = true;
    for bug in &sample {
        let prog = bug.program_scaled(scale);
        let mut cfg = bug.lifs_config();
        cfg.prune = aitia::lifs::PruneLevel::Conflict;
        let a = Lifs::new(Arc::clone(&prog), cfg.clone()).search();
        cfg.prune = aitia::lifs::PruneLevel::Off;
        let b = Lifs::new(prog, cfg).search();
        with += a.stats.schedules_executed;
        without += b.stats.schedules_executed;
        ok &= a.failing.is_some() && b.failing.is_some();
    }
    out.push(Ablation {
        name: "LIFS partial-order reduction",
        with,
        without,
        both_succeed: ok,
    });
    // Causality Analysis backward vs forward testing.
    let mut with = 0;
    let mut without = 0;
    let mut ok = true;
    for bug in &sample {
        let prog = bug.program_scaled(scale);
        let run = Lifs::new(prog, bug.lifs_config())
            .search()
            .failing
            .expect("reproduces");
        let a = CausalityAnalysis::new(CausalityConfig {
            backward: true,
            ..CausalityConfig::default()
        })
        .analyze(&run);
        let b = CausalityAnalysis::new(CausalityConfig {
            backward: false,
            ..CausalityConfig::default()
        })
        .analyze(&run);
        with += a.stats.schedules_executed;
        without += b.stats.schedules_executed;
        ok &= a.chain.race_count() >= 1 && b.chain.race_count() >= 1;
    }
    out.push(Ablation {
        name: "Causality Analysis backward testing",
        with,
        without,
        both_succeed: ok,
    });
    // Critical sections as flip units on/off — measured on the lock-bound
    // scenario (`corpus::figures::locked_cs_scenario`): without the §3.4
    // rule the flip suspends a thread inside its critical section, the
    // peer blocks on the lock, and only forced resumes (which break the
    // flip) let the run continue. The metric is the chain length each
    // configuration recovers.
    {
        let prog = Arc::new(corpus::figures::locked_cs_scenario());
        let run = Lifs::new(Arc::clone(&prog), aitia::lifs::LifsConfig::default())
            .search()
            .failing
            .expect("locked scenario reproduces");
        let a = CausalityAnalysis::new(CausalityConfig {
            cs_as_unit: true,
            ..CausalityConfig::default()
        })
        .analyze(&run);
        let b = CausalityAnalysis::new(CausalityConfig {
            cs_as_unit: false,
            ..CausalityConfig::default()
        })
        .analyze(&run);
        out.push(Ablation {
            name: "critical-section flips (chain races recovered)",
            with: a.chain.race_count(),
            without: b.chain.race_count(),
            both_succeed: a.chain.race_count() >= b.chain.race_count(),
        });
    }
    out
}

/// Renders the ablation table.
#[must_use]
pub fn render_ablations(rows: &[Ablation]) -> String {
    let mut s = String::new();
    s.push_str("Ablations — schedules executed with / without each design choice\n");
    for a in rows {
        s.push_str(&format!(
            "  {:<40} with: {:>7}  without: {:>7}  (both succeed: {})\n",
            a.name, a.with, a.without, a.both_succeed
        ));
    }
    s
}

// ---------------------------------------------------------------------------
// Generated corpus — differential fuzzing over the executor config matrix.

/// One executor configuration in the differential fuzz matrix.
#[derive(Clone, Copy, Debug)]
pub struct MatrixCell {
    /// LIFS prune level.
    pub prune: aitia::lifs::PruneLevel,
    /// Causality Analysis intervention level.
    pub causality: aitia::CausalityLevel,
    /// Cross-run memoization + shared snapshot forest on/off.
    pub memo: bool,
    /// Batch-claim strategy.
    pub claim: ClaimMode,
    /// Deep-clone snapshots instead of copy-on-write.
    pub deep_snapshots: bool,
    /// Worker count.
    pub vms: usize,
    /// Execution backend the cell's pool boots.
    pub backend: aitia::BackendKind,
}

impl MatrixCell {
    /// Short label, e.g. `dpor/memo/steal/cow/8vm/ksim/adaptive`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{:?}/{}/{:?}/{}/{}vm/{}/{}",
            self.prune,
            if self.memo { "memo" } else { "nomemo" },
            self.claim,
            if self.deep_snapshots { "deep" } else { "cow" },
            self.vms,
            self.backend,
            self.causality
        )
        .to_lowercase()
    }

    /// A fresh pool configured for this cell.
    #[must_use]
    pub fn executor(&self) -> Arc<Executor> {
        Arc::new(Executor::with_config(ExecutorConfig {
            vms: self.vms,
            memo: self.memo,
            claim: self.claim,
            deep_snapshots: self.deep_snapshots,
            backend: self.backend,
            ..ExecutorConfig::default()
        }))
    }
}

/// The full differential matrix: prune {off, conflict, dpor} × memo
/// {on, off} × claim {counter, steal} × snapshots {cow, deep} × workers
/// {1, 2, 8} at the exhaustive causality level — 72 cells — plus an
/// adaptive-causality axis: prune {off, conflict, dpor} × workers {1, 8}
/// with the default memo/claim/snapshot knobs — 6 more cells. Cell 0
/// (off/memo/counter/cow/1vm/ksim/exhaustive) is the reference the recall
/// gate is measured on; the first adaptive cell is the reference for the
/// adaptive recall gate.
///
/// When this build carries the `kvm` backend and `/dev/kvm` is usable, a
/// backend axis joins the matrix: prune {off, conflict, dpor} × workers
/// {1, 2} on the KVM microVM substrate, which must reproduce the very
/// same diagnosis digests as every ksim cell at the same causality level.
/// Unavailable backends contribute no cells, so the matrix (and `report
/// fuzz`) degrades to the pure-ksim matrix on machines without KVM.
#[must_use]
pub fn corpus_matrix() -> Vec<MatrixCell> {
    use aitia::lifs::PruneLevel;
    let mut cells = Vec::new();
    for prune in [PruneLevel::Off, PruneLevel::Conflict, PruneLevel::Dpor] {
        for memo in [true, false] {
            for claim in [ClaimMode::Counter, ClaimMode::Steal] {
                for deep_snapshots in [false, true] {
                    for vms in [1usize, 2, 8] {
                        cells.push(MatrixCell {
                            prune,
                            causality: aitia::CausalityLevel::Exhaustive,
                            memo,
                            claim,
                            deep_snapshots,
                            vms,
                            backend: aitia::BackendKind::Ksim,
                        });
                    }
                }
            }
        }
    }
    if aitia::BackendKind::Kvm.available().is_ok() {
        for prune in [PruneLevel::Off, PruneLevel::Conflict, PruneLevel::Dpor] {
            for vms in [1usize, 2] {
                cells.push(MatrixCell {
                    prune,
                    causality: aitia::CausalityLevel::Exhaustive,
                    memo: true,
                    claim: ClaimMode::Counter,
                    deep_snapshots: false,
                    vms,
                    backend: aitia::BackendKind::Kvm,
                });
            }
        }
    }
    for prune in [PruneLevel::Off, PruneLevel::Conflict, PruneLevel::Dpor] {
        for vms in [1usize, 8] {
            cells.push(MatrixCell {
                prune,
                causality: aitia::CausalityLevel::Adaptive,
                memo: true,
                claim: ClaimMode::Counter,
                deep_snapshots: false,
                vms,
                backend: aitia::BackendKind::Ksim,
            });
        }
    }
    cells
}

/// Diagnoses a generated bug on one pool at one prune level and one
/// causality level. `None` means the planted failure did not reproduce — a
/// generator or substrate bug the caller records rather than panics on
/// (unlike the hand-built corpus, generated programs are hostile input by
/// design).
#[must_use]
pub fn diagnose_generated(
    bug: &corpus::generate::GeneratedBug,
    exec: &Arc<Executor>,
    prune: aitia::lifs::PruneLevel,
    causality: aitia::CausalityLevel,
) -> Option<(FailingRun, CausalityResult)> {
    let cfg = aitia::lifs::LifsConfig {
        prune,
        ..bug.lifs_config()
    };
    let out = Lifs::with_executor(Arc::clone(&bug.program), cfg, Arc::clone(exec)).search();
    let run = out.failing?;
    let result = CausalityAnalysis::with_executor(
        CausalityConfig {
            level: causality,
            ..CausalityConfig::default()
        },
        Arc::clone(exec),
    )
    .analyze(&run);
    Some((run, result))
}

/// The diagnosis digest one cell must agree on: the same fields as the
/// prune-ablation digest (failing schedule, trace length, chain, verdicts,
/// Causality Analysis schedule count — everything except LIFS search
/// counters, which the prune axis changes by design), or the distinguished
/// string `no-repro` so cells must also agree on *not* reproducing. Cells
/// at the same causality level must agree on this digest bit-for-bit.
#[must_use]
pub fn generated_digest(name: &str, outcome: Option<&(FailingRun, CausalityResult)>) -> String {
    match outcome {
        None => format!("{name} no-repro"),
        Some((_, result)) => {
            format!(
                "{} ca={}",
                generated_digest_base(name, outcome),
                result.stats.schedules_executed,
            )
        }
    }
}

/// [`generated_digest`] minus the Causality Analysis schedule count — the
/// cross-causality-level digest. Adaptive skips statically proved flips,
/// so its schedule count is lower by design, but everything the diagnosis
/// *says* (chain, verdicts, failing schedule, trace length) must be
/// bit-identical to the exhaustive level.
#[must_use]
pub fn generated_digest_base(
    name: &str,
    outcome: Option<&(FailingRun, CausalityResult)>,
) -> String {
    match outcome {
        None => format!("{name} no-repro"),
        Some((run, result)) => {
            let verdicts: Vec<aitia::Verdict> = result.tested.iter().map(|t| t.verdict).collect();
            format!(
                "{} chain={} verdicts={:?} sched={:?} steps={}",
                name,
                result.chain,
                verdicts,
                run.schedule,
                run.trace.len(),
            )
        }
    }
}

/// The shrunk reproducer knobs for one divergence.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ShrunkConfig {
    /// The generator seed (the program's identity).
    pub seed: u64,
    /// Shrunk noise scale.
    pub noise_scale: f64,
    /// Shrunk filler budget.
    pub max_filler: usize,
}

impl From<corpus::generate::GenConfig> for ShrunkConfig {
    fn from(c: corpus::generate::GenConfig) -> Self {
        ShrunkConfig {
            seed: c.seed,
            noise_scale: c.noise_scale,
            max_filler: c.max_filler,
        }
    }
}

/// One confirmed divergence: a seed where the matrix disagreed on the
/// diagnosis digest, or where the reference cell's root-cause chain missed
/// the planted race.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CorpusDivergence {
    /// The generator seed.
    pub seed: u64,
    /// Generated program name.
    pub name: String,
    /// Structural family tag.
    pub family: String,
    /// `digest-mismatch` or `recall-miss`.
    pub kind: String,
    /// For mismatches: the first disagreeing cell's label.
    pub cell: Option<String>,
    /// That cell's digest (mismatches only).
    pub digest: Option<String>,
    /// The reference cell's digest.
    pub reference_digest: String,
    /// The smallest same-seed generator config still showing the
    /// divergence.
    pub shrunk: ShrunkConfig,
    /// Where the reproducer JSON was written, if a directory was given.
    pub reproducer_path: Option<String>,
}

/// Seeds-per-family count in the fuzz report.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FamilyCount {
    /// Structural family tag.
    pub family: String,
    /// Seeds that drew this family.
    pub seeds: usize,
}

/// Aggregate result of one differential fuzz run (`report fuzz`).
#[derive(Clone, Debug, serde::Serialize)]
pub struct CorpusBench {
    /// First seed fuzzed.
    pub seed_start: u64,
    /// Number of consecutive seeds fuzzed.
    pub seeds: usize,
    /// Matrix width (executor configurations per seed).
    pub cells: usize,
    /// Seeds per structural family.
    pub families: Vec<FamilyCount>,
    /// Seeds whose planted failure reproduced on the reference cell.
    pub reproduced: usize,
    /// Seeds whose root-cause chain contained a planted racing pair.
    pub recall_hits: usize,
    /// `recall_hits / seeds`.
    pub recall: f64,
    /// Seeds whose adaptive-reference chain contained a planted racing
    /// pair.
    pub adaptive_recall_hits: usize,
    /// `adaptive_recall_hits / seeds`.
    pub adaptive_recall: f64,
    /// Seeds on which every cell produced a bit-identical digest.
    pub digest_agreements: usize,
    /// Every confirmed divergence, shrunk.
    pub divergences: Vec<CorpusDivergence>,
    /// No digest mismatch anywhere in the matrix.
    pub meets_agreement_gate: bool,
    /// Planted-race recall at least 95%.
    pub meets_recall_gate: bool,
    /// Planted-race recall at least 95% under adaptive causality too.
    pub meets_adaptive_recall_gate: bool,
    /// All three gates.
    pub meets_corpus_gate: bool,
}

/// One seed's outcomes across the matrix: per-cell digests plus the
/// reference cells' diagnoses for the recall checks.
struct FuzzOutcomes {
    /// Per-cell same-level digests (with the CA schedule count).
    full: Vec<String>,
    /// Per-cell cross-level digests (without it).
    base: Vec<String>,
    /// Cell 0's (exhaustive reference) diagnosis.
    reference: Option<(FailingRun, CausalityResult)>,
    /// The first adaptive cell's diagnosis.
    adaptive: Option<(FailingRun, CausalityResult)>,
}

/// Runs one seed's program through every cell.
fn fuzz_one(
    bug: &corpus::generate::GeneratedBug,
    cells: &[MatrixCell],
    execs: &[Arc<Executor>],
) -> FuzzOutcomes {
    let mut out = FuzzOutcomes {
        full: Vec::with_capacity(cells.len()),
        base: Vec::with_capacity(cells.len()),
        reference: None,
        adaptive: None,
    };
    let first_adaptive = cells
        .iter()
        .position(|c| c.causality == aitia::CausalityLevel::Adaptive);
    for (i, (cell, exec)) in cells.iter().zip(execs).enumerate() {
        let outcome = diagnose_generated(bug, exec, cell.prune, cell.causality);
        out.full.push(generated_digest(&bug.name, outcome.as_ref()));
        out.base
            .push(generated_digest_base(&bug.name, outcome.as_ref()));
        if i == 0 {
            out.reference = outcome;
        } else if Some(i) == first_adaptive {
            out.adaptive = outcome;
        }
    }
    out
}

/// The first cell disagreeing with its reference: the cross-level digest
/// must agree across the entire matrix, and the full digest (which pins
/// the CA schedule count) across every cell of the same causality level.
fn fuzz_mismatch(cells: &[MatrixCell], out: &FuzzOutcomes) -> Option<usize> {
    let mut level_ref: Vec<(aitia::CausalityLevel, usize)> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        if out.base[i] != out.base[0] {
            return Some(i);
        }
        match level_ref.iter().find(|(l, _)| *l == cell.causality) {
            Some(&(_, r)) => {
                if out.full[i] != out.full[r] {
                    return Some(i);
                }
            }
            None => level_ref.push((cell.causality, i)),
        }
    }
    None
}

/// Differential fuzz over `seeds` consecutive generated programs starting
/// at `seed_start`: every program runs through the full executor matrix
/// (72 exhaustive cells, the adaptive-causality axis, and — when KVM is
/// usable — the backend axis); cross-level
/// digests must agree bit-for-bit, same-level digests must also agree on
/// CA schedule counts, and both reference cells' chains must contain a
/// planted racing pair. Divergences are shrunk (same seed, simpler
/// noise/filler knobs) and, when `repro_dir` is given, written as JSON
/// reproducers.
#[must_use]
pub fn bench_corpus(seed_start: u64, seeds: usize, repro_dir: Option<&str>) -> CorpusBench {
    use corpus::generate::{generate, generate_with, GenConfig};

    let cells = corpus_matrix();
    let execs: Vec<Arc<Executor>> = cells.iter().map(MatrixCell::executor).collect();
    let mut families: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut reproduced = 0usize;
    let mut recall_hits = 0usize;
    let mut adaptive_recall_hits = 0usize;
    let mut digest_agreements = 0usize;
    let mut divergences: Vec<CorpusDivergence> = Vec::new();

    for seed in seed_start..seed_start + seeds as u64 {
        let bug = generate(seed);
        *families.entry(bug.family.tag().to_string()).or_insert(0) += 1;
        let outcomes = fuzz_one(&bug, &cells, &execs);
        let mismatch = fuzz_mismatch(&cells, &outcomes);
        if mismatch.is_none() {
            digest_agreements += 1;
        }
        if outcomes.reference.is_some() {
            reproduced += 1;
        }
        let recalled = outcomes
            .reference
            .as_ref()
            .is_some_and(|(_, result)| bug.planted_in_chain(&result.chain));
        if recalled {
            recall_hits += 1;
        }
        if outcomes
            .adaptive
            .as_ref()
            .is_some_and(|(_, result)| bug.planted_in_chain(&result.chain))
        {
            adaptive_recall_hits += 1;
        }

        if let Some(cell_idx) = mismatch {
            // Shrink while the matrix still disagrees anywhere.
            let shrunk = corpus::generate::shrink(&bug.config, |c: &GenConfig| {
                let candidate = generate_with(*c);
                let out = fuzz_one(&candidate, &cells, &execs);
                fuzz_mismatch(&cells, &out).is_some()
            });
            divergences.push(CorpusDivergence {
                seed,
                name: bug.name.clone(),
                family: bug.family.tag().to_string(),
                kind: "digest-mismatch".to_string(),
                cell: Some(cells[cell_idx].label()),
                digest: Some(outcomes.full[cell_idx].clone()),
                reference_digest: outcomes.full[0].clone(),
                shrunk: shrunk.into(),
                reproducer_path: None,
            });
        } else if !recalled {
            // Shrink while the reference cell still misses the planted
            // race (or fails to reproduce at all).
            let shrunk = corpus::generate::shrink(&bug.config, |c: &GenConfig| {
                let candidate = generate_with(*c);
                let outcome =
                    diagnose_generated(&candidate, &execs[0], cells[0].prune, cells[0].causality);
                !outcome
                    .as_ref()
                    .is_some_and(|(_, result)| candidate.planted_in_chain(&result.chain))
            });
            divergences.push(CorpusDivergence {
                seed,
                name: bug.name.clone(),
                family: bug.family.tag().to_string(),
                kind: "recall-miss".to_string(),
                cell: None,
                digest: None,
                reference_digest: outcomes.full[0].clone(),
                shrunk: shrunk.into(),
                reproducer_path: None,
            });
        }
    }

    if let Some(dir) = repro_dir {
        if !divergences.is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("fuzz: cannot create reproducer dir {dir} ({e}); skipping files");
            } else {
                for d in &mut divergences {
                    let path = format!("{dir}/seed-{}-{}.json", d.seed, d.kind);
                    match std::fs::write(
                        &path,
                        serde_json::to_string_pretty(&*d).expect("divergence serializes"),
                    ) {
                        Ok(()) => d.reproducer_path = Some(path),
                        Err(e) => eprintln!("fuzz: cannot write {path} ({e})"),
                    }
                }
            }
        }
    }

    let mismatches = divergences
        .iter()
        .filter(|d| d.kind == "digest-mismatch")
        .count();
    let recall = if seeds == 0 {
        1.0
    } else {
        recall_hits as f64 / seeds as f64
    };
    let adaptive_recall = if seeds == 0 {
        1.0
    } else {
        adaptive_recall_hits as f64 / seeds as f64
    };
    let meets_agreement_gate = mismatches == 0;
    let meets_recall_gate = recall >= 0.95;
    let meets_adaptive_recall_gate = adaptive_recall >= 0.95;
    CorpusBench {
        seed_start,
        seeds,
        cells: cells.len(),
        families: families
            .into_iter()
            .map(|(family, seeds)| FamilyCount { family, seeds })
            .collect(),
        reproduced,
        recall_hits,
        recall,
        adaptive_recall_hits,
        adaptive_recall,
        digest_agreements,
        divergences,
        meets_agreement_gate,
        meets_recall_gate,
        meets_adaptive_recall_gate,
        meets_corpus_gate: meets_agreement_gate && meets_recall_gate && meets_adaptive_recall_gate,
    }
}

/// Resolves `campaignd` job payloads against the bug corpus.
///
/// Two payload grammars are accepted:
///
/// * `cve:<bug-id>:<scale>` — a hand-built corpus bug (CVE id or
///   Syzkaller `#n`) at a benign-noise scale, e.g.
///   `cve:CVE-2017-15649:0.05`;
/// * `gen:<seed>[:<noise>[:<filler>]]` — a generated bug from
///   [`corpus::generate`], optionally overriding the noise scale and
///   filler bound, e.g. `gen:42` or `gen:42:0.5:1`.
///
/// Anything else is a resolver error, which the server counts as a
/// supervisor fault (and eventually dead-letters).
#[derive(Clone, Copy, Debug, Default)]
pub struct CorpusJobResolver {
    /// Deterministic VM fault injection applied to every resolved job
    /// (`None` disables). Faults only cost simulated retry time — the
    /// diagnosis itself is fault-invariant.
    pub fault: Option<aitia::FaultInjection>,
}

impl aitia::server::JobResolver for CorpusJobResolver {
    fn resolve(&self, payload: &str) -> Result<aitia::server::ResolvedJob, String> {
        let mut parts = payload.split(':');
        let kind = parts.next().unwrap_or_default();
        match kind {
            "cve" => {
                let id = parts
                    .next()
                    .ok_or_else(|| format!("payload {payload:?}: missing bug id"))?;
                let scale: f64 = parts
                    .next()
                    .ok_or_else(|| format!("payload {payload:?}: missing scale"))?
                    .parse()
                    .map_err(|e| format!("payload {payload:?}: bad scale ({e})"))?;
                if !(scale.is_finite() && scale > 0.0) {
                    return Err(format!(
                        "payload {payload:?}: scale must be finite and positive"
                    ));
                }
                let bug = corpus::all_bugs()
                    .into_iter()
                    .find(|b| b.id == id)
                    .ok_or_else(|| format!("payload {payload:?}: unknown bug {id:?}"))?;
                Ok(aitia::server::ResolvedJob {
                    program: bug.program_scaled(scale),
                    lifs: bug.lifs_config(),
                    causality: CausalityConfig::default(),
                    fault: self.fault,
                })
            }
            "gen" => {
                let seed: u64 = parts
                    .next()
                    .ok_or_else(|| format!("payload {payload:?}: missing seed"))?
                    .parse()
                    .map_err(|e| format!("payload {payload:?}: bad seed ({e})"))?;
                let mut config = corpus::generate::GenConfig::new(seed);
                if let Some(noise) = parts.next() {
                    config.noise_scale = noise
                        .parse()
                        .map_err(|e| format!("payload {payload:?}: bad noise ({e})"))?;
                }
                if let Some(filler) = parts.next() {
                    config.max_filler = filler
                        .parse()
                        .map_err(|e| format!("payload {payload:?}: bad filler ({e})"))?;
                }
                let bug = corpus::generate::generate_with(config);
                Ok(aitia::server::ResolvedJob {
                    program: Arc::clone(&bug.program),
                    lifs: bug.lifs_config(),
                    causality: CausalityConfig::default(),
                    fault: self.fault,
                })
            }
            _ => Err(format!(
                "payload {payload:?}: expected cve:<bug-id>:<scale> or \
                 gen:<seed>[:<noise>[:<filler>]]"
            )),
        }
    }
}

/// One side of the server benchmark: the Table 2 corpus streamed through
/// a `campaignd` instance at one concurrency setting.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServerBenchSide {
    /// Human label (`serial` or `concurrent-8`).
    pub label: String,
    /// Concurrent campaigns (worker threads) on this side.
    pub max_inflight: usize,
    /// Campaigns run.
    pub campaigns: usize,
    /// Per-job diagnosis digests, in submission order.
    pub digests: Vec<String>,
    /// Simulated makespan of the whole batch on the default
    /// [`CostModel`] (campaigns list-scheduled onto `max_inflight`
    /// lanes), in seconds.
    pub sim_makespan_s: f64,
    /// Campaigns per simulated hour.
    pub campaigns_per_hour: f64,
    /// Median simulated queue latency (submit → admission), seconds.
    pub queue_latency_p50_s: f64,
    /// 95th-percentile simulated queue latency, seconds.
    pub queue_latency_p95_s: f64,
    /// The server's counter snapshot after the drain.
    pub stats: aitia::ServerStats,
}

/// The `campaignd` throughput benchmark: serial submission (one campaign
/// at a time, each holding the whole 8-VM pool) against 8 concurrent
/// fair-shared campaigns, over the Table 2 corpus.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServerBench {
    /// Benign-noise scale the corpus ran at.
    pub scale: f64,
    /// VM slots in each side's pool.
    pub total_vms: usize,
    /// The serial side (`max_inflight = 1`).
    pub serial: ServerBenchSide,
    /// The concurrent side (`max_inflight = 8`).
    pub concurrent: ServerBenchSide,
    /// Whether both sides produced bit-identical per-job digests.
    pub diagnoses_identical: bool,
    /// Serial makespan over concurrent makespan.
    pub campaigns_per_hour_speedup: f64,
    /// `diagnoses_identical` and speedup ≥ 1.5.
    pub meets_server_gate: bool,
}

/// List-schedules per-campaign simulated durations (submission order)
/// onto `lanes` identical lanes: returns the batch makespan and each
/// campaign's queue latency (simulated time from submission-at-zero to
/// admission).
fn server_timeline(durations_s: &[f64], lanes: usize) -> (f64, Vec<f64>) {
    let lanes = lanes.max(1);
    let mut lane_end = vec![0.0f64; lanes];
    let mut latencies = Vec::with_capacity(durations_s.len());
    for &d in durations_s {
        let lane = lane_end
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map_or(0, |(i, _)| i);
        latencies.push(lane_end[lane]);
        lane_end[lane] += d;
    }
    let makespan = lane_end.iter().copied().fold(0.0f64, f64::max);
    (makespan, latencies)
}

/// The `p`-th percentile (0..=100) of `values` by nearest-rank.
fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the `campaignd` throughput benchmark: the Table 2 corpus as
/// `cve:<id>:<scale>` payloads through two fresh server instances —
/// serial (`max_inflight` 1: each campaign holds all 8 VM slots, so small
/// schedule batches leave most of the pool idle) and concurrent
/// (`max_inflight` 8: eight width-1 campaigns run side by side at full
/// pool utilization). Throughput and queue latency are computed on the
/// deterministic simulated clock ([`aitia::ExecStats::sim_makespan_ns`]
/// per campaign, campaigns list-scheduled onto lanes), so the result is
/// bit-stable on any host. The gate demands bit-identical per-job
/// digests and a ≥ 1.5× campaigns-per-hour speedup.
///
/// # Panics
///
/// Panics when a scratch server directory cannot be created — the bench
/// requires a writable temp dir.
#[must_use]
pub fn bench_server(scale: f64) -> ServerBench {
    let total_vms = 8usize;
    // Three scale steps per bug: a realistic stream re-diagnoses the same
    // corpus at several noise levels, and 30 campaigns amortize the
    // longest single campaign across the concurrent side's lanes (with
    // only 10, one long width-1 campaign floors the 8-lane makespan).
    let payloads: Vec<String> = corpus::cves()
        .iter()
        .flat_map(|b| {
            [1.0, 0.5, 0.25]
                .iter()
                .map(|m| format!("cve:{}:{}", b.id, scale * m))
                .collect::<Vec<_>>()
        })
        .collect();
    let side = |label: &str, max_inflight: usize| -> ServerBenchSide {
        let mut dir = std::env::temp_dir();
        dir.push(format!("aitia-bench-server-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = aitia::ServerConfig {
            max_inflight,
            total_vms,
            drain: true,
            poll_ms: 5,
            ..aitia::ServerConfig::at(&dir)
        };
        let server = aitia::CampaignServer::open(config, Arc::new(CorpusJobResolver::default()))
            .expect("scratch server dir is writable");
        let ids: Vec<u64> = payloads
            .iter()
            .map(|p| server.submit(p).expect("bench submits fit the queue"))
            .collect();
        let stats = server.run();
        let jobs = server.jobs().expect("queue folds after drain");
        let digests: Vec<String> = ids
            .iter()
            .map(|id| jobs[id].digest.clone().unwrap_or_default())
            .collect();
        let durations: Vec<f64> = ids
            .iter()
            .map(|id| jobs[id].sim_makespan_ns.unwrap_or(0) as f64 / 1e9)
            .collect();
        let (makespan, latencies) = server_timeline(&durations, max_inflight);
        let _ = std::fs::remove_dir_all(&dir);
        ServerBenchSide {
            label: label.to_string(),
            max_inflight,
            campaigns: ids.len(),
            digests,
            sim_makespan_s: makespan,
            campaigns_per_hour: if makespan > 0.0 {
                ids.len() as f64 * 3600.0 / makespan
            } else {
                0.0
            },
            queue_latency_p50_s: percentile(&latencies, 50.0),
            queue_latency_p95_s: percentile(&latencies, 95.0),
            stats,
        }
    };
    let serial = side("serial", 1);
    let concurrent = side("concurrent-8", total_vms);
    let diagnoses_identical =
        serial.digests == concurrent.digests && serial.digests.iter().all(|d| !d.is_empty());
    let campaigns_per_hour_speedup = if serial.sim_makespan_s > 0.0 {
        serial.sim_makespan_s / concurrent.sim_makespan_s.max(f64::MIN_POSITIVE)
    } else {
        0.0
    };
    let meets_server_gate = diagnoses_identical && campaigns_per_hour_speedup >= 1.5;
    ServerBench {
        scale,
        total_vms,
        serial,
        concurrent,
        diagnoses_identical,
        campaigns_per_hour_speedup,
        meets_server_gate,
    }
}
