//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p aitia-bench --bin report -- all
//! cargo run --release -p aitia-bench --bin report -- table2 [--scale 1.0]
//! ```
//!
//! Subcommands: `table1`, `table2`, `table3`, `conciseness`, `comparison`,
//! `ablations`, `fig5`, `fig6`, `fig7`, `fig9`, `bench-memo`,
//! `bench-resume`, `bench-prune`, `bench-causality`, `bench-throughput`,
//! `bench-server`, `all`.
//!
//! `--scale` multiplies every bug's calibrated benign-race noise (1.0 =
//! full calibration, matching the magnitudes of the paper's tables; smaller
//! values run faster).
//!
//! `--vms` sizes the shared VM pool the tables run on; the same number
//! parameterizes the simulated-time cost model, so reported seconds always
//! describe the pool that actually executed the schedules.
//!
//! `--fault-rate` (permille) and `--fault-seed` enable deterministic VM
//! fault injection in the pool; the robustness counter block printed at
//! the end shows what the retry/quarantine machinery absorbed.

use aitia::{
    causality::{
        CausalityAnalysis,
        CausalityConfig, //
    },
    exec::{
        DeadlineBudget,
        Executor,
        ExecutorConfig,
        FaultInjection, //
    },
    journal::Journal,
    lifs::{
        Lifs,
        LifsConfig, //
    },
    simtime::CostModel,
};
use aitia_bench::experiments::{
    self, //
};
use std::sync::Arc;

const USAGE: &str = "usage: report [SUBCOMMAND] [FLAGS]

subcommands (default: all):
  table1 | comparison   reproduction-rate comparison (Table 1)
  table2                the ten CVE bugs (Table 2)
  table3                the twelve Syzkaller bugs (Table 3)
  conciseness           §5.2 conciseness summary
  ablations             backward/CS-unit/POR ablations
  fig5 | fig6 | fig7 | fig9
  extensions            beyond-paper scenarios (IRQ, RCU, ABBA)
  bench-memo            memoization A/B over Table 2 (JSON on stdout)
  bench-resume          kill-and-resume journal benchmark (JSON on stdout)
  bench-prune           prune-level ablation over Table 2 (JSON on stdout)
  bench-causality       causality-level A/B over Table 2 (JSON on stdout)
  bench-throughput      substrate throughput A/B over Table 2 (JSON on stdout)
  bench-server          campaignd serial vs concurrent campaigns over
                        Table 2 (JSON on stdout)
  fuzz                  differential fuzz of generated bugs over the
                        full executor config matrix (JSON on stdout)
  all                   everything above

flags:
  --scale <float>       benign-race noise scale (default 1.0)
  --prune-level <level> LIFS pruning: off, conflict or dpor (default:
                        each bug's calibrated config, normally conflict)
  --causality-level <level>
                        causal intervention strategy: exhaustive or
                        adaptive (static benign proofs + information-gain
                        flip ordering); identical diagnoses at both
                        levels (default exhaustive)
  --samples <int>       comparison sample count (default 400)
  --repeats <int>       bench-throughput passes per cell, at least 1; the
                        least-busy pass is reported (default 2)
  --vms <int>           VM-pool worker count, at least 1 (default 8)
  --snapshot-cache <n>  per-worker snapshot-prefix cache entries, at
                        least 1 (default 8)
  --no-memo             disable cross-run memoization and the shared
                        snapshot forest (the A/B baseline)
  --fault-rate <int>    injected VM-fault rate in permille (default 0 = off)
  --fault-seed <int>    fault-injection seed (default 0)
  --backend <name>      execution backend for the shared pool: ksim
                        (default) or kvm; kvm needs a build with
                        --features kvm and /dev/kvm
  --journal <path>      append conclusive runs to a durable journal and
                        replay nothing (tables build fresh programs); the
                        journal counter block prints at the end
  --deadline-s <float>  wall-clock budget in seconds, finite and positive;
                        on expiry tables degrade to best-so-far results
  --seeds <int>         fuzz: consecutive generator seeds to run (default 200)
  --seed-start <int>    fuzz: first generator seed (default 0)
  --repro-dir <path>    fuzz: where divergence reproducers are written
                        (default target/corpus-repro)";

/// Prints the usage message (prefixed by `msg`) and exits with status 2.
fn usage_exit(msg: &str) -> ! {
    eprintln!("report: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Parses the value of flag `flag` at `args[*i + 1]`, advancing `*i`.
fn flag_value<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    let Some(raw) = args.get(*i) else {
        usage_exit(&format!("{flag} requires a value"));
    };
    raw.parse()
        .unwrap_or_else(|_| usage_exit(&format!("{flag}: invalid value {raw:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = "all".to_string();
    let mut scale = 1.0f64;
    let mut prune: Option<aitia::lifs::PruneLevel> = None;
    let mut causality = aitia::CausalityLevel::default();
    let mut samples = 400usize;
    let mut repeats = 2usize;
    let mut vms = 8usize;
    let mut snapshot_cache = ExecutorConfig::default().snapshot_cache;
    let mut memo = true;
    let mut fault_rate = 0u32;
    let mut fault_seed = 0u64;
    let mut backend = aitia::BackendKind::default();
    let mut journal_path: Option<String> = None;
    let mut deadline_s: Option<f64> = None;
    let mut seeds = 200usize;
    let mut seed_start = 0u64;
    let mut repro_dir = "target/corpus-repro".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => scale = flag_value(&args, &mut i, "--scale"),
            "--prune-level" => prune = Some(flag_value(&args, &mut i, "--prune-level")),
            "--causality-level" => causality = flag_value(&args, &mut i, "--causality-level"),
            "--samples" => samples = flag_value(&args, &mut i, "--samples"),
            "--repeats" => repeats = flag_value(&args, &mut i, "--repeats"),
            "--vms" => vms = flag_value(&args, &mut i, "--vms"),
            "--snapshot-cache" => snapshot_cache = flag_value(&args, &mut i, "--snapshot-cache"),
            "--no-memo" => memo = false,
            "--fault-rate" => fault_rate = flag_value(&args, &mut i, "--fault-rate"),
            "--fault-seed" => fault_seed = flag_value(&args, &mut i, "--fault-seed"),
            "--backend" => backend = flag_value(&args, &mut i, "--backend"),
            "--journal" => journal_path = Some(flag_value(&args, &mut i, "--journal")),
            "--deadline-s" => deadline_s = Some(flag_value(&args, &mut i, "--deadline-s")),
            "--seeds" => seeds = flag_value(&args, &mut i, "--seeds"),
            "--seed-start" => seed_start = flag_value(&args, &mut i, "--seed-start"),
            "--repro-dir" => repro_dir = flag_value(&args, &mut i, "--repro-dir"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => {
                usage_exit(&format!("unknown flag {other:?}"));
            }
            other => cmd = other.to_string(),
        }
        i += 1;
    }
    if vms == 0 {
        usage_exit("--vms must be at least 1 (there is no zero-VM pool)");
    }
    if snapshot_cache == 0 {
        usage_exit("--snapshot-cache must be at least 1 (0 would disable the prefix cache; use --no-memo to disable sharing instead)");
    }
    if let Some(d) = deadline_s {
        if !(d.is_finite() && d > 0.0) {
            usage_exit("--deadline-s must be a finite number greater than 0");
        }
    }
    if let Err(why) = backend.available() {
        usage_exit(&format!("--backend {backend}: {why}"));
    }
    let fault = (fault_rate > 0).then(|| FaultInjection {
        seed: fault_seed,
        rate_permille: fault_rate,
        ..FaultInjection::default()
    });
    let journal = journal_path.as_ref().and_then(|p| match Journal::open(p) {
        Ok(j) => Some(Arc::new(j)),
        Err(e) => {
            eprintln!("report: cannot open journal {p} ({e}); running without durability");
            None
        }
    });
    let deadline = deadline_s.map(|d| {
        Arc::new(DeadlineBudget::new(
            Some(d),
            None,
            CostModel {
                vms: u32::try_from(vms).unwrap_or(u32::MAX),
                ..CostModel::default()
            },
        ))
    });
    let exec = Arc::new(Executor::with_config(ExecutorConfig {
        vms,
        snapshot_cache,
        fault,
        memo,
        journal: journal.clone(),
        deadline,
        backend,
        ..ExecutorConfig::default()
    }));
    let model = experiments::cost_model_for(&exec);
    match cmd.as_str() {
        "table2" => table2(scale, &exec, &model, prune, causality),
        "table3" => table3(scale, &exec, &model, prune, causality),
        "conciseness" => {
            let rows = experiments::table3_on_levels(scale, &exec, prune, causality);
            print_conciseness(&rows);
        }
        "comparison" | "table1" => comparison(scale, samples),
        // Ablations disable the pruning that makes full-scale noise
        // tractable; they run on reduced noise by construction.
        "ablations" => ablations(scale.min(0.05)),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig9" => fig9(),
        "extensions" => extensions(),
        "bench-memo" => {
            // Must run on a cold process-wide memo table: the main pool
            // above executed nothing yet. JSON goes to stdout so the bench
            // script can redirect it straight into BENCH_memo.json; the
            // human summary goes to stderr.
            let b = experiments::bench_memo(scale);
            println!(
                "{}",
                serde_json::to_string_pretty(&b).expect("bench result serializes")
            );
            eprintln!(
                "bench-memo: {} -> {} VM executions ({:.1}% reduction), \
                 {} memo hits, {} forest hits, {:.1} sim seconds saved, \
                 diagnoses identical: {}",
                b.baseline.vm_executions,
                b.memoized.vm_executions,
                b.vm_execution_reduction_percent,
                b.memoized.memo_hits,
                b.memoized.forest_hits,
                b.memoized.sim_time_saved_s,
                b.diagnoses_identical
            );
            return;
        }
        "bench-prune" => {
            // Self-contained like bench-memo: each prune level runs the
            // corpus on fresh single-VM pools and fresh programs, so no
            // memoized state leaks between levels. JSON goes to stdout for
            // BENCH_prune.json; the human summary goes to stderr.
            let b = experiments::bench_prune(scale);
            println!(
                "{}",
                serde_json::to_string_pretty(&b).expect("bench result serializes")
            );
            eprintln!(
                "bench-prune: off {} / conflict {} / dpor {} schedules \
                 ({:.1}% dpor-vs-conflict reduction; sleep-set {}, \
                 persistent-set {}), diagnoses identical: {}, gate met: {}",
                b.off.schedules_executed,
                b.conflict.schedules_executed,
                b.dpor.schedules_executed,
                b.dpor_vs_conflict_reduction_percent,
                b.dpor.pruned_sleep_set,
                b.dpor.pruned_persistent,
                b.diagnoses_identical,
                b.meets_prune_gate
            );
            return;
        }
        "bench-causality" => {
            // Self-contained like bench-prune: each causality level runs
            // the corpus on fresh single-VM pools and fresh programs, so no
            // memoized flip results leak between levels. JSON goes to
            // stdout for BENCH_causality.json; the human summary goes to
            // stderr.
            let b = experiments::bench_causality(scale);
            println!(
                "{}",
                serde_json::to_string_pretty(&b).expect("bench result serializes")
            );
            eprintln!(
                "bench-causality: exhaustive {} / adaptive {} flip VM executions \
                 ({:.1}% reduction; {} static skips, {} reordered, {:.1}s sim saved), \
                 agreement audit: {} disagreements, diagnoses identical: {}, gate met: {}",
                b.exhaustive.flip_vm_executions,
                b.adaptive.flip_vm_executions,
                b.flip_execution_reduction_percent,
                b.adaptive.flips_skipped_static,
                b.adaptive.flips_reordered,
                b.adaptive.sim_time_saved_s,
                b.static_disagreements,
                b.diagnoses_identical,
                b.meets_causality_gate
            );
            return;
        }
        "bench-throughput" => {
            // Self-contained like bench-memo: each cell runs the corpus on
            // fresh pools and fresh programs with memoization off, so
            // every cell pays full VM execution. JSON goes to stdout for
            // BENCH_throughput.json; the human summary goes to stderr.
            let b = experiments::bench_throughput(scale, repeats);
            println!(
                "{}",
                serde_json::to_string_pretty(&b).expect("bench result serializes")
            );
            for (side, tag) in [(&b.before, "before"), (&b.after, "after")] {
                for p in &side.points {
                    eprintln!(
                        "bench-throughput: {tag} ({}) @ {} workers -> \
                         {:.0} schedules/s, {:.0} instrs/s ({:.2}s wall)",
                        side.label, p.workers, p.schedules_per_sec, p.instrs_per_sec, p.wall_s
                    );
                }
            }
            eprintln!(
                "bench-throughput: speedup at 8 workers: {:.2}x, \
                 diagnoses identical: {}, gate met: {}",
                b.speedup_at_8, b.diagnoses_identical, b.meets_throughput_gate
            );
            return;
        }
        "bench-server" => {
            // Self-contained like bench-memo: each side streams the corpus
            // through a fresh server instance on its own private substrate
            // and scratch directory. Throughput and queue latency are
            // simulated-clock figures, so the JSON is bit-stable on any
            // host. JSON goes to stdout for BENCH_server.json; the human
            // summary goes to stderr.
            let b = experiments::bench_server(scale);
            println!(
                "{}",
                serde_json::to_string_pretty(&b).expect("bench result serializes")
            );
            for side in [&b.serial, &b.concurrent] {
                eprintln!(
                    "bench-server: {} ({} inflight) -> {:.0} campaigns/h \
                     ({:.1}s sim makespan, queue p50 {:.1}s p95 {:.1}s)",
                    side.label,
                    side.max_inflight,
                    side.campaigns_per_hour,
                    side.sim_makespan_s,
                    side.queue_latency_p50_s,
                    side.queue_latency_p95_s
                );
            }
            eprintln!(
                "bench-server: speedup {:.2}x, diagnoses identical: {}, gate met: {}",
                b.campaigns_per_hour_speedup, b.diagnoses_identical, b.meets_server_gate
            );
            return;
        }
        "bench-resume" => {
            // Self-contained like bench-memo: journaled campaigns on fresh
            // private pools, JSON on stdout, summary on stderr.
            let b = experiments::bench_resume(scale);
            println!(
                "{}",
                serde_json::to_string_pretty(&b).expect("bench result serializes")
            );
            for p in &b.points {
                eprintln!(
                    "bench-resume: killed at {:>2}% ({}/{} records kept) -> \
                     {} of {} VM executions re-paid ({:.1}% saved), identical: {}",
                    p.interrupted_at_percent,
                    p.journal_records_kept,
                    p.journal_records_total,
                    p.resumed_vm_executions,
                    p.baseline_vm_executions,
                    p.vm_executions_saved_percent,
                    p.diagnosis_identical
                );
            }
            eprintln!("bench-resume: gate met: {}", b.meets_resume_gate);
            return;
        }
        "fuzz" => {
            // Self-contained like bench-memo: every matrix cell runs on its
            // own fresh pool, so the main pool above stays cold and the
            // memo axis really is cold-vs-warm. JSON goes to stdout for
            // BENCH_corpus.json; the human summary goes to stderr.
            let b = experiments::bench_corpus(seed_start, seeds, Some(&repro_dir));
            println!(
                "{}",
                serde_json::to_string_pretty(&b).expect("bench result serializes")
            );
            eprintln!(
                "fuzz: {} seeds x {} cells, {} reproduced, recall {:.1}% \
                 ({} hits), adaptive recall {:.1}% ({} hits), \
                 {} digest agreements, {} divergences, \
                 agreement gate: {}, recall gate: {}, adaptive recall gate: {}, \
                 gate met: {}",
                b.seeds,
                b.cells,
                b.reproduced,
                b.recall * 100.0,
                b.recall_hits,
                b.adaptive_recall * 100.0,
                b.adaptive_recall_hits,
                b.digest_agreements,
                b.divergences.len(),
                b.meets_agreement_gate,
                b.meets_recall_gate,
                b.meets_adaptive_recall_gate,
                b.meets_corpus_gate
            );
            for d in &b.divergences {
                eprintln!(
                    "fuzz: divergence seed {} ({}, {}): shrunk to noise {:.2} filler {}{}",
                    d.seed,
                    d.name,
                    d.kind,
                    d.shrunk.noise_scale,
                    d.shrunk.max_filler,
                    d.reproducer_path
                        .as_deref()
                        .map(|p| format!(" -> {p}"))
                        .unwrap_or_default()
                );
            }
            return;
        }
        "all" => {
            table2(scale, &exec, &model, prune, causality);
            let rows = experiments::table3_on_levels(scale, &exec, prune, causality);
            println!("{}", experiments::render_table3(&rows, &model));
            let avg: f64 =
                rows.iter().map(|r| r.chain_races() as f64).sum::<f64>() / rows.len() as f64;
            println!("average chain length: {avg:.1} (paper: 3.0)\n");
            print_conciseness(&rows);
            comparison(scale.min(0.1), samples);
            ablations(scale.min(0.05));
            fig5();
            fig6();
            fig7();
            fig9();
            extensions();
        }
        other => {
            usage_exit(&format!("unknown subcommand {other:?}"));
        }
    }
    println!("{}", experiments::render_exec_stats(&exec.stats()));
    if let Some(journal) = &journal {
        journal.flush();
        println!("{}", experiments::render_journal_stats(&journal.stats()));
    }
}

fn table2(
    scale: f64,
    exec: &Arc<Executor>,
    model: &CostModel,
    prune: Option<aitia::lifs::PruneLevel>,
    causality: aitia::CausalityLevel,
) {
    let rows = experiments::table2_on_levels(scale, exec, prune, causality);
    println!("{}", experiments::render_table2(&rows, model));
    let amb: Vec<&str> = rows
        .iter()
        .filter(|r| !r.result.ambiguous().is_empty())
        .map(|r| r.id)
        .collect();
    println!("ambiguity cases: {amb:?} (paper: [\"CVE-2016-10200\"])\n");
    println!("{}", experiments::render_ca_stats(&rows));
}

fn table3(
    scale: f64,
    exec: &Arc<Executor>,
    model: &CostModel,
    prune: Option<aitia::lifs::PruneLevel>,
    causality: aitia::CausalityLevel,
) {
    let rows = experiments::table3_on_levels(scale, exec, prune, causality);
    println!("{}", experiments::render_table3(&rows, model));
    let avg: f64 = rows.iter().map(|r| r.chain_races() as f64).sum::<f64>() / rows.len() as f64;
    println!("average chain length: {avg:.1} (paper: 3.0)\n");
    println!("{}", experiments::render_ca_stats(&rows));
}

fn print_conciseness(rows: &[aitia_bench::experiments::BugOutcome]) {
    let s = experiments::conciseness_summary(rows);
    println!("§5.2 conciseness (measured | paper)");
    println!(
        "  memory-accessing instructions: avg {:.1} range {}..{} | avg 9592.8 range 189..20090",
        s.avg_mem, s.mem_range.0, s.mem_range.1
    );
    println!(
        "  individual data races:         avg {:.1} range {}..{}   | avg 108.4 range 5..322",
        s.avg_races, s.race_range.0, s.race_range.1
    );
    println!(
        "  races in causality chain:      avg {:.1}              | avg 3.0",
        s.avg_chain
    );
    println!(
        "  benign races inside chains:    {}                  | 0\n",
        s.benign_in_chains
    );
}

fn comparison(scale: f64, samples: usize) {
    let rows = experiments::comparison(scale, samples);
    println!("{}", experiments::render_comparison(&rows));
}

fn ablations(scale: f64) {
    let rows = experiments::ablations(scale);
    println!("{}", experiments::render_ablations(&rows));
}

fn fig5() {
    let prog = Arc::new(corpus::figures::fig5());
    let out = Lifs::new(Arc::clone(&prog), LifsConfig::default()).search();
    println!("Figure 5 — LIFS search tree walkthrough");
    print!("{}", out.tree.render(&prog));
    println!(
        "failure reproduced at interleaving count {} after {} schedules\n",
        out.stats.interleaving_count, out.stats.schedules_executed
    );
}

fn fig6() {
    let bug = corpus::cves()
        .into_iter()
        .find(|b| b.id == "CVE-2017-15649")
        .expect("15649 in corpus");
    let prog = bug.program(corpus::noise::NoiseSpec::silent());
    let run = Lifs::new(Arc::clone(&prog), bug.lifs_config())
        .search()
        .failing
        .expect("reproduces");
    let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
    println!("Figure 6 — Causality Analysis of CVE-2017-15649");
    println!(
        "failure-causing sequence ({} steps), races tested backward:",
        run.trace.len()
    );
    for t in &res.tested {
        let (f, s) = t.race.key();
        println!(
            "  flip {} ⇒ {:<6} → {:?}",
            prog.instr_name(f),
            prog.instr_name(s),
            t.verdict
        );
    }
    println!(
        "chain: {}\n       (paper: (A2⇒B11 ∧ B2⇒A6) → A6⇒B12 → B17⇒A12 → BUG_ON())\n",
        res.chain
    );
}

fn fig7() {
    for (name, prog) in [
        ("ambiguous", corpus::figures::fig7_ambiguous()),
        ("decidable", corpus::figures::fig7_clear()),
    ] {
        let prog = Arc::new(prog);
        let run = Lifs::new(Arc::clone(&prog), LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        println!(
            "Figure 7 ({name}): chain {} | ambiguous races: {}",
            res.chain,
            res.ambiguous().len()
        );
    }
    println!();
}

fn extensions() {
    println!("Extensions beyond the paper (§4.6 future work and substrate depth)");
    // Hardware-IRQ injection.
    let prog = Arc::new(corpus::figures::irq_scenario());
    let out = Lifs::new(Arc::clone(&prog), LifsConfig::default()).search();
    let run = out.failing.expect("irq scenario reproduces");
    let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
    println!(
        "  IRQ injection: {} → chain {}",
        run.failure.kind, res.chain
    );
    // RCU grace periods.
    let safe = Lifs::new(
        Arc::new(corpus::figures::rcu_scenario(true)),
        LifsConfig::default(),
    )
    .search();
    let unsafe_ = Lifs::new(
        Arc::new(corpus::figures::rcu_scenario(false)),
        LifsConfig::default(),
    )
    .search();
    println!(
        "  RCU grace period: protected reader {} | unprotected reader {}",
        if safe.failing.is_none() {
            "safe (no failure exists)".to_string()
        } else {
            "FAILED?".to_string()
        },
        unsafe_
            .failing
            .map(|r| r.failure.kind.to_string())
            .unwrap_or_else(|| "no failure".into())
    );
    // ABBA deadlock as a hung task.
    let run = Lifs::new(
        Arc::new(corpus::figures::abba_deadlock_scenario()),
        LifsConfig::default(),
    )
    .search()
    .failing
    .expect("deadlock reproduces");
    let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
    println!(
        "  ABBA deadlock: {} → chain {}
",
        run.failure.kind, res.chain
    );
}

fn fig9() {
    let bug = corpus::syzkaller()
        .into_iter()
        .find(|b| b.id == "#4")
        .expect("#4 in corpus");
    let prog = bug.program(corpus::noise::NoiseSpec::silent());
    let run = Lifs::new(Arc::clone(&prog), bug.lifs_config())
        .search()
        .failing
        .expect("reproduces");
    let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
    println!("Figure 9 — the irqfd case study (bug #4)");
    println!("{}", aitia::report::render(&prog, &run, &res));
}
