//! Diagnose one corpus bug end to end and print the developer-facing report.
//!
//! ```text
//! cargo run --release -p aitia-bench --bin diagnose -- CVE-2017-15649
//! cargo run --release -p aitia-bench --bin diagnose -- "#4" --scale 0.2
//! cargo run --release -p aitia-bench --bin diagnose -- --list
//! ```

use aitia::{
    causality::{
        CausalityAnalysis,
        CausalityConfig, //
    },
    lifs::Lifs,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id = None;
    let mut scale = 0.2f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a number");
            }
            "--list" => {
                for bug in corpus::all_bugs() {
                    println!("{:<18} {:<14} {}", bug.id, bug.subsystem, bug.bug_type);
                }
                return;
            }
            other => id = Some(other.to_string()),
        }
        i += 1;
    }
    let Some(id) = id else {
        eprintln!("usage: diagnose <bug-id> [--scale f] | --list");
        std::process::exit(2);
    };
    let Some(bug) = corpus::all_bugs().into_iter().find(|b| b.id == id) else {
        eprintln!("unknown bug {id:?}; try --list");
        std::process::exit(2);
    };
    println!("{}\n", bug.doc);
    // The modeled Syzkaller input.
    let history = bug.history();
    println!("{}", khist::ftrace::render(&history));
    let n_slices = khist::slices(&history).len();
    println!("slicing: {n_slices} candidate slices\n");
    // Reproduce + diagnose.
    let prog = bug.program_scaled(scale);
    let out = Lifs::new(prog.clone(), bug.lifs_config()).search();
    let Some(run) = out.failing else {
        eprintln!("did not reproduce at scale {scale}");
        std::process::exit(1);
    };
    println!(
        "LIFS: {} schedules, interleaving count {}, pruned {} (non-conflicting) + {} (equivalent)",
        out.stats.schedules_executed,
        out.stats.interleaving_count,
        out.stats.pruned_nonconflicting,
        out.stats.pruned_equivalent
    );
    let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
    println!("{}", aitia::report::render(&prog, &run, &res));
}
