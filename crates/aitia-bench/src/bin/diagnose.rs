//! Diagnose one corpus bug end to end and print the developer-facing report.
//!
//! ```text
//! cargo run --release -p aitia-bench --bin diagnose -- CVE-2017-15649
//! cargo run --release -p aitia-bench --bin diagnose -- "#4" --scale 0.2
//! cargo run --release -p aitia-bench --bin diagnose -- --list
//! ```
//!
//! The diagnosis runs through the crash-safe campaign driver
//! ([`aitia::Campaign`]): `--journal` makes every conclusive schedule
//! execution durable so a killed run resumes at zero VM cost, and
//! `--deadline-s` bounds the campaign's wall clock, degrading gracefully to
//! a partial diagnosis (exit 0) instead of running forever.
//!
//! The report goes to stdout; statistics and progress go to stderr, so the
//! stdout of a resumed campaign diffs clean against an uninterrupted one.

use aitia::{
    manager::ManagerConfig,
    Campaign,
    CampaignOutcome, //
};

const USAGE: &str = "usage: diagnose <bug-id> [FLAGS] | --list

arguments:
  <bug-id>              corpus bug (CVE id or Syzkaller #n); see --list

flags:
  --list                print the corpus and exit
  --scale <float>       benign-race noise scale, finite and positive
                        (default 0.2)
  --vms <int>           VM-pool worker count, at least 1 (default 8)
  --prune-level <level> LIFS pruning: off, conflict or dpor (default:
                        the bug's calibrated config, normally conflict)
  --causality-level <level>
                        causal intervention strategy: exhaustive (flip
                        every race) or adaptive (static benign proofs +
                        information-gain flip ordering); verdicts and
                        chains are identical at both levels (default
                        exhaustive)
  --journal <path>      append conclusive runs to a durable journal and
                        replay it on startup (kill-and-resume)
  --deadline-s <float>  wall-clock budget in seconds, finite and positive;
                        on expiry the diagnosis degrades to best-so-far
                        (partial) results and still exits 0
  --report-only         print only the diagnosis report on stdout (no
                        input preamble), so the output diffs byte-for-byte
                        against a campaignd result file
  --backend <name>      execution backend: ksim (default) or kvm; kvm
                        needs a build with --features kvm and /dev/kvm
  -h | --help           this message

exit status: 0 = diagnosed (complete or partial), 1 = did not reproduce,
2 = usage error";

/// Prints the usage message (prefixed by `msg`) and exits with status 2.
fn usage_exit(msg: &str) -> ! {
    eprintln!("diagnose: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Parses the value of flag `flag` at `args[*i + 1]`, advancing `*i`.
fn flag_value<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    let Some(raw) = args.get(*i) else {
        usage_exit(&format!("{flag} requires a value"));
    };
    raw.parse()
        .unwrap_or_else(|_| usage_exit(&format!("{flag}: invalid value {raw:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut scale = 0.2f64;
    let mut vms = 8usize;
    let mut prune: Option<aitia::lifs::PruneLevel> = None;
    let mut causality_level: Option<aitia::CausalityLevel> = None;
    let mut journal: Option<String> = None;
    let mut deadline_s: Option<f64> = None;
    let mut report_only = false;
    let mut backend = aitia::BackendKind::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => scale = flag_value(&args, &mut i, "--scale"),
            "--vms" => vms = flag_value(&args, &mut i, "--vms"),
            "--prune-level" => prune = Some(flag_value(&args, &mut i, "--prune-level")),
            "--causality-level" => {
                causality_level = Some(flag_value(&args, &mut i, "--causality-level"));
            }
            "--journal" => journal = Some(flag_value(&args, &mut i, "--journal")),
            "--deadline-s" => deadline_s = Some(flag_value(&args, &mut i, "--deadline-s")),
            "--report-only" => report_only = true,
            "--backend" => backend = flag_value(&args, &mut i, "--backend"),
            "--list" => {
                for bug in corpus::all_bugs() {
                    println!("{:<18} {:<14} {}", bug.id, bug.subsystem, bug.bug_type);
                }
                return;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => {
                usage_exit(&format!("unknown flag {other:?}"));
            }
            other => {
                if let Some(prev) = &id {
                    usage_exit(&format!("multiple bug ids given ({prev:?} and {other:?})"));
                }
                id = Some(other.to_string());
            }
        }
        i += 1;
    }
    if !(scale.is_finite() && scale > 0.0) {
        usage_exit("--scale must be a finite number greater than 0");
    }
    if vms == 0 {
        usage_exit("--vms must be at least 1 (there is no zero-VM pool)");
    }
    if let Some(d) = deadline_s {
        if !(d.is_finite() && d > 0.0) {
            usage_exit("--deadline-s must be a finite number greater than 0");
        }
    }
    if let Err(why) = backend.available() {
        usage_exit(&format!("--backend {backend}: {why}"));
    }
    let Some(id) = id else {
        usage_exit("a bug id is required");
    };
    let Some(bug) = corpus::all_bugs().into_iter().find(|b| b.id == id) else {
        usage_exit(&format!("unknown bug {id:?}; try --list"));
    };
    if !report_only {
        println!("{}\n", bug.doc);
        // The modeled Syzkaller input.
        let history = bug.history();
        println!("{}", khist::ftrace::render(&history));
        let n_slices = khist::slices(&history).len();
        println!("slicing: {n_slices} candidate slices\n");
    }

    // Reproduce + diagnose through the crash-safe campaign driver.
    let prog = bug.program_scaled(scale);
    let mut lifs = bug.lifs_config();
    if let Some(prune) = prune {
        lifs.prune = prune;
    }
    let mut config = ManagerConfig {
        vms,
        lifs,
        wall_deadline_s: deadline_s,
        backend,
        ..ManagerConfig::default()
    };
    if let Some(level) = causality_level {
        config.causality.level = level;
    }
    let campaign = match &journal {
        Some(path) => Campaign::with_journal_path(config, path),
        None => Campaign::new(config),
    };
    let outcome = campaign.diagnose_program(prog.clone());

    if let Some(js) = campaign.journal_stats() {
        eprintln!(
            "journal: {} replayed, {} appended, {} torn-tail truncations",
            js.records_replayed, js.records_appended, js.torn_tail_truncations
        );
    }
    let Some(d) = outcome.diagnosis() else {
        if outcome.deadline_fired() {
            eprintln!("did not reproduce at scale {scale} before the deadline expired");
        } else {
            eprintln!("did not reproduce at scale {scale}");
        }
        std::process::exit(1);
    };
    eprintln!(
        "LIFS: {} schedules, interleaving count {}, pruned {} (non-conflicting) + \
         {} (equivalent) + {} (sleep set) + {} (persistent set)",
        d.lifs_stats.schedules_executed,
        d.lifs_stats.interleaving_count,
        d.lifs_stats.pruned_nonconflicting,
        d.lifs_stats.pruned_equivalent,
        d.lifs_stats.pruned_sleep_set,
        d.lifs_stats.pruned_persistent
    );
    eprintln!(
        "causality: {} flip schedules, {} skipped by static proof, \
         {} submitted out of canonical order, {:.1}s simulated time saved",
        d.result.stats.schedules_executed,
        d.result.stats.flips_skipped_static,
        d.result.stats.flips_reordered,
        d.result.stats.sim_time_saved_s
    );
    if let CampaignOutcome::Partial(p) = &outcome {
        eprintln!(
            "deadline expired: partial diagnosis with {} unverified race(s)",
            p.unverified
        );
    }
    println!("{}", aitia::report::render(&prog, &d.failing, &d.result));
}
