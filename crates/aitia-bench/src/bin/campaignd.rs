//! `campaignd` — the supervised multi-campaign diagnosis daemon.
//!
//! ```text
//! # start the daemon over a state directory (drain mode exits when idle)
//! cargo run --release -p aitia-bench --bin campaignd -- run --dir /tmp/cd --drain
//!
//! # submit jobs from another process
//! cargo run --release -p aitia-bench --bin campaignd -- \
//!     submit --dir /tmp/cd cve:CVE-2017-15649:0.05 gen:42
//!
//! # observe lifecycle states and counters
//! cargo run --release -p aitia-bench --bin campaignd -- status --dir /tmp/cd
//! ```
//!
//! Jobs stream into a durable CRC-framed queue (`queue.wal`) and run as
//! concurrent campaigns against one fair-shared VM pool and one shared
//! memo/snapshot substrate. Panics are supervised (re-queue with jittered
//! backoff, dead-letter after `--max-faults`), every lifecycle step is a
//! fsynced queue record, and each campaign journals its schedule
//! executions — SIGKILL the daemon at any point, restart it, and every
//! queued or running campaign resumes to a bit-identical diagnosis.
//! Results land in `results/job-<id>.report.txt`, byte-identical to
//! `diagnose <bug> --report-only` stdout; lifecycle and counters are in
//! `status.json`.
//!
//! Payloads are resolved against the bug corpus:
//! `cve:<bug-id>:<scale>` (hand-built corpus bug at a noise scale) or
//! `gen:<seed>[:<noise>[:<filler>]]` (generated bug).

use aitia::server::{
    CampaignServer,
    JobQueue,
    RetryBackoff,
    ServerConfig,
    SubmitError, //
};
use aitia_bench::experiments::CorpusJobResolver;
use std::sync::Arc;

const USAGE: &str = "usage: campaignd <run|submit|status> --dir <dir> [FLAGS] [payload...]

subcommands:
  run                   start the daemon over the state directory,
                        recovering any queued or interrupted jobs
  submit                append job payloads to the queue (idempotent by
                        payload; works while a daemon is running)
  status                print status.json (or fold the queue when no
                        daemon has written one yet)

payloads (submit):
  cve:<bug-id>:<scale>  corpus bug at a benign-noise scale,
                        e.g. cve:CVE-2017-15649:0.05
  gen:<seed>[:<noise>[:<filler>]]
                        generated bug, e.g. gen:42 or gen:42:0.5:1

flags:
  --dir <path>          state directory (queue, journals, results,
                        quarantine, status); required
  --max-inflight <int>  concurrent campaigns, at least 1 (default 4)
  --total-vms <int>     VM slots fair-shared across campaigns, at least 1
                        (default 8)
  --max-queued <int>    backpressure bound on non-terminal jobs, at
                        least 1 (default 1024)
  --max-faults <int>    supervisor faults before dead-letter, at least 1
                        (default 3)
  --backoff-base-ms <int>
                        first-retry backoff, at least 1 ms (default 50)
  --backoff-max-ms <int>
                        backoff ceiling, at least the base (default 5000)
  --backoff-seed <int>  jitter seed (default 0xA17A)
  --poll-ms <int>       queue-file poll interval for foreign submits, at
                        least 1 ms (default 50)
  --wall-deadline-s <float>
                        per-campaign wall budget, finite and positive;
                        on expiry the diagnosis degrades to partial
  --sim-deadline-s <float>
                        per-campaign simulated-time budget, finite and
                        positive
  --fault-rate <int>    injected VM fault rate in permille, 0..=1000
                        (default 0: off)
  --fault-seed <int>    VM fault injection seed (default 0)
  --backend <name>      execution backend for every campaign: ksim
                        (default) or kvm; kvm needs a build with
                        --features kvm and /dev/kvm
  --drain               exit once every job is terminal (batch mode)
  -h | --help           this message

exit status (run): 0 = drained or stopped cleanly
exit status (submit): 0 = all accepted, 1 = rejected (queue full)
2 = usage error on any subcommand";

/// Prints the usage message (prefixed by `msg`) and exits with status 2.
fn usage_exit(msg: &str) -> ! {
    eprintln!("campaignd: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Parses the value of flag `flag` at `args[*i + 1]`, advancing `*i`.
fn flag_value<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    let Some(raw) = args.get(*i) else {
        usage_exit(&format!("{flag} requires a value"));
    };
    raw.parse()
        .unwrap_or_else(|_| usage_exit(&format!("{flag}: invalid value {raw:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        usage_exit("a subcommand is required");
    };
    if matches!(cmd, "--help" | "-h") {
        println!("{USAGE}");
        return;
    }
    if !matches!(cmd, "run" | "submit" | "status") {
        usage_exit(&format!("unknown subcommand {cmd:?}"));
    }
    let mut dir: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut backoff = RetryBackoff::default();
    let mut fault_rate = 0u32;
    let mut fault_seed = 0u64;
    let mut payloads: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => dir = Some(flag_value(&args, &mut i, "--dir")),
            "--max-inflight" => config.max_inflight = flag_value(&args, &mut i, "--max-inflight"),
            "--total-vms" => config.total_vms = flag_value(&args, &mut i, "--total-vms"),
            "--max-queued" => config.max_queued = flag_value(&args, &mut i, "--max-queued"),
            "--max-faults" => config.max_faults = flag_value(&args, &mut i, "--max-faults"),
            "--backoff-base-ms" => {
                backoff.base_ms = flag_value(&args, &mut i, "--backoff-base-ms");
            }
            "--backoff-max-ms" => backoff.max_ms = flag_value(&args, &mut i, "--backoff-max-ms"),
            "--backoff-seed" => backoff.seed = flag_value(&args, &mut i, "--backoff-seed"),
            "--poll-ms" => config.poll_ms = flag_value(&args, &mut i, "--poll-ms"),
            "--wall-deadline-s" => {
                config.wall_deadline_s = Some(flag_value(&args, &mut i, "--wall-deadline-s"));
            }
            "--sim-deadline-s" => {
                config.sim_deadline_s = Some(flag_value(&args, &mut i, "--sim-deadline-s"));
            }
            "--fault-rate" => fault_rate = flag_value(&args, &mut i, "--fault-rate"),
            "--fault-seed" => fault_seed = flag_value(&args, &mut i, "--fault-seed"),
            "--backend" => config.backend = flag_value(&args, &mut i, "--backend"),
            "--drain" => config.drain = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => usage_exit(&format!("unknown flag {other:?}")),
            other => payloads.push(other.to_string()),
        }
        i += 1;
    }
    let Some(dir) = dir else {
        usage_exit("--dir is required");
    };
    config.dir = dir.into();
    config.backoff = backoff;
    if fault_rate > 1000 {
        usage_exit("--fault-rate must be at most 1000 permille");
    }
    if let Err(e) = config.validate() {
        usage_exit(&e);
    }

    match cmd {
        "run" => {
            if !payloads.is_empty() {
                usage_exit("run takes no payloads; use the submit subcommand");
            }
            let resolver = CorpusJobResolver {
                fault: (fault_rate > 0).then(|| aitia::FaultInjection {
                    seed: fault_seed,
                    rate_permille: fault_rate,
                    ..aitia::FaultInjection::default()
                }),
            };
            let server = match CampaignServer::open(config, Arc::new(resolver)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("campaignd: cannot open server state: {e}");
                    std::process::exit(1);
                }
            };
            let recovered = server.stats();
            if recovered.resumed > 0 {
                eprintln!(
                    "campaignd: recovered {} interrupted campaign(s) from the queue",
                    recovered.resumed
                );
            }
            let stats = server.run();
            eprintln!(
                "campaignd: {} terminal ({} complete, {} partial, {} no-repro, \
                 {} dead-lettered), {} supervisor fault(s), {} retried",
                stats.terminal(),
                stats.completed,
                stats.partial,
                stats.no_reproduction,
                stats.dead_lettered,
                stats.supervisor_faults,
                stats.retried
            );
        }
        "submit" => {
            if payloads.is_empty() {
                usage_exit("submit requires at least one payload");
            }
            let queue = match JobQueue::open(&config.dir) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("campaignd: cannot open queue: {e}");
                    std::process::exit(1);
                }
            };
            let mut rejected = false;
            for payload in &payloads {
                match queue.submit(payload, config.max_queued) {
                    Ok(id) => println!("job {id} {payload}"),
                    Err(SubmitError::Full { queued, max }) => {
                        eprintln!(
                            "campaignd: {payload}: queue full ({queued} non-terminal \
                             jobs at the bound of {max})"
                        );
                        rejected = true;
                    }
                    Err(SubmitError::Io(e)) => {
                        eprintln!("campaignd: {payload}: {e}");
                        rejected = true;
                    }
                }
            }
            if rejected {
                std::process::exit(1);
            }
        }
        "status" => {
            if !payloads.is_empty() {
                usage_exit("status takes no payloads");
            }
            let status_path = config.dir.join("status.json");
            if let Ok(json) = std::fs::read_to_string(&status_path) {
                print!("{json}");
                return;
            }
            // No daemon has written a status yet: fold the queue directly.
            let queue = match JobQueue::open(&config.dir) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("campaignd: cannot open queue: {e}");
                    std::process::exit(1);
                }
            };
            match queue.fold() {
                Ok(jobs) => {
                    for job in jobs.values() {
                        println!(
                            "job {} {} {} attempt={}{}",
                            job.id,
                            job.state,
                            job.payload,
                            job.attempt,
                            job.digest
                                .as_deref()
                                .map(|d| format!(" digest={d}"))
                                .unwrap_or_default()
                        );
                    }
                }
                Err(e) => {
                    eprintln!("campaignd: cannot fold queue: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => unreachable!("subcommand validated above"),
    }
}
