//! `aitia-bench` — the experiment harness for the AITIA reproduction.
//!
//! [`experiments`] regenerates every table and figure of the paper's
//! evaluation section; the `report` binary renders them beside the paper's
//! reported numbers, and the Criterion benches under `benches/` time the
//! same entry points.

#![warn(missing_docs)]

pub mod experiments;
