//! Simulated kernel memory with KASAN-style failure detection.
//!
//! The paper instruments the kernel with KASAN (§5) so that memory-safety
//! violations manifest as observable failures. This module provides the
//! equivalent shadow state:
//!
//! * the NULL page faults on any access;
//! * heap allocations carry redzones (`[REDZONE]` bytes on each side) that
//!   fault as slab-out-of-bounds;
//! * freed allocations enter a quarantine — their addresses are never
//!   reused, so later accesses fault as use-after-free (KASAN's quarantine
//!   behaviour, which is what makes UAF deterministic to detect);
//! * a `kfree` of an already-freed object faults as double-free;
//! * unmapped addresses fault as general protection faults;
//! * allocations marked `must_free` that survive the run are leaks.

use crate::addr::{
    region_of,
    Addr,
    Region,
    GLOBALS_BASE,
    GLOBAL_SLOT,
    HEAP_BASE,
    REDZONE, //
};
use crate::failure::FailureKind;
use serde::{
    Deserialize,
    Serialize, //
};
use std::collections::{
    BTreeMap,
    HashMap, //
};
use std::sync::Arc;

/// Lifecycle state of a heap allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocState {
    /// Allocated and usable.
    Live,
    /// Freed and quarantined; any access is a use-after-free.
    Freed,
}

/// One heap allocation (never recycled — KASAN quarantine).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Allocation {
    /// Base address of the usable object memory.
    pub base: Addr,
    /// Usable size in bytes.
    pub size: u64,
    /// Live or freed.
    pub state: AllocState,
    /// Whether the end-of-run leak check applies.
    pub must_free: bool,
    /// Debug tag (static object name, or empty).
    pub tag: String,
}

impl Allocation {
    /// Whether `addr` lies within the usable object memory.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.size
    }

    /// Whether `addr` lies within the allocation's redzones.
    #[must_use]
    pub fn in_redzone(&self, addr: Addr) -> bool {
        let lo = self.base.0.saturating_sub(REDZONE);
        let hi = self.base.0 + self.size + REDZONE;
        (lo..hi).contains(&addr.0) && !self.contains(addr)
    }
}

/// A detected memory fault, mapped 1:1 onto a [`FailureKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFault {
    /// The failure class.
    pub kind: FailureKind,
    /// The faulting address.
    pub addr: Addr,
}

/// log2 of the address span one copy-on-write page covers (512 bytes).
const PAGE_SHIFT: u64 = 9;

/// One copy-on-write memory page: the cells whose addresses fall in the
/// same 512-byte span, sorted by their *exact* (possibly unaligned)
/// address. Two cells at distinct raw addresses are distinct even when
/// they overlap byte-wise — the simulator's cell model is keyed on the
/// address the instruction used, and the page preserves that exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Page(Vec<(u64, u64)>);

impl Page {
    fn get(&self, addr: u64) -> Option<u64> {
        self.0
            .binary_search_by_key(&addr, |&(a, _)| a)
            .ok()
            .map(|i| self.0[i].1)
    }

    fn set(&mut self, addr: u64, val: u64) {
        match self.0.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => self.0[i].1 = val,
            Err(i) => self.0.insert(i, (addr, val)),
        }
    }
}

/// Simulated kernel memory: value cells plus allocator shadow state.
///
/// The representation is structurally shared: cells live in immutable
/// [`Arc`]-backed pages and the allocator shadow map sits behind its own
/// `Arc`, so `Memory::clone` (what [`crate::Engine::snapshot`] does) is a
/// reference-count bump per page rather than a copy of every cell. Writes
/// go through [`Arc::make_mut`] and copy only the one dirty page — O(dirty)
/// snapshots, the copy-on-write discipline a hypervisor gets from its MMU.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Arc<Page>>,
    /// Allocations ordered by base address; bases strictly increase and are
    /// never reused, so a range query finds the allocation nearest an
    /// address.
    allocs: Arc<BTreeMap<u64, Allocation>>,
    next_heap: u64,
    n_globals: u32,
}

impl Memory {
    /// Creates memory with `n_globals` declared global slots.
    #[must_use]
    pub fn new(n_globals: u32) -> Self {
        Memory {
            pages: HashMap::new(),
            allocs: Arc::new(BTreeMap::new()),
            next_heap: HEAP_BASE + REDZONE,
            n_globals,
        }
    }

    fn cell(&self, addr: u64) -> u64 {
        self.pages
            .get(&(addr >> PAGE_SHIFT))
            .and_then(|p| p.get(addr))
            .unwrap_or(0)
    }

    fn set_cell(&mut self, addr: u64, val: u64) {
        let page = self.pages.entry(addr >> PAGE_SHIFT).or_default();
        Arc::make_mut(page).set(addr, val);
    }

    /// A deep, fully-unshared copy: fresh pages and a fresh allocator map.
    /// This is the pre-refactor snapshot cost, kept for the
    /// [`crate::SnapshotMode::Deep`] A/B baseline.
    #[must_use]
    pub fn deep_unshared(&self) -> Self {
        Memory {
            pages: self
                .pages
                .iter()
                .map(|(k, p)| (*k, Arc::new((**p).clone())))
                .collect(),
            allocs: Arc::new((*self.allocs).clone()),
            next_heap: self.next_heap,
            n_globals: self.n_globals,
        }
    }

    /// Allocates `size` bytes (rounded up to 8) of zeroed heap memory,
    /// separated from neighbours by redzones.
    pub fn alloc(&mut self, size: u64, must_free: bool, tag: &str) -> Addr {
        let size = size.max(8).div_ceil(8) * 8;
        let base = Addr(self.next_heap);
        self.next_heap += size + 2 * REDZONE;
        Arc::make_mut(&mut self.allocs).insert(
            base.0,
            Allocation {
                base,
                size,
                state: AllocState::Live,
                must_free,
                tag: tag.to_string(),
            },
        );
        base
    }

    /// Frees the allocation based at exactly `ptr`.
    ///
    /// # Errors
    ///
    /// * [`FailureKind::DoubleFree`] when the object is already freed;
    /// * [`FailureKind::GeneralProtectionFault`] when `ptr` is not the base
    ///   of any allocation (invalid free).
    pub fn free(&mut self, ptr: Addr) -> Result<(), MemFault> {
        // Probe before unsharing: a failing free must not copy the map.
        match self.allocs.get(&ptr.0).map(|a| a.state) {
            Some(AllocState::Live) => {
                Arc::make_mut(&mut self.allocs)
                    .get_mut(&ptr.0)
                    .expect("probed above")
                    .state = AllocState::Freed;
                Ok(())
            }
            Some(AllocState::Freed) => Err(MemFault {
                kind: FailureKind::DoubleFree,
                addr: ptr,
            }),
            None => Err(MemFault {
                kind: FailureKind::GeneralProtectionFault,
                addr: ptr,
            }),
        }
    }

    /// The allocation whose object-or-redzone range covers `addr`, if any.
    #[must_use]
    pub fn alloc_covering(&self, addr: Addr) -> Option<&Allocation> {
        self.allocs
            .range(..=addr.0)
            .next_back()
            .map(|(_, a)| a)
            .filter(|a| a.contains(addr) || a.in_redzone(addr))
            .or_else(|| {
                // The redzone *before* an allocation lies below its base, so
                // also probe the next allocation upward.
                self.allocs
                    .range(addr.0..)
                    .next()
                    .map(|(_, a)| a)
                    .filter(|a| a.in_redzone(addr))
            })
    }

    /// Validates that `addr` may be accessed.
    ///
    /// # Errors
    ///
    /// Returns the KASAN-style fault for the address, if any.
    pub fn check_access(&self, addr: Addr) -> Result<(), MemFault> {
        match region_of(addr) {
            Region::NullPage => Err(MemFault {
                kind: FailureKind::NullDeref,
                addr,
            }),
            Region::Globals => {
                let limit = GLOBALS_BASE + u64::from(self.n_globals) * GLOBAL_SLOT;
                if addr.0 < limit {
                    Ok(())
                } else {
                    Err(MemFault {
                        kind: FailureKind::GeneralProtectionFault,
                        addr,
                    })
                }
            }
            Region::Heap => match self.alloc_covering(addr) {
                Some(a) if a.contains(addr) => match a.state {
                    AllocState::Live => Ok(()),
                    AllocState::Freed => Err(MemFault {
                        kind: FailureKind::UseAfterFree,
                        addr,
                    }),
                },
                Some(a) if a.state == AllocState::Live => Err(MemFault {
                    kind: FailureKind::SlabOutOfBounds,
                    addr,
                }),
                // Redzone of a freed object reads as use-after-free, which
                // is how KASAN reports near-miss accesses to freed slabs.
                Some(_) => Err(MemFault {
                    kind: FailureKind::UseAfterFree,
                    addr,
                }),
                None => Err(MemFault {
                    kind: FailureKind::GeneralProtectionFault,
                    addr,
                }),
            },
            Region::Unmapped => Err(MemFault {
                kind: FailureKind::GeneralProtectionFault,
                addr,
            }),
        }
    }

    /// Reads 8 bytes after access validation. Unwritten mapped cells read 0.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::check_access`] faults.
    pub fn read(&self, addr: Addr) -> Result<u64, MemFault> {
        self.check_access(addr)?;
        Ok(self.cell(addr.0))
    }

    /// Writes 8 bytes after access validation.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::check_access`] faults.
    pub fn write(&mut self, addr: Addr, val: u64) -> Result<(), MemFault> {
        self.check_access(addr)?;
        self.set_cell(addr.0, val);
        Ok(())
    }

    /// Reads without validation (engine-internal, e.g. leak bookkeeping).
    #[must_use]
    pub fn read_raw(&self, addr: Addr) -> u64 {
        self.cell(addr.0)
    }

    /// Writes without validation (engine-internal initialization).
    pub fn write_raw(&mut self, addr: Addr, val: u64) {
        self.set_cell(addr.0, val);
    }

    /// Live `must_free` allocations — non-empty means a memory leak.
    #[must_use]
    pub fn leaked(&self) -> Vec<&Allocation> {
        self.allocs
            .values()
            .filter(|a| a.must_free && a.state == AllocState::Live)
            .collect()
    }

    /// All allocations (for inspection and tests).
    pub fn allocations(&self) -> impl Iterator<Item = &Allocation> {
        self.allocs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_then_rw_roundtrip() {
        let mut m = Memory::new(0);
        let p = m.alloc(16, false, "obj");
        m.write(p, 42).unwrap();
        assert_eq!(m.read(p).unwrap(), 42);
        assert_eq!(m.read(p.offset(8)).unwrap(), 0);
    }

    #[test]
    fn null_deref_detected() {
        let m = Memory::new(0);
        let e = m.read(Addr::NULL).unwrap_err();
        assert_eq!(e.kind, FailureKind::NullDeref);
        let e = m.read(Addr(0x10)).unwrap_err();
        assert_eq!(e.kind, FailureKind::NullDeref);
    }

    #[test]
    fn use_after_free_detected() {
        let mut m = Memory::new(0);
        let p = m.alloc(8, false, "");
        m.free(p).unwrap();
        let e = m.read(p).unwrap_err();
        assert_eq!(e.kind, FailureKind::UseAfterFree);
        let e = m.write(p, 1).unwrap_err();
        assert_eq!(e.kind, FailureKind::UseAfterFree);
    }

    #[test]
    fn double_free_detected() {
        let mut m = Memory::new(0);
        let p = m.alloc(8, false, "");
        m.free(p).unwrap();
        let e = m.free(p).unwrap_err();
        assert_eq!(e.kind, FailureKind::DoubleFree);
    }

    #[test]
    fn invalid_free_is_gpf() {
        let mut m = Memory::new(0);
        let e = m.free(Addr(HEAP_BASE + 4096)).unwrap_err();
        assert_eq!(e.kind, FailureKind::GeneralProtectionFault);
    }

    #[test]
    fn redzone_is_out_of_bounds() {
        let mut m = Memory::new(0);
        let p = m.alloc(16, false, "");
        let e = m.read(p.offset(16)).unwrap_err();
        assert_eq!(e.kind, FailureKind::SlabOutOfBounds);
        let e = m.read(Addr(p.0 - 8)).unwrap_err();
        assert_eq!(e.kind, FailureKind::SlabOutOfBounds);
    }

    #[test]
    fn adjacent_allocations_do_not_overlap() {
        let mut m = Memory::new(0);
        let a = m.alloc(8, false, "a");
        let b = m.alloc(8, false, "b");
        assert!(b.0 >= a.0 + 8 + REDZONE);
        m.write(a, 1).unwrap();
        m.write(b, 2).unwrap();
        assert_eq!(m.read(a).unwrap(), 1);
        assert_eq!(m.read(b).unwrap(), 2);
    }

    #[test]
    fn globals_bounds_checked() {
        let m = Memory::new(2);
        assert!(m.read(Addr(GLOBALS_BASE)).is_ok());
        assert!(m.read(Addr(GLOBALS_BASE + GLOBAL_SLOT)).is_ok());
        let e = m.read(Addr(GLOBALS_BASE + 2 * GLOBAL_SLOT)).unwrap_err();
        assert_eq!(e.kind, FailureKind::GeneralProtectionFault);
    }

    #[test]
    fn unmapped_is_gpf() {
        let m = Memory::new(0);
        let e = m.read(Addr(0x5000)).unwrap_err();
        assert_eq!(e.kind, FailureKind::GeneralProtectionFault);
    }

    #[test]
    fn leak_check_reports_only_must_free_live() {
        let mut m = Memory::new(0);
        let a = m.alloc(8, true, "leaky");
        let _b = m.alloc(8, false, "static");
        let c = m.alloc(8, true, "freed");
        m.free(c).unwrap();
        let leaked = m.leaked();
        assert_eq!(leaked.len(), 1);
        assert_eq!(leaked[0].base, a);
    }

    #[test]
    fn freed_neighbour_redzone_reports_uaf() {
        let mut m = Memory::new(0);
        let p = m.alloc(8, false, "");
        m.free(p).unwrap();
        let e = m.read(p.offset(8)).unwrap_err();
        assert_eq!(e.kind, FailureKind::UseAfterFree);
    }

    #[test]
    fn clone_shares_pages_until_written() {
        let mut m = Memory::new(1);
        let p = m.alloc(16, false, "obj");
        m.write(p, 1).unwrap();
        m.write_raw(Addr(GLOBALS_BASE), 10);
        let snap = m.clone();
        // Same page Arc — the clone copied nothing.
        assert!(Arc::ptr_eq(
            &m.pages[&(p.0 >> PAGE_SHIFT)],
            &snap.pages[&(p.0 >> PAGE_SHIFT)]
        ));
        // Mutating the original must not leak through the shared pages.
        m.write(p, 2).unwrap();
        m.write(p.offset(8), 3).unwrap();
        m.write_raw(Addr(GLOBALS_BASE), 11);
        m.free(p).unwrap();
        assert_eq!(snap.read(p).unwrap(), 1);
        assert_eq!(snap.read(p.offset(8)).unwrap(), 0);
        assert_eq!(snap.read_raw(Addr(GLOBALS_BASE)), 10);
        assert!(snap.allocations().all(|a| a.state == AllocState::Live));
        // And the original really did change.
        assert_eq!(m.read_raw(p), 2);
        assert_eq!(
            m.read(p.offset(8)).unwrap_err().kind,
            FailureKind::UseAfterFree
        );
    }

    #[test]
    fn unaligned_addresses_stay_distinct_cells() {
        // Cells are keyed by the exact address used: overlapping unaligned
        // writes never clobber each other (the seed's HashMap semantics).
        let mut m = Memory::new(0);
        let p = m.alloc(16, false, "");
        m.write(p, 1).unwrap();
        m.write(p.offset(1), 2).unwrap();
        m.write(p.offset(8), 3).unwrap();
        assert_eq!(m.read(p).unwrap(), 1);
        assert_eq!(m.read(p.offset(1)).unwrap(), 2);
        assert_eq!(m.read(p.offset(8)).unwrap(), 3);
    }

    #[test]
    fn deep_unshared_matches_but_shares_nothing() {
        let mut m = Memory::new(0);
        let p = m.alloc(8, false, "x");
        m.write(p, 9).unwrap();
        let d = m.deep_unshared();
        assert_eq!(d.read(p).unwrap(), 9);
        assert!(!Arc::ptr_eq(
            &m.pages[&(p.0 >> PAGE_SHIFT)],
            &d.pages[&(p.0 >> PAGE_SHIFT)]
        ));
        assert!(!Arc::ptr_eq(&m.allocs, &d.allocs));
    }

    #[test]
    fn alloc_size_rounds_up() {
        let mut m = Memory::new(0);
        let p = m.alloc(1, false, "");
        // A 1-byte request still yields an 8-byte slot.
        assert!(m.read(p).is_ok());
        assert!(m.read(p.offset(8)).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Random alloc/free/access sequences never violate the shadow-state
    /// invariants: live objects read/write cleanly, freed objects always
    /// fault as UAF, disjoint allocations never alias, and the leak check
    /// reports exactly the live `must_free` set.
    #[test]
    fn allocator_invariants_hold() {
        let ops = prop::collection::vec((0u8..4, 0usize..12, 1u64..4), 1..60);
        proptest!(ProptestConfig::with_cases(128), |(ops in ops)| {
            let mut m = Memory::new(0);
            let mut allocs: Vec<(Addr, u64, bool, bool)> = Vec::new(); // base, size, must_free, live
            for (op, idx, words) in ops {
                match op {
                    0 => {
                        let base = m.alloc(words * 8, idx % 2 == 0, "t");
                        // No overlap with any prior allocation.
                        for &(b, sz, _, _) in &allocs {
                            prop_assert!(
                                base.0 >= b.0 + sz + crate::addr::REDZONE
                                    || base.0 + words * 8 <= b.0
                            );
                        }
                        allocs.push((base, words * 8, idx % 2 == 0, true));
                    }
                    1 => {
                        let n = allocs.len().max(1);
                        if let Some(entry) = allocs.get_mut(idx % n) {
                            if entry.3 {
                                prop_assert!(m.free(entry.0).is_ok());
                                entry.3 = false;
                            } else {
                                prop_assert_eq!(
                                    m.free(entry.0).unwrap_err().kind,
                                    FailureKind::DoubleFree
                                );
                            }
                        }
                    }
                    2 => {
                        if let Some(&(base, size, _, live)) = allocs.get(idx % allocs.len().max(1)) {
                            let a = base.offset((words * 8) % size);
                            if live {
                                prop_assert!(m.write(a, 7).is_ok());
                                prop_assert_eq!(m.read(a).unwrap(), 7);
                            } else {
                                prop_assert_eq!(
                                    m.read(a).unwrap_err().kind,
                                    FailureKind::UseAfterFree
                                );
                            }
                        }
                    }
                    _ => {
                        // Redzone probes on live allocations fault as OOB.
                        if let Some(&(base, size, _, live)) = allocs.get(idx % allocs.len().max(1)) {
                            if live {
                                prop_assert_eq!(
                                    m.read(base.offset(size)).unwrap_err().kind,
                                    FailureKind::SlabOutOfBounds
                                );
                            }
                        }
                    }
                }
            }
            let expected: Vec<Addr> = allocs
                .iter()
                .filter(|(_, _, mf, live)| *mf && *live)
                .map(|&(b, _, _, _)| b)
                .collect();
            let leaked: Vec<Addr> = m.leaked().iter().map(|a| a.base).collect();
            prop_assert_eq!(leaked, expected);
        });
    }
}
