//! The kernel-code instruction IR.
//!
//! Kernel code paths under diagnosis are modeled as threads of a small,
//! RISC-like instruction set. The IR is deliberately minimal: AITIA's
//! algorithms (LIFS and Causality Analysis) only observe *which instructions
//! access which memory addresses*, *control flow*, and *failures* — so the
//! IR exposes exactly those behaviours, plus the kernel facilities the
//! paper's bugs exercise: spinlock-style locks, kernel linked lists,
//! reference counters, `kmalloc`/`kfree`, `BUG_ON`, and the deferred-work
//! mechanisms (`queue_work`, `call_rcu`, timers) that spawn kernel
//! background threads (paper Figure 4).
//!
//! Conditions and register arithmetic never touch memory: every shared
//! memory access is a distinct [`Instr::Load`], [`Instr::Store`], or
//! read-modify-write instruction, which keeps the conflict model exact.

use crate::addr::GlobalId;
use serde::{
    Deserialize,
    Serialize, //
};

/// A per-thread virtual register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u16);

impl core::fmt::Debug for Reg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a kernel lock object (spinlock/mutex — the distinction does
/// not matter under external scheduling).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LockId(pub u16);

/// Identifier of a static thread program within a [`crate::program::Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadProgId(pub u16);

impl core::fmt::Debug for ThreadProgId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A value operand: an immediate or a register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// An immediate 64-bit constant.
    Const(u64),
    /// The current value of a register.
    Reg(Reg),
}

/// An effective-address expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddrExpr {
    /// The fixed slot of a declared global variable.
    Global(GlobalId),
    /// `*(base + offset)` — a pointer held in a register plus a byte offset.
    Ind {
        /// Register holding the base pointer.
        base: Reg,
        /// Byte offset added to the base.
        offset: u64,
    },
}

/// Comparison operator for [`Cond`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
}

/// A register/immediate condition; never accesses memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cond {
    /// Left-hand operand.
    pub lhs: Operand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand operand.
    pub rhs: Operand,
}

impl Cond {
    /// Evaluates the condition given resolved operand values.
    #[must_use]
    pub fn eval(&self, lhs: u64, rhs: u64) -> bool {
        match self.op {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// Binary ALU operator for [`Instr::Op`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Wrapping multiplication.
    Mul,
}

impl BinOp {
    /// Applies the operator.
    #[must_use]
    pub fn apply(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Mul => lhs.wrapping_mul(rhs),
        }
    }
}

/// One kernel instruction.
///
/// Branch targets are resolved instruction indices within the owning thread
/// program (the builder resolves labels).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `dst = *addr` — an 8-byte shared-memory read.
    Load {
        /// Destination register.
        dst: Reg,
        /// Source address.
        addr: AddrExpr,
    },
    /// `*addr = src` — an 8-byte shared-memory write.
    Store {
        /// Destination address.
        addr: AddrExpr,
        /// Value stored.
        src: Operand,
    },
    /// `*addr += val` as a single read-modify-write step (models the
    /// single-instruction statistics-counter updates that Linux leaves as
    /// benign data races, §2.3). Optionally returns the old value.
    FetchAdd {
        /// Receives the pre-increment value, if present.
        dst: Option<Reg>,
        /// Counter address.
        addr: AddrExpr,
        /// Increment.
        val: Operand,
    },
    /// `dst = src` — register move / immediate load; no memory access.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = lhs op rhs` — register ALU; no memory access.
    Op {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Unconditional branch.
    Jmp {
        /// Target instruction index.
        target: usize,
    },
    /// Conditional branch, taken when `cond` holds.
    JmpIf {
        /// Branch condition (registers/immediates only).
        cond: Cond,
        /// Target instruction index.
        target: usize,
    },
    /// `dst = kmalloc(size)`; `must_free` marks objects whose survival at
    /// run end is a memory leak (Table 3 bug #9).
    Alloc {
        /// Receives the object base pointer.
        dst: Reg,
        /// Object size in bytes.
        size: u64,
        /// Whether an end-of-run leak check applies to this object.
        must_free: bool,
    },
    /// `kfree(ptr)`.
    Free {
        /// Pointer to the allocation base.
        ptr: Operand,
    },
    /// Acquire a kernel lock; blocks while another thread holds it.
    Lock {
        /// The lock object.
        lock: LockId,
    },
    /// Release a kernel lock held by this thread.
    Unlock {
        /// The lock object.
        lock: LockId,
    },
    /// `list_add(item, head)` — read-modify-write of the list head; double
    /// insertion of the same item corrupts the list (§2.1).
    ListAdd {
        /// Address of the list head.
        list: AddrExpr,
        /// Item (pointer value) inserted.
        item: Operand,
    },
    /// `list_del(item, head)` — read-modify-write; deleting an absent item
    /// corrupts the list.
    ListDel {
        /// Address of the list head.
        list: AddrExpr,
        /// Item removed.
        item: Operand,
    },
    /// `dst = list_contains(head, item)` — read of the list head.
    ListContains {
        /// Receives 1 if present, 0 otherwise.
        dst: Reg,
        /// Address of the list head.
        list: AddrExpr,
        /// Item looked up.
        item: Operand,
    },
    /// `dst = list_first_or_null(head)` — read of the list head.
    ListFirst {
        /// Receives the first item, or 0 when empty.
        dst: Reg,
        /// Address of the list head.
        list: AddrExpr,
    },
    /// `refcount_inc(*addr)` — warns when incrementing from zero
    /// (`WARNING: refcount bug`, Table 3 bug #8).
    RefGet {
        /// Address of the refcount word.
        addr: AddrExpr,
    },
    /// `dst = refcount_dec_and_test(*addr)` — warns on underflow; `dst`
    /// (optional) receives 1 when the count reached zero.
    RefPut {
        /// Receives 1 when the count dropped to zero.
        dst: Option<Reg>,
        /// Address of the refcount word.
        addr: AddrExpr,
    },
    /// `BUG_ON(cond)` — assertion failure when `cond` holds.
    BugOn {
        /// Failing condition (registers/immediates only).
        cond: Cond,
        /// Message reported with the failure.
        msg: &'static str,
    },
    /// `queue_work(...)` — spawn a kernel worker thread running `prog`
    /// (paper Figure 4 a/c). The argument register's value, if any, is
    /// copied into the worker's `r0`.
    QueueWork {
        /// Thread program the worker executes.
        prog: ThreadProgId,
        /// Optional argument forwarded to the worker's `r0`.
        arg: Option<Operand>,
    },
    /// `call_rcu(...)` — schedule an RCU callback thread running `prog`
    /// (paper Figure 4 b). The argument, if any, is copied into `r0`.
    CallRcu {
        /// Thread program the callback executes.
        prog: ThreadProgId,
        /// Optional argument forwarded to the callback's `r0`.
        arg: Option<Operand>,
    },
    /// `rcu_read_lock()` — enters an RCU read-side critical section. RCU
    /// callbacks queued by `call_rcu` only become runnable once every
    /// read-side section active at queueing time has ended (the grace
    /// period).
    RcuReadLock,
    /// `rcu_read_unlock()` — leaves the RCU read-side critical section.
    RcuReadUnlock,
    /// No operation (padding / placeholder for non-memory kernel work).
    Nop,
    /// Thread exit.
    Ret,
}

impl Instr {
    /// Whether this instruction statically *may* access shared memory.
    ///
    /// This is the simulator's equivalent of the user agent's disassembly
    /// map (§4.3): given a basic block, AITIA locates the instructions that
    /// can touch memory and treats them as breakpoint candidates.
    #[must_use]
    pub fn may_access_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::FetchAdd { .. }
                | Instr::ListAdd { .. }
                | Instr::ListDel { .. }
                | Instr::ListContains { .. }
                | Instr::ListFirst { .. }
                | Instr::RefGet { .. }
                | Instr::RefPut { .. }
                | Instr::Free { .. }
        )
    }

    /// Whether this instruction is a control-flow branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self, Instr::Jmp { .. } | Instr::JmpIf { .. } | Instr::Ret)
    }
}

/// Source-level metadata attached to each instruction for reporting.
///
/// AITIA reports causality chains "with instruction-level information, such
/// as line numbers in the kernel" (§4.1); this is that information.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstrMeta {
    /// Display name used in the paper's figures (e.g. `"A2"`, `"B11"`).
    pub name: Option<String>,
    /// Enclosing kernel function (e.g. `"fanout_add"`).
    pub func: &'static str,
    /// Source line within the modeled kernel file.
    pub line: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_covers_all_ops() {
        let mk = |op| Cond {
            lhs: Operand::Const(0),
            op,
            rhs: Operand::Const(0),
        };
        assert!(mk(CmpOp::Eq).eval(3, 3));
        assert!(mk(CmpOp::Ne).eval(3, 4));
        assert!(mk(CmpOp::Lt).eval(3, 4));
        assert!(mk(CmpOp::Le).eval(4, 4));
        assert!(mk(CmpOp::Gt).eval(5, 4));
        assert!(mk(CmpOp::Ge).eval(4, 4));
        assert!(!mk(CmpOp::Eq).eval(1, 2));
        assert!(!mk(CmpOp::Lt).eval(4, 4));
    }

    #[test]
    fn binop_wraps() {
        assert_eq!(BinOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(BinOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(BinOp::Mul.apply(u64::MAX, 2), u64::MAX.wrapping_mul(2));
        assert_eq!(BinOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(BinOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn memory_access_classification() {
        let r = Reg(0);
        let g = AddrExpr::Global(crate::addr::GlobalId(0));
        assert!(Instr::Load { dst: r, addr: g }.may_access_memory());
        assert!(Instr::Store {
            addr: g,
            src: Operand::Const(1)
        }
        .may_access_memory());
        assert!(Instr::Free {
            ptr: Operand::Reg(r)
        }
        .may_access_memory());
        assert!(!Instr::Mov {
            dst: r,
            src: Operand::Const(1)
        }
        .may_access_memory());
        assert!(!Instr::Nop.may_access_memory());
        assert!(!Instr::Ret.may_access_memory());
        assert!(!Instr::Lock { lock: LockId(0) }.may_access_memory());
    }

    #[test]
    fn branch_classification() {
        assert!(Instr::Jmp { target: 0 }.is_branch());
        assert!(Instr::Ret.is_branch());
        assert!(!Instr::Nop.is_branch());
    }
}
