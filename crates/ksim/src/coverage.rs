//! Basic-block structure of thread programs (the kcov analogue, §4.3).
//!
//! The paper's user agent registers a kcov callback at the entry of every
//! basic block and then consults a disassembly map to find the
//! memory-accessing instructions within the block. This module computes the
//! same structure statically: block leaders, the block each instruction
//! belongs to, and per-block memory-access candidates.

use crate::{
    instr::Instr,
    program::{
        InstrAddr,
        Program,
        ThreadProg, //
    },
};

/// Identifier of a basic block within one thread program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// Basic-block decomposition of one thread program.
#[derive(Clone, Debug)]
pub struct BlockMap {
    /// `leaders[b]` = instruction index where block `b` starts.
    pub leaders: Vec<usize>,
    /// `block_of[i]` = block containing instruction `i`.
    pub block_of: Vec<BlockId>,
}

impl BlockMap {
    /// Computes basic blocks: leaders are instruction 0, every branch
    /// target, and every instruction following a branch.
    #[must_use]
    pub fn compute(prog: &ThreadProg) -> Self {
        let n = prog.instrs.len();
        let mut is_leader = vec![false; n];
        if n > 0 {
            is_leader[0] = true;
        }
        for (i, ins) in prog.instrs.iter().enumerate() {
            match ins {
                Instr::Jmp { target } | Instr::JmpIf { target, .. } => {
                    if *target < n {
                        is_leader[*target] = true;
                    }
                    if i + 1 < n {
                        is_leader[i + 1] = true;
                    }
                }
                Instr::Ret if i + 1 < n => {
                    is_leader[i + 1] = true;
                }
                _ => {}
            }
        }
        let leaders: Vec<usize> = (0..n).filter(|&i| is_leader[i]).collect();
        let mut block_of = Vec::with_capacity(n);
        let mut cur = 0usize;
        for i in 0..n {
            if cur + 1 < leaders.len() && leaders[cur + 1] == i {
                cur += 1;
            }
            block_of.push(BlockId(cur));
        }
        BlockMap { leaders, block_of }
    }

    /// The block containing instruction `i`.
    #[must_use]
    pub fn block_of(&self, i: usize) -> BlockId {
        self.block_of[i]
    }

    /// Whether instruction `i` is a block leader (a kcov callback point).
    #[must_use]
    pub fn is_leader(&self, i: usize) -> bool {
        self.leaders.binary_search(&i).is_ok()
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.leaders.len()
    }

    /// Whether the program has no blocks (empty program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.leaders.is_empty()
    }
}

/// Program-wide coverage map: one [`BlockMap`] per thread program.
#[derive(Clone, Debug)]
pub struct CoverageMap {
    maps: Vec<BlockMap>,
}

impl CoverageMap {
    /// Computes block maps for every thread program.
    #[must_use]
    pub fn compute(program: &Program) -> Self {
        CoverageMap {
            maps: program.progs.iter().map(BlockMap::compute).collect(),
        }
    }

    /// The block map of one thread program.
    #[must_use]
    pub fn prog(&self, p: crate::instr::ThreadProgId) -> &BlockMap {
        &self.maps[p.0 as usize]
    }

    /// The block containing a static instruction address.
    #[must_use]
    pub fn block_at(&self, at: InstrAddr) -> BlockId {
        self.maps[at.prog.0 as usize].block_of(at.index)
    }

    /// Whether executing `at` enters a new basic block (a kcov event).
    #[must_use]
    pub fn enters_block(&self, at: InstrAddr) -> bool {
        self.maps[at.prog.0 as usize].is_leader(at.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{
        cond_reg,
        ProgramBuilder, //
    };
    use crate::instr::CmpOp;

    #[test]
    fn straight_line_is_one_block() {
        let mut p = ProgramBuilder::new("sl");
        let g = p.global("g", 0);
        {
            let mut a = p.syscall_thread("A", "s");
            a.store_global(g, 1u64);
            a.store_global(g, 2u64);
            a.ret();
        }
        let prog = p.build().unwrap();
        let bm = BlockMap::compute(&prog.progs[0]);
        assert_eq!(bm.len(), 1);
        assert_eq!(bm.block_of(0), bm.block_of(2));
    }

    #[test]
    fn branch_splits_blocks() {
        let mut p = ProgramBuilder::new("br");
        let g = p.global("g", 0);
        {
            let mut a = p.syscall_thread("A", "s");
            let out = a.new_label();
            a.load_global("r0", g); // 0: block 0
            a.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out); // 1: block 0
            a.store_global(g, 1u64); // 2: block 1 (fallthrough leader)
            a.place(out);
            a.ret(); // 3: block 2 (branch target leader)
        }
        let prog = p.build().unwrap();
        let bm = BlockMap::compute(&prog.progs[0]);
        assert_eq!(bm.len(), 3);
        assert!(bm.is_leader(0));
        assert!(bm.is_leader(2));
        assert!(bm.is_leader(3));
        assert_ne!(bm.block_of(1), bm.block_of(2));
        assert_ne!(bm.block_of(2), bm.block_of(3));
    }

    #[test]
    fn coverage_map_spans_programs() {
        let mut p = ProgramBuilder::new("multi");
        {
            let mut a = p.syscall_thread("A", "s");
            a.nop();
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "s");
            b.ret();
        }
        let prog = p.build().unwrap();
        let cm = CoverageMap::compute(&prog);
        use crate::instr::ThreadProgId;
        assert!(cm.enters_block(InstrAddr {
            prog: ThreadProgId(0),
            index: 0
        }));
        assert!(!cm.enters_block(InstrAddr {
            prog: ThreadProgId(0),
            index: 1
        }));
        assert!(cm.enters_block(InstrAddr {
            prog: ThreadProgId(1),
            index: 0
        }));
    }
}
