//! Runtime thread state.

use crate::{
    instr::{
        LockId,
        ThreadProgId, //
    },
    program::ThreadKind,
};
use serde::{
    Deserialize,
    Serialize, //
};

/// Identifier of a runtime thread instance.
///
/// Distinct from [`ThreadProgId`]: a background program can be instantiated
/// several times (e.g. two `queue_work` calls), producing several runtime
/// threads with different `ThreadId`s but the same program.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub u32);

impl core::fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Scheduling status of a runtime thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadStatus {
    /// Can be stepped.
    Runnable,
    /// Waiting to acquire a contended lock; becomes runnable on release.
    Blocked {
        /// The contended lock.
        on: LockId,
    },
    /// An RCU callback waiting for its grace period: every read-side
    /// section active when `call_rcu` ran must end first.
    WaitingGrace,
    /// Executed its final instruction.
    Exited,
    /// Halted by an engine-wide failure (the "kernel crashed").
    Killed,
}

/// One runtime thread: program counter, registers, and status.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Thread {
    /// Runtime identifier.
    pub id: ThreadId,
    /// The static program this thread executes.
    pub prog: ThreadProgId,
    /// Which instantiation of `prog` this is (0 for the first).
    pub occurrence: u32,
    /// Program counter: index of the *next* instruction to execute.
    pub pc: usize,
    /// Virtual register file.
    pub regs: Vec<u64>,
    /// Scheduling status.
    pub status: ThreadStatus,
    /// Execution context kind (copied from the program).
    pub kind: ThreadKind,
    /// The thread that spawned this one (`None` for initial threads).
    pub spawned_by: Option<ThreadId>,
    /// Locks currently held, in acquisition order.
    pub locks_held: Vec<LockId>,
    /// RCU read-side critical-section nesting depth.
    pub rcu_depth: u32,
}

impl Thread {
    /// Creates a fresh thread at pc 0 with zeroed registers.
    #[must_use]
    pub fn new(
        id: ThreadId,
        prog: ThreadProgId,
        occurrence: u32,
        reg_count: u16,
        kind: ThreadKind,
        spawned_by: Option<ThreadId>,
    ) -> Self {
        Thread {
            id,
            prog,
            occurrence,
            pc: 0,
            regs: vec![0; reg_count as usize],
            status: ThreadStatus::Runnable,
            kind,
            spawned_by,
            locks_held: Vec::new(),
            rcu_depth: 0,
        }
    }

    /// Whether the thread can currently be stepped.
    #[must_use]
    pub fn is_runnable(&self) -> bool {
        matches!(self.status, ThreadStatus::Runnable)
    }

    /// Whether the thread has finished (exited or killed).
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self.status, ThreadStatus::Exited | ThreadStatus::Killed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_thread_is_runnable_at_zero() {
        let t = Thread::new(
            ThreadId(3),
            ThreadProgId(1),
            0,
            4,
            ThreadKind::Kworker,
            Some(ThreadId(0)),
        );
        assert!(t.is_runnable());
        assert!(!t.is_done());
        assert_eq!(t.pc, 0);
        assert_eq!(t.regs, vec![0; 4]);
        assert_eq!(t.spawned_by, Some(ThreadId(0)));
    }

    #[test]
    fn status_transitions_reflect_queries() {
        let mut t = Thread::new(
            ThreadId(0),
            ThreadProgId(0),
            0,
            0,
            ThreadKind::Syscall {
                name: "open".into(),
            },
            None,
        );
        t.status = ThreadStatus::Blocked { on: LockId(1) };
        assert!(!t.is_runnable());
        assert!(!t.is_done());
        t.status = ThreadStatus::Exited;
        assert!(t.is_done());
        t.status = ThreadStatus::Killed;
        assert!(t.is_done());
    }
}
