//! The externally-scheduled kernel execution engine.
//!
//! The engine is the simulator's stand-in for AITIA's modified KVM/QEMU
//! hypervisor (§4.3–§4.4): it executes exactly one instruction of one chosen
//! thread per [`Engine::step`] call and reports everything a
//! breakpoint/watchpoint-instrumented hypervisor would observe. *All*
//! scheduling decisions are external — LIFS and Causality Analysis drive the
//! engine through schedules — which gives the instruction-level control the
//! paper obtains with hardware breakpoints, and trivially satisfies the
//! paper's sequential-consistency assumption (§3.2): a given step sequence
//! deterministically reproduces the same execution.
//!
//! Threads that are not scheduled are suspended but remain consistent with
//! in-kernel communication (the trampoline argument of §4.4): lock releases
//! wake blocked waiters, spawned background threads become runnable
//! immediately, and a failure halts every context at once (the kernel
//! crashed).

use crate::{
    addr::Addr,
    events::{
        AccessKind,
        LockEvent,
        MemAccess,
        StepOutcome,
        StepRecord, //
    },
    failure::{
        Failure,
        FailureKind, //
    },
    instr::{
        AddrExpr,
        Instr,
        LockId,
        Operand,
        ThreadProgId, //
    },
    list::Lists,
    memory::{
        MemFault,
        Memory, //
    },
    program::{
        GlobalInit,
        InstrAddr,
        Program, //
    },
    thread::{
        Thread,
        ThreadId,
        ThreadStatus, //
    },
    trace::Trace,
};
use std::{
    collections::HashMap,
    sync::{
        Arc,
        Weak, //
    },
};

/// Errors returned by [`Engine::step`] for invalid scheduling requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The engine has halted (a failure manifested or all threads finished).
    Halted,
    /// No thread with that id exists.
    UnknownThread(ThreadId),
    /// The thread exists but is exited or killed.
    NotRunnable(ThreadId),
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::Halted => write!(f, "engine halted"),
            EngineError::UnknownThread(t) => write!(f, "unknown thread {t:?}"),
            EngineError::NotRunnable(t) => write!(f, "thread {t:?} is not runnable"),
        }
    }
}

impl std::error::Error for EngineError {}

/// How [`Engine::snapshot`] and [`Engine::restore`] represent captured
/// state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Copy-on-write (the default): snapshots share immutable pages, trace
    /// chunks, and side tables with the live engine, so capture and restore
    /// cost O(dirty state), not O(total state).
    #[default]
    Cow,
    /// Deep-clone: every snapshot and restore materializes fully-unshared
    /// copies of memory pages, the trace, and the list table — the
    /// pre-refactor representation's cost, kept as the honest "before"
    /// side of throughput A/B measurements (`report bench-throughput`).
    Deep,
}

/// A restorable engine checkpoint — the simulator's equivalent of reverting
/// a virtual machine's memory contents after a run of LIFS (§4.3).
///
/// The captured state lives behind an [`Arc`], so cloning a snapshot is a
/// reference-count bump. Schedule-prefix caches (the executor layer) hold
/// many snapshots and shuffle them through LRU order; cheap clones keep
/// that bookkeeping free of deep memory copies. Under
/// [`SnapshotMode::Cow`] the captured fields themselves structurally share
/// pages/chunks with the engine that took the snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot(Arc<SnapshotData>);

#[derive(Debug)]
struct SnapshotData {
    mem: Memory,
    lists: Lists,
    threads: Vec<Thread>,
    lock_owner: HashMap<LockId, ThreadId>,
    failure: Option<Failure>,
    trace: Trace,
    spawn_counts: HashMap<ThreadProgId, u32>,
    grace_waiters: Vec<(ThreadId, Vec<ThreadId>)>,
    halted: bool,
}

/// The kernel execution engine for one [`Program`].
#[derive(Clone, Debug)]
pub struct Engine {
    program: Arc<Program>,
    mem: Memory,
    lists: Lists,
    threads: Vec<Thread>,
    lock_owner: HashMap<LockId, ThreadId>,
    failure: Option<Failure>,
    trace: Trace,
    spawn_counts: HashMap<ThreadProgId, u32>,
    static_obj_addrs: Vec<Addr>,
    /// RCU callbacks waiting for a grace period, with the read-side
    /// sections (threads) that must end first.
    grace_waiters: Vec<(ThreadId, Vec<ThreadId>)>,
    halted: bool,
    /// Lifetime reboot count of this "VM". Survives [`Engine::reboot`] and
    /// is deliberately not part of snapshots: restoring a checkpoint
    /// rewinds execution state, not the machine's service history.
    reboots: u64,
    /// Identity of the snapshot the engine currently *is* — set by
    /// [`Engine::restore`], cleared by any mutation ([`Engine::step`],
    /// [`Engine::reboot`], [`Engine::inject_irq`]). While set, restoring
    /// the same snapshot again is a no-op instead of a copy of every
    /// field. A [`Weak`] keeps the identity without pinning the snapshot
    /// payload alive (it pins only the `ArcInner` slot, which is exactly
    /// what makes the pointer comparison ABA-safe).
    last_restored: Option<Weak<SnapshotData>>,
    /// Restores that actually copied state back in. Like `reboots`,
    /// survives reboot and is not part of snapshots (service history, not
    /// state).
    deep_restores: u64,
    /// Snapshot representation; survives [`Engine::reboot`] like the other
    /// machine-level (non-state) configuration.
    snapshot_mode: SnapshotMode,
}

impl Engine {
    /// Boots a fresh engine: allocates static objects, initializes globals,
    /// and spawns the initial syscall threads.
    #[must_use]
    pub fn new(program: Arc<Program>) -> Self {
        let mut mem = Memory::new(program.globals.len() as u32);
        let mut static_obj_addrs = Vec::with_capacity(program.static_objs.len());
        for so in &program.static_objs {
            static_obj_addrs.push(mem.alloc(so.size, false, &so.name));
        }
        for (i, g) in program.globals.iter().enumerate() {
            let val = match g.init {
                GlobalInit::Const(c) => c,
                GlobalInit::StaticPtr(idx) => static_obj_addrs[idx].0,
            };
            mem.write_raw(crate::addr::GlobalId(i as u32).addr(), val);
        }
        let mut threads = Vec::new();
        let mut spawn_counts: HashMap<ThreadProgId, u32> = HashMap::new();
        for &pid in &program.initial {
            let occ = *spawn_counts.entry(pid).and_modify(|c| *c += 1).or_insert(0);
            let tp = program.prog(pid);
            threads.push(Thread::new(
                ThreadId(threads.len() as u32),
                pid,
                occ,
                tp.reg_count,
                tp.kind.clone(),
                None,
            ));
        }
        Engine {
            program,
            mem,
            lists: Lists::new(),
            threads,
            lock_owner: HashMap::new(),
            failure: None,
            trace: Trace::new(),
            spawn_counts,
            static_obj_addrs,
            grace_waiters: Vec::new(),
            halted: false,
            reboots: 0,
            last_restored: None,
            deep_restores: 0,
            snapshot_mode: SnapshotMode::default(),
        }
    }

    /// Reboots the engine to its initial state (the paper's VM reboot after
    /// a failing run).
    pub fn reboot(&mut self) {
        let reboots = self.reboots + 1;
        let deep_restores = self.deep_restores;
        let snapshot_mode = self.snapshot_mode;
        *self = Engine::new(Arc::clone(&self.program));
        self.reboots = reboots;
        self.deep_restores = deep_restores;
        self.snapshot_mode = snapshot_mode;
    }

    /// Selects the snapshot representation (see [`SnapshotMode`]). Machine
    /// configuration, not execution state: it survives [`Engine::reboot`].
    pub fn set_snapshot_mode(&mut self, mode: SnapshotMode) {
        self.snapshot_mode = mode;
    }

    /// The current snapshot representation.
    #[must_use]
    pub fn snapshot_mode(&self) -> SnapshotMode {
        self.snapshot_mode
    }

    /// How many times this engine has been rebooted since boot.
    #[must_use]
    pub fn reboots(&self) -> u64 {
        self.reboots
    }

    /// Restores that actually deep-copied checkpoint state. Restoring the
    /// snapshot the engine is already at (nothing executed since the last
    /// [`Engine::restore`] of the same `Arc`) costs nothing and is not
    /// counted here.
    #[must_use]
    pub fn deep_restores(&self) -> u64 {
        self.deep_restores
    }

    /// The program under execution.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The manifested failure, if any.
    #[must_use]
    pub fn failure(&self) -> Option<&Failure> {
        self.failure.as_ref()
    }

    /// The execution trace so far (total order of executed instructions).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// All runtime threads (including exited ones).
    #[must_use]
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// A runtime thread by id.
    #[must_use]
    pub fn thread(&self, tid: ThreadId) -> Option<&Thread> {
        self.threads.get(tid.0 as usize)
    }

    /// Ids of currently runnable threads, in id order (deterministic).
    #[must_use]
    pub fn runnable(&self) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|t| t.is_runnable())
            .map(|t| t.id)
            .collect()
    }

    /// The runtime thread instantiated `occurrence`-th from `prog`, if any.
    #[must_use]
    pub fn thread_by_prog(&self, prog: ThreadProgId, occurrence: u32) -> Option<ThreadId> {
        self.threads
            .iter()
            .find(|t| t.prog == prog && t.occurrence == occurrence)
            .map(|t| t.id)
    }

    /// Whether every thread has finished (exited or killed).
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.threads.iter().all(Thread::is_done)
    }

    /// Whether the engine can make no progress: no runnable thread, but
    /// blocked threads remain (a deadlock, reported as a hung task by
    /// enforcement layers).
    #[must_use]
    pub fn deadlocked(&self) -> bool {
        !self.halted
            && self.runnable().is_empty()
            && self
                .threads
                .iter()
                .any(|t| matches!(t.status, ThreadStatus::Blocked { .. }))
    }

    /// Whether the engine has halted (failure manifested or finished).
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted || self.all_done()
    }

    /// The static address of the next instruction `tid` would execute.
    ///
    /// Threads *killed* by an engine-wide failure still report their parked
    /// pc — "the instruction the thread would have executed" is exactly
    /// what pending-race detection (Figure 6's `B17 ⇒ A12`) needs. Only
    /// normally exited threads have no next instruction.
    #[must_use]
    pub fn next_instr(&self, tid: ThreadId) -> Option<InstrAddr> {
        let t = self.thread(tid)?;
        if t.status == ThreadStatus::Exited {
            return None;
        }
        Some(InstrAddr {
            prog: t.prog,
            index: t.pc,
        })
    }

    /// The address of the `idx`-th static object.
    #[must_use]
    pub fn static_obj_addr(&self, idx: usize) -> Addr {
        self.static_obj_addrs[idx]
    }

    /// Reads a cell for inspection without an access check.
    #[must_use]
    pub fn peek(&self, addr: Addr) -> u64 {
        self.mem.read_raw(addr)
    }

    /// The list side-table, for inspection.
    #[must_use]
    pub fn lists(&self) -> &Lists {
        &self.lists
    }

    /// The thread currently holding `lock`, if any — what a hypervisor
    /// learns when a suspended thread's lock blocks the running one
    /// (the liveness concern of §3.4).
    #[must_use]
    pub fn lock_holder(&self, lock: LockId) -> Option<ThreadId> {
        self.lock_owner.get(&lock).copied()
    }

    /// Injects a registered hardware-IRQ handler as a new runtime thread —
    /// the §4.6 extension: the hypervisor raises the interrupt at a
    /// scheduling point of its choosing. The injected context carries no
    /// happens-before edge from any kernel instruction (nothing "spawned"
    /// it), so its accesses are concurrent with everything not otherwise
    /// ordered.
    ///
    /// # Errors
    ///
    /// [`EngineError::Halted`] when the engine has halted;
    /// [`EngineError::UnknownThread`] (with a zero id) when `prog` is not a
    /// registered IRQ handler.
    pub fn inject_irq(&mut self, prog: ThreadProgId) -> Result<ThreadId, EngineError> {
        if self.halted {
            return Err(EngineError::Halted);
        }
        if !self.program.irq_handlers.contains(&prog) {
            return Err(EngineError::UnknownThread(ThreadId(u32::MAX)));
        }
        self.last_restored = None;
        Ok(self.spawn(prog, None, ThreadId(u32::MAX)))
    }

    /// Captures a restorable checkpoint.
    ///
    /// Under [`SnapshotMode::Cow`] (the default) every large field is
    /// structurally shared with the live engine — a reference-count bump
    /// per memory page and trace chunk — so capture is O(dirty state).
    /// [`SnapshotMode::Deep`] materializes fully-unshared copies, the
    /// pre-refactor cost model.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let (mem, lists, trace) = match self.snapshot_mode {
            SnapshotMode::Cow => (self.mem.clone(), self.lists.clone(), self.trace.clone()),
            SnapshotMode::Deep => (
                self.mem.deep_unshared(),
                self.lists.deep_unshared(),
                self.trace.deep_unshared(),
            ),
        };
        Snapshot(Arc::new(SnapshotData {
            mem,
            lists,
            threads: self.threads.clone(),
            lock_owner: self.lock_owner.clone(),
            failure: self.failure.clone(),
            trace,
            spawn_counts: self.spawn_counts.clone(),
            grace_waiters: self.grace_waiters.clone(),
            halted: self.halted,
        }))
    }

    /// Restores a checkpoint taken from this engine (same program).
    ///
    /// Restoring the snapshot the engine is *already at* — same `Arc`, no
    /// mutation since the previous restore — is a no-op: shared prefix
    /// caches frequently hand a worker the checkpoint it just resumed
    /// from, and copying every field again would be pure waste.
    pub fn restore(&mut self, s: &Snapshot) {
        if let Some(prev) = &self.last_restored {
            if std::ptr::eq(prev.as_ptr(), Arc::as_ptr(&s.0)) {
                return;
            }
        }
        let d = &*s.0;
        match self.snapshot_mode {
            SnapshotMode::Cow => {
                self.mem = d.mem.clone();
                self.lists = d.lists.clone();
                self.trace = d.trace.clone();
            }
            SnapshotMode::Deep => {
                self.mem = d.mem.deep_unshared();
                self.lists = d.lists.deep_unshared();
                self.trace = d.trace.deep_unshared();
            }
        }
        self.threads = d.threads.clone();
        self.lock_owner = d.lock_owner.clone();
        self.failure = d.failure.clone();
        self.spawn_counts = d.spawn_counts.clone();
        self.grace_waiters = d.grace_waiters.clone();
        self.halted = d.halted;
        self.deep_restores += 1;
        self.last_restored = Some(Arc::downgrade(&s.0));
    }

    fn reg(&self, tid: ThreadId, r: crate::instr::Reg) -> u64 {
        self.threads[tid.0 as usize].regs[r.0 as usize]
    }

    fn set_reg(&mut self, tid: ThreadId, r: crate::instr::Reg, v: u64) {
        self.threads[tid.0 as usize].regs[r.0 as usize] = v;
    }

    fn operand(&self, tid: ThreadId, op: Operand) -> u64 {
        match op {
            Operand::Const(c) => c,
            Operand::Reg(r) => self.reg(tid, r),
        }
    }

    fn addr_of(&self, tid: ThreadId, e: AddrExpr) -> Addr {
        match e {
            AddrExpr::Global(g) => g.addr(),
            AddrExpr::Ind { base, offset } => Addr(self.reg(tid, base)).offset(offset),
        }
    }

    /// Releases grace-period waiters once `reader` leaves its read-side
    /// section (and removes readers that exited without unlocking).
    fn end_grace_for(&mut self, reader: ThreadId) {
        for (cb, readers) in &mut self.grace_waiters {
            readers.retain(|&r| r != reader);
            if readers.is_empty()
                && self.threads[cb.0 as usize].status == ThreadStatus::WaitingGrace
            {
                self.threads[cb.0 as usize].status = ThreadStatus::Runnable;
            }
        }
        self.grace_waiters
            .retain(|(_, readers)| !readers.is_empty());
    }

    fn kill_all(&mut self) {
        for t in &mut self.threads {
            if !t.is_done() {
                t.status = ThreadStatus::Killed;
            }
        }
        self.halted = true;
    }

    fn raise(&mut self, tid: ThreadId, at: InstrAddr, fault: MemFault) {
        self.fail(tid, at, fault.kind, Some(fault.addr), String::new());
    }

    /// Re-enacts the pre-refactor per-step allocation cost when the engine
    /// runs in [`SnapshotMode::Deep`]: the seed engine cloned the fetched
    /// instruction on every step and deep-cloned every record into the
    /// trace. Deep mode pays the same allocations (`black_box` keeps them
    /// from being optimized away), so the `bench-throughput` "before" side
    /// measures the whole substrate delta — stepping *and* snapshotting —
    /// not just the snapshot representation.
    #[inline]
    fn reenact_deep_step_cost(&self, instr: &Instr, record: &StepRecord) {
        if self.snapshot_mode == SnapshotMode::Deep {
            std::hint::black_box(instr.clone());
            std::hint::black_box(record.clone());
        }
    }

    fn fail(
        &mut self,
        tid: ThreadId,
        at: InstrAddr,
        kind: FailureKind,
        addr: Option<Addr>,
        message: String,
    ) {
        self.failure = Some(Failure {
            kind,
            at,
            tid,
            addr,
            message,
        });
        self.kill_all();
    }

    fn spawn(&mut self, prog: ThreadProgId, arg: Option<u64>, by: ThreadId) -> ThreadId {
        let by_opt = if by == ThreadId(u32::MAX) {
            None
        } else {
            Some(by)
        };
        let occ = *self
            .spawn_counts
            .entry(prog)
            .and_modify(|c| *c += 1)
            .or_insert(0);
        let tp = self.program.prog(prog);
        let mut t = Thread::new(
            ThreadId(self.threads.len() as u32),
            prog,
            occ,
            tp.reg_count,
            tp.kind.clone(),
            by_opt,
        );
        if let Some(a) = arg {
            if !t.regs.is_empty() {
                t.regs[0] = a;
            }
        }
        let id = t.id;
        self.threads.push(t);
        id
    }

    /// Executes one instruction of `tid`.
    ///
    /// Memory faults, failed assertions, refcount violations, and list
    /// corruption manifest as a [`StepOutcome::Failed`] step that halts the
    /// engine. A contended `Lock` yields [`StepOutcome::Blocked`] without
    /// executing anything.
    ///
    /// # Errors
    ///
    /// See [`EngineError`]. Scheduling a blocked thread re-attempts its lock
    /// acquisition and is *not* an error (this mirrors a trampolined thread
    /// spinning on `cond_resched()`).
    pub fn step(&mut self, tid: ThreadId) -> Result<StepOutcome, EngineError> {
        if self.halted {
            return Err(EngineError::Halted);
        }
        self.last_restored = None;
        let t = self
            .threads
            .get(tid.0 as usize)
            .ok_or(EngineError::UnknownThread(tid))?;
        match t.status {
            ThreadStatus::Exited | ThreadStatus::Killed | ThreadStatus::WaitingGrace => {
                return Err(EngineError::NotRunnable(tid));
            }
            // A blocked thread retries its `Lock`; runnable proceeds.
            ThreadStatus::Blocked { .. } | ThreadStatus::Runnable => {}
        }
        let prog_id = t.prog;
        let pc = t.pc;
        let at = InstrAddr {
            prog: prog_id,
            index: pc,
        };
        // Fetch by reference: cloning the `Arc<Program>` (one refcount
        // bump) keeps the borrow checker happy across `&mut self` calls
        // without copying the fetched instruction itself.
        let program = Arc::clone(&self.program);
        let instr = &program.prog(prog_id).instrs[pc];

        let mut record = StepRecord {
            seq: self.trace.len(),
            tid,
            at,
            accesses: Vec::new(),
            branch_taken: None,
            lock_event: None,
            locks_held: self.threads[tid.0 as usize].locks_held.clone(),
            spawned: None,
            next_pc: None,
        };
        let mut next_pc = pc + 1;
        let mut exited = false;

        // The record is pushed to the trace exactly once, behind an `Arc`
        // shared with the returned outcome — never deep-cloned.
        macro_rules! fail_step {
            () => {{
                self.reenact_deep_step_cost(instr, &record);
                let rec = Arc::new(record);
                self.trace.push(Arc::clone(&rec));
                return Ok(StepOutcome::Failed(rec));
            }};
        }

        macro_rules! check {
            ($res:expr) => {
                match $res {
                    Ok(v) => v,
                    Err(fault) => {
                        self.raise(tid, at, fault);
                        fail_step!();
                    }
                }
            };
        }

        match instr {
            Instr::Load { dst, addr } => {
                let a = self.addr_of(tid, *addr);
                record.accesses.push(MemAccess {
                    addr: a,
                    kind: AccessKind::Read,
                });
                let v = check!(self.mem.read(a));
                self.set_reg(tid, *dst, v);
            }
            Instr::Store { addr, src } => {
                let a = self.addr_of(tid, *addr);
                let v = self.operand(tid, *src);
                record.accesses.push(MemAccess {
                    addr: a,
                    kind: AccessKind::Write,
                });
                check!(self.mem.write(a, v));
            }
            Instr::FetchAdd { dst, addr, val } => {
                let a = self.addr_of(tid, *addr);
                let inc = self.operand(tid, *val);
                record.accesses.push(MemAccess {
                    addr: a,
                    kind: AccessKind::Rmw,
                });
                let old = check!(self.mem.read(a));
                check!(self.mem.write(a, old.wrapping_add(inc)));
                if let Some(d) = dst {
                    self.set_reg(tid, *d, old);
                }
            }
            Instr::Mov { dst, src } => {
                let v = self.operand(tid, *src);
                self.set_reg(tid, *dst, v);
            }
            Instr::Op { dst, op, lhs, rhs } => {
                let l = self.operand(tid, *lhs);
                let r = self.operand(tid, *rhs);
                self.set_reg(tid, *dst, op.apply(l, r));
            }
            Instr::Jmp { target } => {
                next_pc = *target;
            }
            Instr::JmpIf { cond, target } => {
                let l = self.operand(tid, cond.lhs);
                let r = self.operand(tid, cond.rhs);
                let taken = cond.eval(l, r);
                record.branch_taken = Some(taken);
                if taken {
                    next_pc = *target;
                }
            }
            Instr::Alloc {
                dst,
                size,
                must_free,
            } => {
                let base = self.mem.alloc(*size, *must_free, "");
                self.set_reg(tid, *dst, base.0);
            }
            Instr::Free { ptr } => {
                let base = Addr(self.operand(tid, *ptr));
                // Freeing invalidates the whole object: report a write to
                // every word so races against any field are observable (the
                // kfree/store race of Figure 9).
                if let Some(a) = self.mem.alloc_covering(base) {
                    if a.base == base {
                        let words = a.size / 8;
                        for w in 0..words {
                            record.accesses.push(MemAccess {
                                addr: base.offset(w * 8),
                                kind: AccessKind::Write,
                            });
                        }
                    }
                }
                if record.accesses.is_empty() {
                    record.accesses.push(MemAccess {
                        addr: base,
                        kind: AccessKind::Write,
                    });
                }
                check!(self.mem.free(base));
            }
            Instr::Lock { lock } => {
                let lock = *lock;
                match self.lock_owner.get(&lock).copied() {
                    None => {
                        self.lock_owner.insert(lock, tid);
                        let th = &mut self.threads[tid.0 as usize];
                        th.status = ThreadStatus::Runnable;
                        th.locks_held.push(lock);
                        record.lock_event = Some(LockEvent::Acquired(lock));
                        record.locks_held = th.locks_held.clone();
                    }
                    Some(owner) if owner == tid => {
                        // Self-deadlock on a non-recursive kernel lock.
                        self.fail(
                            tid,
                            at,
                            FailureKind::HungTask,
                            None,
                            format!("recursive acquisition of lock {lock:?}"),
                        );
                        fail_step!();
                    }
                    Some(_) => {
                        self.threads[tid.0 as usize].status = ThreadStatus::Blocked { on: lock };
                        return Ok(StepOutcome::Blocked { on: lock });
                    }
                }
            }
            Instr::Unlock { lock } => {
                let lock = *lock;
                if self.lock_owner.get(&lock) != Some(&tid) {
                    self.fail(
                        tid,
                        at,
                        FailureKind::AssertionViolation,
                        None,
                        format!("unlock of lock {lock:?} not held by {tid:?}"),
                    );
                    fail_step!();
                }
                self.lock_owner.remove(&lock);
                let th = &mut self.threads[tid.0 as usize];
                th.locks_held.retain(|&l| l != lock);
                record.lock_event = Some(LockEvent::Released(lock));
                // Wake every waiter; they re-race for the lock when stepped.
                for t in &mut self.threads {
                    if t.status == (ThreadStatus::Blocked { on: lock }) {
                        t.status = ThreadStatus::Runnable;
                    }
                }
            }
            Instr::ListAdd { list, item } => {
                let head = self.addr_of(tid, *list);
                let it = self.operand(tid, *item);
                record.accesses.push(MemAccess {
                    addr: head,
                    kind: AccessKind::Rmw,
                });
                check!(self.mem.check_access(head));
                check!(self.lists.add(head, it));
            }
            Instr::ListDel { list, item } => {
                let head = self.addr_of(tid, *list);
                let it = self.operand(tid, *item);
                record.accesses.push(MemAccess {
                    addr: head,
                    kind: AccessKind::Rmw,
                });
                check!(self.mem.check_access(head));
                check!(self.lists.del(head, it));
            }
            Instr::ListContains { dst, list, item } => {
                let head = self.addr_of(tid, *list);
                let it = self.operand(tid, *item);
                record.accesses.push(MemAccess {
                    addr: head,
                    kind: AccessKind::Read,
                });
                check!(self.mem.check_access(head));
                let v = u64::from(self.lists.contains(head, it));
                self.set_reg(tid, *dst, v);
            }
            Instr::ListFirst { dst, list } => {
                let head = self.addr_of(tid, *list);
                record.accesses.push(MemAccess {
                    addr: head,
                    kind: AccessKind::Read,
                });
                check!(self.mem.check_access(head));
                let v = self.lists.first(head).unwrap_or(0);
                self.set_reg(tid, *dst, v);
            }
            Instr::RefGet { addr } => {
                let a = self.addr_of(tid, *addr);
                record.accesses.push(MemAccess {
                    addr: a,
                    kind: AccessKind::Rmw,
                });
                let old = check!(self.mem.read(a));
                if old == 0 {
                    self.fail(
                        tid,
                        at,
                        FailureKind::RefcountWarning,
                        Some(a),
                        "refcount_inc on zero".into(),
                    );
                    fail_step!();
                }
                check!(self.mem.write(a, old + 1));
            }
            Instr::RefPut { dst, addr } => {
                let a = self.addr_of(tid, *addr);
                record.accesses.push(MemAccess {
                    addr: a,
                    kind: AccessKind::Rmw,
                });
                let old = check!(self.mem.read(a));
                if old == 0 {
                    self.fail(
                        tid,
                        at,
                        FailureKind::RefcountWarning,
                        Some(a),
                        "refcount underflow".into(),
                    );
                    fail_step!();
                }
                check!(self.mem.write(a, old - 1));
                if let Some(d) = dst {
                    self.set_reg(tid, *d, u64::from(old - 1 == 0));
                }
            }
            Instr::BugOn { cond, msg } => {
                let l = self.operand(tid, cond.lhs);
                let r = self.operand(tid, cond.rhs);
                if cond.eval(l, r) {
                    self.fail(
                        tid,
                        at,
                        FailureKind::AssertionViolation,
                        None,
                        (*msg).to_string(),
                    );
                    fail_step!();
                }
            }
            Instr::QueueWork { prog, arg } => {
                let a = arg.map(|op| self.operand(tid, op));
                let id = self.spawn(*prog, a, tid);
                record.spawned = Some(id);
            }
            Instr::CallRcu { prog, arg } => {
                let a = arg.map(|op| self.operand(tid, op));
                let id = self.spawn(*prog, a, tid);
                record.spawned = Some(id);
                // The callback waits for the grace period: it may only run
                // once every read-side section active right now has ended.
                let readers: Vec<ThreadId> = self
                    .threads
                    .iter()
                    .filter(|t| t.rcu_depth > 0)
                    .map(|t| t.id)
                    .collect();
                if !readers.is_empty() {
                    self.threads[id.0 as usize].status = ThreadStatus::WaitingGrace;
                    self.grace_waiters.push((id, readers));
                }
            }
            Instr::RcuReadLock => {
                self.threads[tid.0 as usize].rcu_depth += 1;
            }
            Instr::RcuReadUnlock => {
                let th = &mut self.threads[tid.0 as usize];
                if th.rcu_depth == 0 {
                    self.fail(
                        tid,
                        at,
                        FailureKind::AssertionViolation,
                        None,
                        "rcu_read_unlock without rcu_read_lock".into(),
                    );
                    fail_step!();
                }
                th.rcu_depth -= 1;
                if th.rcu_depth == 0 {
                    let reader = tid;
                    self.end_grace_for(reader);
                }
            }
            Instr::Nop => {}
            Instr::Ret => {
                exited = true;
            }
        }

        let th = &mut self.threads[tid.0 as usize];
        if exited {
            th.status = ThreadStatus::Exited;
            if th.rcu_depth > 0 {
                th.rcu_depth = 0;
                self.end_grace_for(tid);
            }
        } else {
            th.pc = next_pc;
            record.next_pc = Some(next_pc);
        }
        self.reenact_deep_step_cost(instr, &record);
        let rec = Arc::new(record);
        self.trace.push(Arc::clone(&rec));

        if exited {
            // End-of-run leak check once every thread has finished.
            if self.program.check_leaks && self.all_done() && self.failure.is_none() {
                let leaked_base = self.mem.leaked().first().map(|l| l.base);
                if let Some(base) = leaked_base {
                    self.fail(
                        tid,
                        at,
                        FailureKind::MemoryLeak,
                        Some(base),
                        "object never freed".into(),
                    );
                    self.trace.push(Arc::clone(&rec));
                    return Ok(StepOutcome::Failed(rec));
                }
            }
            return Ok(StepOutcome::Exited(rec));
        }
        Ok(StepOutcome::Executed(rec))
    }

    /// Runs `tid` until it exits, blocks, or the engine halts. Returns the
    /// number of instructions executed. Test/bootstrap convenience; AITIA's
    /// enforcement layer drives [`Engine::step`] directly.
    pub fn run_to_completion(&mut self, tid: ThreadId) -> usize {
        let mut n = 0;
        loop {
            if self.halted {
                return n;
            }
            match self.thread(tid) {
                Some(t) if t.is_runnable() => {}
                _ => return n,
            }
            match self.step(tid) {
                Ok(StepOutcome::Executed(_)) => n += 1,
                Ok(StepOutcome::Exited(_)) | Ok(StepOutcome::Failed(_)) => return n + 1,
                Ok(StepOutcome::Blocked { .. }) => return n,
                Err(_) => return n,
            }
        }
    }

    /// Runs every thread serially in spawn order until nothing can run,
    /// revisiting threads that were gated (e.g. an RCU callback waiting for
    /// its grace period) once something else made progress. Returns the
    /// failure, if one manifested. Test convenience.
    pub fn run_all_serial(&mut self) -> Option<Failure> {
        loop {
            if self.halted() {
                break;
            }
            let mut progressed = false;
            for idx in 0..self.threads.len() {
                if self.halted() {
                    break;
                }
                let tid = ThreadId(idx as u32);
                if self.threads[idx].is_runnable() && self.run_to_completion(tid) > 0 {
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        self.failure.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::CmpOp;

    /// Two threads: A stores 1 to `x` and exits; B loads `x`.
    fn two_thread_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("two");
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "write");
            a.store_global(x, 1);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "read");
            b.load_global("r0", x);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn serial_execution_reads_prior_write() {
        let prog = two_thread_program();
        let mut e = Engine::new(Arc::clone(&prog));
        assert!(e.run_all_serial().is_none());
        assert!(e.all_done());
        // B's r0 observed A's store.
        assert_eq!(e.threads()[1].regs[0], 1);
    }

    #[test]
    fn reverse_schedule_reads_zero() {
        let prog = two_thread_program();
        let mut e = Engine::new(prog);
        e.run_to_completion(ThreadId(1));
        e.run_to_completion(ThreadId(0));
        assert_eq!(e.threads()[1].regs[0], 0);
    }

    #[test]
    fn trace_records_total_order() {
        let prog = two_thread_program();
        let mut e = Engine::new(prog);
        e.run_all_serial();
        let seqs: Vec<usize> = e.trace().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..e.trace().len()).collect::<Vec<_>>());
        assert_eq!(e.trace().len(), 4);
    }

    #[test]
    fn reboot_counter_survives_reboot_and_restore() {
        let prog = two_thread_program();
        let mut e = Engine::new(prog);
        assert_eq!(e.reboots(), 0);
        let snap = e.snapshot();
        e.reboot();
        e.reboot();
        assert_eq!(e.reboots(), 2);
        // Restoring rewinds execution state, not the machine's history.
        e.restore(&snap);
        assert_eq!(e.reboots(), 2);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let prog = two_thread_program();
        let mut e = Engine::new(prog);
        let snap = e.snapshot();
        e.run_all_serial();
        assert!(e.all_done());
        e.restore(&snap);
        assert!(!e.all_done());
        assert_eq!(e.trace().len(), 0);
        // Replays identically.
        assert!(e.run_all_serial().is_none());
        assert_eq!(e.threads()[1].regs[0], 1);
    }

    #[test]
    fn redundant_restore_is_a_no_op() {
        let prog = two_thread_program();
        let mut e = Engine::new(prog);
        let snap = e.snapshot();
        e.run_all_serial();
        e.restore(&snap);
        assert_eq!(e.deep_restores(), 1);
        // Nothing executed since: restoring the same snapshot is free.
        e.restore(&snap);
        e.restore(&snap);
        assert_eq!(e.deep_restores(), 1);
        assert_eq!(e.trace().len(), 0);
        // A step invalidates the identity — the next restore deep-copies.
        e.step(ThreadId(0)).unwrap();
        e.restore(&snap);
        assert_eq!(e.deep_restores(), 2);
        assert_eq!(e.trace().len(), 0);
        // A different snapshot always deep-copies.
        e.run_all_serial();
        let done = e.snapshot();
        e.restore(&snap);
        e.restore(&done);
        assert_eq!(e.deep_restores(), 4);
        assert!(e.all_done());
        // Reboot both clears the identity and preserves the counter.
        e.reboot();
        assert_eq!(e.deep_restores(), 4);
        e.restore(&snap);
        assert_eq!(e.deep_restores(), 5);
    }

    #[test]
    fn mutation_after_snapshot_does_not_leak_into_it() {
        // The COW representation shares pages/chunks between the engine
        // and its snapshots; running on must never show through.
        let prog = two_thread_program();
        let mut e = Engine::new(prog);
        e.step(ThreadId(0)).unwrap(); // A: x = 1
        let snap = e.snapshot();
        let trace_at_snap = e.trace().to_vec();
        e.run_all_serial(); // mutates memory, trace, threads
        assert!(e.all_done());
        e.restore(&snap);
        assert_eq!(e.trace().to_vec(), trace_at_snap);
        assert_eq!(e.trace().len(), 1);
        assert!(!e.all_done());
        // Replays identically from the checkpoint.
        assert!(e.run_all_serial().is_none());
        assert_eq!(e.threads()[1].regs[0], 1);
    }

    #[test]
    fn deep_snapshot_mode_is_observationally_identical() {
        let prog = two_thread_program();
        let mut cow = Engine::new(Arc::clone(&prog));
        let mut deep = Engine::new(prog);
        deep.set_snapshot_mode(SnapshotMode::Deep);
        assert_eq!(deep.snapshot_mode(), SnapshotMode::Deep);
        let (sc, sd) = (cow.snapshot(), deep.snapshot());
        cow.run_all_serial();
        deep.run_all_serial();
        assert_eq!(cow.trace().to_vec(), deep.trace().to_vec());
        cow.restore(&sc);
        deep.restore(&sd);
        assert_eq!(cow.trace().len(), 0);
        assert_eq!(deep.trace().len(), 0);
        cow.run_all_serial();
        deep.run_all_serial();
        assert_eq!(cow.trace().to_vec(), deep.trace().to_vec());
        // Mode survives reboot, like the other machine configuration.
        deep.reboot();
        assert_eq!(deep.snapshot_mode(), SnapshotMode::Deep);
    }

    #[test]
    fn null_deref_halts_everything() {
        let mut p = ProgramBuilder::new("null");
        let ptr = p.global("ptr", 0);
        {
            let mut a = p.syscall_thread("A", "deref");
            a.load_global("r0", ptr);
            a.load_ind("r1", "r0", 0); // *NULL
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "noop");
            b.nop();
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        let f = e.run_all_serial().expect("must fail");
        assert_eq!(f.kind, FailureKind::NullDeref);
        // B was killed, not exited.
        assert_eq!(e.threads()[1].status, ThreadStatus::Killed);
        assert!(e.step(ThreadId(1)).is_err());
    }

    #[test]
    fn lock_contention_blocks_and_wakes() {
        let mut p = ProgramBuilder::new("locks");
        let x = p.global("x", 0);
        let l = p.lock("l");
        {
            let mut a = p.syscall_thread("A", "lock");
            a.lock(l);
            a.store_global(x, 1);
            a.unlock(l);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "lock");
            b.lock(l);
            b.store_global(x, 2);
            b.unlock(l);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        // A acquires the lock.
        e.step(ThreadId(0)).unwrap();
        // B blocks.
        match e.step(ThreadId(1)).unwrap() {
            StepOutcome::Blocked { on } => assert_eq!(on, l),
            o => panic!("expected Blocked, got {o:?}"),
        }
        assert!(!e.threads()[1].is_runnable());
        // A stores and releases; B wakes.
        e.step(ThreadId(0)).unwrap();
        e.step(ThreadId(0)).unwrap();
        assert!(e.threads()[1].is_runnable());
        // B can now acquire.
        match e.step(ThreadId(1)).unwrap() {
            StepOutcome::Executed(r) => {
                assert_eq!(r.lock_event, Some(LockEvent::Acquired(l)));
                assert_eq!(r.locks_held, vec![l]);
            }
            o => panic!("expected Executed, got {o:?}"),
        }
    }

    #[test]
    fn recursive_lock_is_hung_task() {
        let mut p = ProgramBuilder::new("rec");
        let l = p.lock("l");
        {
            let mut a = p.syscall_thread("A", "rec");
            a.lock(l);
            a.lock(l);
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        let f = e.run_all_serial().expect("must fail");
        assert_eq!(f.kind, FailureKind::HungTask);
    }

    #[test]
    fn unlock_of_unheld_lock_fails() {
        let mut p = ProgramBuilder::new("bad-unlock");
        let l = p.lock("l");
        {
            let mut a = p.syscall_thread("A", "u");
            a.unlock(l);
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        let f = e.run_all_serial().expect("must fail");
        assert_eq!(f.kind, FailureKind::AssertionViolation);
    }

    #[test]
    fn queue_work_spawns_runnable_worker() {
        let mut p = ProgramBuilder::new("wq");
        let x = p.global("x", 0);
        let worker = {
            let mut w = p.kworker_thread("kworker");
            w.store_global(x, 7);
            w.ret();
            w.id()
        };
        {
            let mut a = p.syscall_thread("A", "q");
            a.queue_work(worker, None);
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        let out = e.step(ThreadId(0)).unwrap();
        let rec = out.record().unwrap();
        let wid = rec.spawned.expect("spawned");
        assert!(e.thread(wid).unwrap().is_runnable());
        e.run_to_completion(wid);
        assert_eq!(e.peek(x.addr()), 7);
    }

    #[test]
    fn worker_receives_argument_in_r0() {
        let mut p = ProgramBuilder::new("wq-arg");
        let out = p.global("out", 0);
        let worker = {
            let mut w = p.kworker_thread("kworker");
            w.store_global_from(out, "r0");
            w.ret();
            w.id()
        };
        {
            let mut a = p.syscall_thread("A", "q");
            a.mov("r1", 99);
            a.queue_work_arg(worker, "r1");
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert_eq!(e.peek(out.addr()), 99);
    }

    #[test]
    fn leak_check_fires_at_end() {
        let mut p = ProgramBuilder::new("leak");
        p.check_leaks(true);
        {
            let mut a = p.syscall_thread("A", "alloc");
            a.alloc_must_free("r0", 8);
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        let f = e.run_all_serial().expect("must leak");
        assert_eq!(f.kind, FailureKind::MemoryLeak);
    }

    #[test]
    fn leak_check_passes_when_freed() {
        let mut p = ProgramBuilder::new("no-leak");
        p.check_leaks(true);
        {
            let mut a = p.syscall_thread("A", "alloc");
            a.alloc_must_free("r0", 8);
            a.free("r0");
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        assert!(e.run_all_serial().is_none());
    }

    #[test]
    fn bug_on_failure_reports_message() {
        let mut p = ProgramBuilder::new("bug");
        {
            let mut a = p.syscall_thread("A", "b");
            a.mov("r0", 1);
            a.bug_on_msg(crate::builder::cond_reg("r0", CmpOp::Eq, 1), "boom");
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        let f = e.run_all_serial().expect("must fail");
        assert_eq!(f.kind, FailureKind::AssertionViolation);
        assert_eq!(f.message, "boom");
    }

    #[test]
    fn free_reports_write_access_to_every_word() {
        let mut p = ProgramBuilder::new("free-acc");
        {
            let mut a = p.syscall_thread("A", "f");
            a.alloc("r0", 24);
            a.free("r0");
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.step(ThreadId(0)).unwrap();
        let out = e.step(ThreadId(0)).unwrap();
        let rec = out.record().unwrap();
        assert_eq!(rec.accesses.len(), 3);
        assert!(rec.accesses.iter().all(|a| a.kind == AccessKind::Write));
    }

    #[test]
    fn reboot_resets_everything() {
        let prog = two_thread_program();
        let mut e = Engine::new(prog);
        e.run_all_serial();
        e.reboot();
        assert_eq!(e.trace().len(), 0);
        assert!(!e.all_done());
        assert_eq!(e.runnable().len(), 2);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut p = ProgramBuilder::new("abba");
        let l1 = p.lock("l1");
        let l2 = p.lock("l2");
        {
            let mut a = p.syscall_thread("A", "ab");
            a.lock(l1);
            a.lock(l2);
            a.unlock(l2);
            a.unlock(l1);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "ba");
            b.lock(l2);
            b.lock(l1);
            b.unlock(l1);
            b.unlock(l2);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        // A takes l1; B takes l2; A blocks on l2; B blocks on l1.
        e.step(ThreadId(0)).unwrap();
        e.step(ThreadId(1)).unwrap();
        assert!(matches!(
            e.step(ThreadId(0)).unwrap(),
            StepOutcome::Blocked { .. }
        ));
        assert!(matches!(
            e.step(ThreadId(1)).unwrap(),
            StepOutcome::Blocked { .. }
        ));
        assert!(e.deadlocked());
    }

    #[test]
    fn refcount_underflow_warns() {
        let mut p = ProgramBuilder::new("ref");
        let cnt = p.global("cnt", 1);
        {
            let mut a = p.syscall_thread("A", "put2");
            a.ref_put(cnt);
            a.ref_put(cnt);
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        let f = e.run_all_serial().expect("must warn");
        assert_eq!(f.kind, FailureKind::RefcountWarning);
    }
}

#[cfg(test)]
mod rcu_tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    /// An RCU callback queued while a reader section is active must wait
    /// for the grace period.
    #[test]
    fn rcu_callback_waits_for_grace_period() {
        let mut p = ProgramBuilder::new("rcu-grace");
        let x = p.global("x", 0);
        let cb = {
            let mut r = p.rcu_thread("rcu_cb");
            r.store_global(x, 7u64);
            r.ret();
            r.id()
        };
        {
            let mut reader = p.syscall_thread("R", "read");
            reader.rcu_read_lock(); // 0
            reader.load_global("r0", x); // 1
            reader.rcu_read_unlock(); // 2
            reader.ret(); // 3
        }
        {
            let mut w = p.syscall_thread("W", "write");
            w.call_rcu(cb, None);
            w.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        // Reader enters its section.
        e.step(ThreadId(0)).unwrap();
        // Writer queues the callback: it must be gated.
        let out = e.step(ThreadId(1)).unwrap();
        let cb_tid = out.record().unwrap().spawned.unwrap();
        assert_eq!(e.thread(cb_tid).unwrap().status, ThreadStatus::WaitingGrace);
        assert!(e.step(cb_tid).is_err(), "gated callback cannot be stepped");
        // Reader leaves the section: the callback becomes runnable.
        e.step(ThreadId(0)).unwrap(); // load
        e.step(ThreadId(0)).unwrap(); // rcu_read_unlock
        assert!(e.thread(cb_tid).unwrap().is_runnable());
        e.run_to_completion(cb_tid);
        assert_eq!(e.peek(x.addr()), 7);
    }

    /// A callback queued outside any read-side section runs immediately.
    #[test]
    fn rcu_callback_without_readers_is_runnable() {
        let mut p = ProgramBuilder::new("rcu-free");
        let cb = {
            let mut r = p.rcu_thread("rcu_cb");
            r.nop();
            r.ret();
            r.id()
        };
        {
            let mut w = p.syscall_thread("W", "write");
            w.call_rcu(cb, None);
            w.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        let out = e.step(ThreadId(0)).unwrap();
        let cb_tid = out.record().unwrap().spawned.unwrap();
        assert!(e.thread(cb_tid).unwrap().is_runnable());
    }

    /// Unbalanced rcu_read_unlock is a kernel bug.
    #[test]
    fn unbalanced_rcu_unlock_fails() {
        let mut p = ProgramBuilder::new("rcu-bad");
        {
            let mut a = p.syscall_thread("A", "x");
            a.rcu_read_unlock();
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        let f = e.run_all_serial().expect("fails");
        assert_eq!(f.kind, FailureKind::AssertionViolation);
    }

    /// A reader that exits inside its section implicitly ends it (the
    /// engine does not leak the grace period).
    #[test]
    fn reader_exit_ends_grace_period() {
        let mut p = ProgramBuilder::new("rcu-exit");
        let cb = {
            let mut r = p.rcu_thread("rcu_cb");
            r.ret();
            r.id()
        };
        {
            let mut reader = p.syscall_thread("R", "read");
            reader.rcu_read_lock();
            reader.ret(); // exits while still "inside"
        }
        {
            let mut w = p.syscall_thread("W", "write");
            w.call_rcu(cb, None);
            w.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.step(ThreadId(0)).unwrap(); // rcu_read_lock
        let out = e.step(ThreadId(1)).unwrap();
        let cb_tid = out.record().unwrap().spawned.unwrap();
        assert_eq!(e.thread(cb_tid).unwrap().status, ThreadStatus::WaitingGrace);
        e.step(ThreadId(0)).unwrap(); // reader exits
        assert!(e.thread(cb_tid).unwrap().is_runnable());
    }
}

#[cfg(test)]
mod irq_tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn inject_irq_spawns_a_concurrent_handler() {
        let mut p = ProgramBuilder::new("irq");
        let x = p.global("x", 0);
        let irq = {
            let mut h = p.irq_thread("irq");
            h.store_global(x, 1u64);
            h.ret();
            h.id()
        };
        {
            let mut a = p.syscall_thread("A", "s");
            a.nop();
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(Arc::clone(&prog));
        // Only the syscall thread exists at boot.
        assert_eq!(e.threads().len(), 1);
        let tid = e.inject_irq(irq).expect("registered handler injects");
        assert!(e.thread(tid).unwrap().is_runnable());
        // The injected context has no spawner.
        assert_eq!(e.thread(tid).unwrap().spawned_by, None);
        e.run_to_completion(tid);
        assert_eq!(e.peek(x.addr()), 1);
    }

    #[test]
    fn injecting_an_unregistered_program_is_an_error() {
        let mut p = ProgramBuilder::new("irq-bad");
        let w = {
            let mut k = p.kworker_thread("kw");
            k.ret();
            k.id()
        };
        {
            let mut a = p.syscall_thread("A", "s");
            a.queue_work(w, None);
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        assert!(e.inject_irq(w).is_err());
    }

    #[test]
    fn validate_rejects_non_irq_handler_registration() {
        let mut p = ProgramBuilder::new("bad-reg");
        {
            let mut a = p.syscall_thread("A", "s");
            a.ret();
        }
        let mut prog = p.build().unwrap();
        prog.irq_handlers.push(crate::instr::ThreadProgId(0));
        assert!(prog.validate().is_err());
    }
}

#[cfg(test)]
mod serial_helper_tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    /// A grace-gated RCU callback spawned mid-run is revisited once the
    /// reader section ends.
    #[test]
    fn run_all_serial_revisits_gated_callbacks() {
        let mut p = ProgramBuilder::new("serial-rcu");
        let x = p.global("x", 0);
        let cb = {
            let mut r = p.rcu_thread("cb");
            r.store_global(x, 5u64);
            r.ret();
            r.id()
        };
        {
            // Reader holds a section across the writer's call_rcu — within
            // ONE thread to exercise the revisit: the thread enters a
            // section, queues the callback, then exits the section.
            let mut a = p.syscall_thread("A", "s");
            a.rcu_read_lock();
            a.call_rcu(cb, None);
            a.rcu_read_unlock();
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        assert!(e.run_all_serial().is_none());
        assert!(e.all_done());
        assert_eq!(e.peek(x.addr()), 5);
    }
}
