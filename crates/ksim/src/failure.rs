//! Kernel failure taxonomy.
//!
//! The failure classes mirror the ones observed in the paper's evaluation
//! (Tables 2 and 3): NULL-pointer dereference, use-after-free (KASAN),
//! slab-out-of-bounds (KASAN), general protection fault, assertion violation
//! (`BUG_ON`), refcount warning (`WARNING: refcount bug`), memory leak,
//! list corruption (double insertion of a shared object, §2.1), hung task
//! (watchdog), and double free.

use crate::{
    addr::Addr,
    program::InstrAddr,
    thread::ThreadId, //
};
use serde::{
    Deserialize,
    Serialize, //
};

/// The class of a kernel failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Dereference of an address inside the NULL guard page.
    NullDeref,
    /// KASAN: access to a freed (quarantined) heap object.
    UseAfterFree,
    /// KASAN: access to a redzone adjacent to a live heap object.
    SlabOutOfBounds,
    /// Access to an unmapped address (wild pointer).
    GeneralProtectionFault,
    /// A `BUG_ON` condition evaluated to true.
    AssertionViolation,
    /// Refcount increment from zero or decrement below zero.
    RefcountWarning,
    /// A heap object marked `must_free` was still live at run end.
    MemoryLeak,
    /// Linked-list invariant broken (double add or delete of absent node).
    ListCorruption,
    /// No runnable thread while unfinished work remains (deadlock), or the
    /// step budget was exhausted (livelock).
    HungTask,
    /// `kfree` of an already-freed object.
    DoubleFree,
}

impl core::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            FailureKind::NullDeref => "NULL pointer dereference",
            FailureKind::UseAfterFree => "KASAN: use-after-free",
            FailureKind::SlabOutOfBounds => "KASAN: slab-out-of-bounds",
            FailureKind::GeneralProtectionFault => "general protection fault",
            FailureKind::AssertionViolation => "kernel BUG (assertion violation)",
            FailureKind::RefcountWarning => "WARNING: refcount bug",
            FailureKind::MemoryLeak => "memory leak",
            FailureKind::ListCorruption => "list corruption",
            FailureKind::HungTask => "INFO: task hung (watchdog)",
            FailureKind::DoubleFree => "KASAN: double-free",
        };
        f.write_str(s)
    }
}

/// A manifested kernel failure: what happened, where, and on which thread.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Failure {
    /// The failure class.
    pub kind: FailureKind,
    /// The static instruction at which the failure manifested.
    ///
    /// For [`FailureKind::MemoryLeak`] and [`FailureKind::HungTask`] this is
    /// the last instruction executed before the end-of-run check fired.
    pub at: InstrAddr,
    /// The runtime thread on which the failure manifested.
    pub tid: ThreadId,
    /// The faulting address, when the failure concerns a memory location.
    pub addr: Option<Addr>,
    /// Human-readable detail (e.g. the `BUG_ON` message).
    pub message: String,
}

impl core::fmt::Display for Failure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} at {} on {:?}", self.kind, self.at, self.tid)?;
        if let Some(a) = self.addr {
            write!(f, " addr {a}")?;
        }
        if !self.message.is_empty() {
            write!(f, ": {}", self.message)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::ThreadProgId;

    #[test]
    fn display_mentions_kind_and_location() {
        let f = Failure {
            kind: FailureKind::UseAfterFree,
            at: InstrAddr {
                prog: ThreadProgId(1),
                index: 4,
            },
            tid: ThreadId(2),
            addr: Some(Addr(0x2000_0000)),
            message: "irqfd".into(),
        };
        let s = f.to_string();
        assert!(s.contains("use-after-free"), "{s}");
        assert!(s.contains("0x20000000"), "{s}");
        assert!(s.contains("irqfd"), "{s}");
    }

    #[test]
    fn kinds_are_distinct_strings() {
        use FailureKind::*;
        let kinds = [
            NullDeref,
            UseAfterFree,
            SlabOutOfBounds,
            GeneralProtectionFault,
            AssertionViolation,
            RefcountWarning,
            MemoryLeak,
            ListCorruption,
            HungTask,
            DoubleFree,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(k.to_string()), "duplicate display for {k:?}");
        }
    }
}
