//! The disassembly map: static memory-access candidates per program.
//!
//! AITIA's user agent keeps "a map of the disassembled kernel code and
//! searches for memory-accessing instructions from the pertinent basic
//! block" (§4.3). This module is that map for the simulator's IR: for every
//! thread program it lists the instructions that *may* access shared memory
//! — the universe of breakpoint candidates for LIFS.

use crate::{
    coverage::{
        BlockId,
        CoverageMap, //
    },
    instr::ThreadProgId,
    program::{
        InstrAddr,
        Program, //
    },
};

/// Static memory-access candidate index over a whole [`Program`].
#[derive(Clone, Debug)]
pub struct Disasm {
    /// Per program: instruction indices that may access memory, ascending.
    mem_instrs: Vec<Vec<usize>>,
    coverage: CoverageMap,
}

impl Disasm {
    /// Builds the map for `program`.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mem_instrs = program
            .progs
            .iter()
            .map(|p| {
                p.instrs
                    .iter()
                    .enumerate()
                    .filter(|(_, i)| i.may_access_memory())
                    .map(|(idx, _)| idx)
                    .collect()
            })
            .collect();
        Disasm {
            mem_instrs,
            coverage: CoverageMap::compute(program),
        }
    }

    /// Memory-accessing instruction indices of one program, front to back
    /// (the order LIFS searches preemption points, §3.3).
    #[must_use]
    pub fn mem_instrs(&self, prog: ThreadProgId) -> &[usize] {
        &self.mem_instrs[prog.0 as usize]
    }

    /// Whether the instruction at `at` may access memory.
    #[must_use]
    pub fn may_access_memory(&self, at: InstrAddr) -> bool {
        self.mem_instrs[at.prog.0 as usize]
            .binary_search(&at.index)
            .is_ok()
    }

    /// Memory-accessing instructions within one basic block of a program —
    /// what the user agent extracts per kcov callback.
    #[must_use]
    pub fn mem_instrs_in_block(&self, prog: ThreadProgId, block: BlockId) -> Vec<InstrAddr> {
        let bm = self.coverage.prog(prog);
        self.mem_instrs[prog.0 as usize]
            .iter()
            .filter(|&&i| bm.block_of(i) == block)
            .map(|&i| InstrAddr { prog, index: i })
            .collect()
    }

    /// The coverage (basic-block) map.
    #[must_use]
    pub fn coverage(&self) -> &CoverageMap {
        &self.coverage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn mem_instrs_listed_front_to_back() {
        let mut p = ProgramBuilder::new("d");
        let g = p.global("g", 0);
        {
            let mut a = p.syscall_thread("A", "s");
            a.mov("r0", 1u64); // 0: not memory
            a.store_global(g, "r0"); // 1: memory
            a.nop(); // 2: not memory
            a.load_global("r1", g); // 3: memory
            a.ret(); // 4: not memory
        }
        let prog = p.build().unwrap();
        let d = Disasm::new(&prog);
        assert_eq!(d.mem_instrs(ThreadProgId(0)), &[1, 3]);
        assert!(d.may_access_memory(InstrAddr {
            prog: ThreadProgId(0),
            index: 1
        }));
        assert!(!d.may_access_memory(InstrAddr {
            prog: ThreadProgId(0),
            index: 0
        }));
    }

    #[test]
    fn block_filter_returns_only_that_block() {
        let mut p = ProgramBuilder::new("d2");
        let g = p.global("g", 0);
        {
            let mut a = p.syscall_thread("A", "s");
            let out = a.new_label();
            a.load_global("r0", g); // 0: block 0, memory
            a.jmp_if(
                crate::builder::cond_reg("r0", crate::instr::CmpOp::Eq, 0),
                out,
            ); // 1
            a.store_global(g, 1u64); // 2: block 1, memory
            a.place(out);
            a.ret(); // 3: block 2
        }
        let prog = p.build().unwrap();
        let d = Disasm::new(&prog);
        let pid = ThreadProgId(0);
        let b0 = d.coverage().block_at(InstrAddr {
            prog: pid,
            index: 0,
        });
        let in_b0 = d.mem_instrs_in_block(pid, b0);
        assert_eq!(in_b0.len(), 1);
        assert_eq!(in_b0[0].index, 0);
    }
}
