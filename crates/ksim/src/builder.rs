//! Ergonomic construction of kernel [`Program`]s.
//!
//! The corpus models kernel code paths (Figure 2's `fanout_add` /
//! `packet_do_bind`, Figure 9's irqfd paths, ...) with this builder. Thread
//! code is written imperatively; labels resolve forward branches; every
//! instruction can carry the paper's display names (`"A2"`, `"B11"`) plus a
//! function and line for instruction-level reporting.
//!
//! Registers are named `"r0"`, `"r1"`, ... and map directly to register
//! indices; the builder tracks the maximum index used per thread.
//!
//! # Panics
//!
//! Builder methods panic on malformed inputs (bad register names, unplaced
//! labels at build time). The builder constructs static test scenarios, so a
//! loud failure at construction is the correct behaviour — these are bugs in
//! scenario code, not runtime conditions.

use crate::{
    addr::GlobalId,
    instr::{
        AddrExpr,
        BinOp,
        CmpOp,
        Cond,
        Instr,
        InstrMeta,
        LockId,
        Operand,
        Reg,
        ThreadProgId, //
    },
    program::{
        GlobalDecl,
        GlobalInit,
        InstrAddr,
        Program,
        StaticObj,
        ThreadKind,
        ThreadProg, //
    },
};
use std::collections::HashMap;

/// Parses a register name of the form `"rN"`.
///
/// # Panics
///
/// Panics when the name is not of that form.
#[must_use]
pub fn reg(name: &str) -> Reg {
    let idx: u16 = name
        .strip_prefix('r')
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("register names are r0..r65535, got {name:?}"));
    Reg(idx)
}

/// A value operand spec accepted by builder methods: a `u64` immediate or a
/// `"rN"` register name.
#[derive(Clone, Copy, Debug)]
pub enum Opnd<'a> {
    /// Immediate constant.
    C(u64),
    /// Register by name.
    R(&'a str),
}

impl From<u64> for Opnd<'static> {
    fn from(v: u64) -> Self {
        Opnd::C(v)
    }
}

impl From<i32> for Opnd<'static> {
    fn from(v: i32) -> Self {
        Opnd::C(v as u64)
    }
}

impl<'a> From<&'a str> for Opnd<'a> {
    fn from(v: &'a str) -> Self {
        Opnd::R(v)
    }
}

impl Opnd<'_> {
    fn resolve(self) -> Operand {
        match self {
            Opnd::C(c) => Operand::Const(c),
            Opnd::R(r) => Operand::Reg(reg(r)),
        }
    }
}

/// Builds a condition comparing a register with an immediate.
#[must_use]
pub fn cond_reg(r: &str, op: CmpOp, rhs: u64) -> Cond {
    Cond {
        lhs: Operand::Reg(reg(r)),
        op,
        rhs: Operand::Const(rhs),
    }
}

/// Builds a condition comparing two registers.
#[must_use]
pub fn cond_rr(lhs: &str, op: CmpOp, rhs: &str) -> Cond {
    Cond {
        lhs: Operand::Reg(reg(lhs)),
        op,
        rhs: Operand::Reg(reg(rhs)),
    }
}

/// A forward-resolvable branch target within one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Default)]
struct ThreadDraft {
    placed: HashMap<usize, usize>,
    next_label: usize,
    fixups: Vec<(usize, usize)>,
    max_reg: u16,
}

/// Builds a [`Program`]: globals, static objects, locks, and threads.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    globals: Vec<GlobalDecl>,
    static_objs: Vec<StaticObj>,
    progs: Vec<ThreadProg>,
    drafts: Vec<ThreadDraft>,
    initial: Vec<ThreadProgId>,
    irq_handlers: Vec<ThreadProgId>,
    next_lock: u16,
    check_leaks: bool,
}

impl ProgramBuilder {
    /// Starts a new program named `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_string(),
            globals: Vec::new(),
            static_objs: Vec::new(),
            progs: Vec::new(),
            drafts: Vec::new(),
            initial: Vec::new(),
            irq_handlers: Vec::new(),
            next_lock: 0,
            check_leaks: false,
        }
    }

    /// Declares a global with a constant initial value; returns its id.
    pub fn global(&mut self, name: &str, init: u64) -> GlobalId {
        self.globals.push(GlobalDecl {
            name: name.to_string(),
            init: GlobalInit::Const(init),
        });
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// Declares a static heap object; returns its index for
    /// [`Self::global_ptr`] and [`crate::engine::Engine::static_obj_addr`].
    pub fn static_obj(&mut self, name: &str, size: u64) -> usize {
        self.static_objs.push(StaticObj {
            name: name.to_string(),
            size,
        });
        self.static_objs.len() - 1
    }

    /// Declares a global initialized to point at a static object.
    pub fn global_ptr(&mut self, name: &str, static_idx: usize) -> GlobalId {
        assert!(
            static_idx < self.static_objs.len(),
            "static object {static_idx} not declared"
        );
        self.globals.push(GlobalDecl {
            name: name.to_string(),
            init: GlobalInit::StaticPtr(static_idx),
        });
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// Declares a kernel lock.
    pub fn lock(&mut self, _name: &str) -> LockId {
        let id = LockId(self.next_lock);
        self.next_lock += 1;
        id
    }

    /// Enables the end-of-run memory-leak check.
    pub fn check_leaks(&mut self, on: bool) {
        self.check_leaks = on;
    }

    fn thread(&mut self, name: &str, kind: ThreadKind) -> ThreadBuilder<'_> {
        let initial = !kind.is_background();
        self.progs.push(ThreadProg {
            name: name.to_string(),
            kind,
            instrs: Vec::new(),
            meta: Vec::new(),
            reg_count: 0,
        });
        self.drafts.push(ThreadDraft::default());
        let idx = self.progs.len() - 1;
        if initial {
            self.initial.push(ThreadProgId(idx as u16));
        }
        ThreadBuilder {
            pb: self,
            idx,
            pending_name: None,
            cur_func: "",
            cur_line: 0,
        }
    }

    /// Starts a system-call thread (an initial thread of the scenario).
    pub fn syscall_thread(&mut self, name: &str, syscall: &str) -> ThreadBuilder<'_> {
        self.thread(
            name,
            ThreadKind::Syscall {
                name: syscall.to_string(),
            },
        )
    }

    /// Starts a kernel worker program (spawned via `queue_work`).
    pub fn kworker_thread(&mut self, name: &str) -> ThreadBuilder<'_> {
        self.thread(name, ThreadKind::Kworker)
    }

    /// Starts an RCU callback program (spawned via `call_rcu`).
    pub fn rcu_thread(&mut self, name: &str) -> ThreadBuilder<'_> {
        self.thread(name, ThreadKind::RcuCallback)
    }

    /// Starts a timer callback program.
    pub fn timer_thread(&mut self, name: &str) -> ThreadBuilder<'_> {
        self.thread(name, ThreadKind::Timer)
    }

    /// Starts a hardware-IRQ handler program. The handler is registered
    /// with the program; the hypervisor may inject it at any scheduling
    /// point via [`crate::engine::Engine::inject_irq`].
    pub fn irq_thread(&mut self, name: &str) -> ThreadBuilder<'_> {
        let tb = self.thread(name, ThreadKind::HardIrq);
        let id = tb.id();
        tb.pb.irq_handlers.push(id);
        ThreadBuilder {
            idx: id.0 as usize,
            pending_name: None,
            cur_func: "",
            cur_line: 0,
            pb: tb.pb,
        }
    }

    /// Resolves labels, validates, and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns the first validation error (see [`Program::validate`]).
    pub fn build(mut self) -> Result<Program, String> {
        for (pi, draft) in self.drafts.iter().enumerate() {
            for &(instr_idx, label) in &draft.fixups {
                let target = *draft
                    .placed
                    .get(&label)
                    .ok_or_else(|| format!("prog {pi}: label {label} never placed"))?;
                match &mut self.progs[pi].instrs[instr_idx] {
                    Instr::Jmp { target: t } | Instr::JmpIf { target: t, .. } => *t = target,
                    other => return Err(format!("prog {pi}: fixup on non-branch {other:?}")),
                }
            }
            self.progs[pi].reg_count = draft.max_reg;
        }
        let p = Program {
            name: self.name,
            globals: self.globals,
            static_objs: self.static_objs,
            progs: self.progs,
            initial: self.initial,
            irq_handlers: self.irq_handlers,
            check_leaks: self.check_leaks,
        };
        p.validate()?;
        Ok(p)
    }
}

/// Appends instructions to one thread program.
pub struct ThreadBuilder<'p> {
    pb: &'p mut ProgramBuilder,
    idx: usize,
    pending_name: Option<String>,
    cur_func: &'static str,
    cur_line: u32,
}

impl ThreadBuilder<'_> {
    /// The id of the thread program being built.
    #[must_use]
    pub fn id(&self) -> ThreadProgId {
        ThreadProgId(self.idx as u16)
    }

    /// Declares a thread-private static scratch object plus a global
    /// pointing at it, and returns the global. Static objects have
    /// deterministic addresses across runs (they are allocated at boot),
    /// which keeps thread-private bulk traffic recognizably private to
    /// schedule-exploration tools regardless of the schedule executed.
    pub fn scratch_buffer(&mut self, name: &str, size: u64) -> GlobalId {
        let idx = self.pb.static_obj(name, size);
        self.pb.global_ptr(&format!("{name}_ptr"), idx)
    }

    /// Names the *next* emitted instruction (the paper's `"A2"` style).
    pub fn n(&mut self, name: &str) -> &mut Self {
        self.pending_name = Some(name.to_string());
        self
    }

    /// The address the *next* emitted instruction will occupy. Program
    /// generators use this to record planted racing instructions as
    /// ground truth before emitting them.
    #[must_use]
    pub fn next_addr(&self) -> InstrAddr {
        InstrAddr {
            prog: self.id(),
            index: self.pb.progs[self.idx].instrs.len(),
        }
    }

    /// The address of the most recently emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics when nothing has been emitted in this thread yet.
    #[must_use]
    pub fn last_addr(&self) -> InstrAddr {
        let len = self.pb.progs[self.idx].instrs.len();
        assert!(len > 0, "thread {} has no instructions yet", self.idx);
        InstrAddr {
            prog: self.id(),
            index: len - 1,
        }
    }

    /// Sets the enclosing function recorded on subsequent instructions.
    pub fn func(&mut self, f: &'static str) -> &mut Self {
        self.cur_func = f;
        self
    }

    /// Sets the source line recorded on the next instruction; subsequent
    /// instructions auto-increment from it.
    pub fn line(&mut self, l: u32) -> &mut Self {
        self.cur_line = l;
        self
    }

    fn touch_reg(&mut self, r: Reg) {
        let d = &mut self.pb.drafts[self.idx];
        d.max_reg = d.max_reg.max(r.0 + 1);
    }

    fn emit(&mut self, i: Instr) -> usize {
        // Track register usage for the register-file size.
        let regs_of_operand = |o: &Operand| match o {
            Operand::Reg(r) => Some(*r),
            Operand::Const(_) => None,
        };
        let mut touched: Vec<Reg> = Vec::new();
        match &i {
            Instr::Load { dst, addr } | Instr::ListFirst { dst, list: addr } => {
                touched.push(*dst);
                if let AddrExpr::Ind { base, .. } = addr {
                    touched.push(*base);
                }
            }
            Instr::Store { addr, src } => {
                touched.extend(regs_of_operand(src));
                if let AddrExpr::Ind { base, .. } = addr {
                    touched.push(*base);
                }
            }
            Instr::FetchAdd { dst, addr, val } => {
                touched.extend(*dst);
                touched.extend(regs_of_operand(val));
                if let AddrExpr::Ind { base, .. } = addr {
                    touched.push(*base);
                }
            }
            Instr::Mov { dst, src } => {
                touched.push(*dst);
                touched.extend(regs_of_operand(src));
            }
            Instr::Op { dst, lhs, rhs, .. } => {
                touched.push(*dst);
                touched.extend(regs_of_operand(lhs));
                touched.extend(regs_of_operand(rhs));
            }
            Instr::JmpIf { cond, .. } | Instr::BugOn { cond, .. } => {
                touched.extend(regs_of_operand(&cond.lhs));
                touched.extend(regs_of_operand(&cond.rhs));
            }
            Instr::Alloc { dst, .. } => touched.push(*dst),
            Instr::Free { ptr } => touched.extend(regs_of_operand(ptr)),
            Instr::ListAdd { list, item } | Instr::ListDel { list, item } => {
                touched.extend(regs_of_operand(item));
                if let AddrExpr::Ind { base, .. } = list {
                    touched.push(*base);
                }
            }
            Instr::ListContains { dst, list, item } => {
                touched.push(*dst);
                touched.extend(regs_of_operand(item));
                if let AddrExpr::Ind { base, .. } = list {
                    touched.push(*base);
                }
            }
            Instr::RefGet { addr } => {
                if let AddrExpr::Ind { base, .. } = addr {
                    touched.push(*base);
                }
            }
            Instr::RefPut { dst, addr } => {
                touched.extend(*dst);
                if let AddrExpr::Ind { base, .. } = addr {
                    touched.push(*base);
                }
            }
            Instr::QueueWork { arg, .. } | Instr::CallRcu { arg, .. } => {
                if let Some(a) = arg {
                    touched.extend(regs_of_operand(a));
                }
                // Spawned programs receive an argument in r0.
            }
            Instr::Jmp { .. }
            | Instr::Nop
            | Instr::Ret
            | Instr::Lock { .. }
            | Instr::Unlock { .. }
            | Instr::RcuReadLock
            | Instr::RcuReadUnlock => {}
        }
        for r in touched {
            self.touch_reg(r);
        }
        self.cur_line += 1;
        let meta = InstrMeta {
            name: self.pending_name.take(),
            func: self.cur_func,
            line: self.cur_line,
        };
        let p = &mut self.pb.progs[self.idx];
        p.instrs.push(i);
        p.meta.push(meta);
        p.instrs.len() - 1
    }

    /// `dst = *global`.
    pub fn load_global(&mut self, dst: &str, g: GlobalId) -> &mut Self {
        self.emit(Instr::Load {
            dst: reg(dst),
            addr: AddrExpr::Global(g),
        });
        self
    }

    /// `*global = value`.
    pub fn store_global<'a>(&mut self, g: GlobalId, v: impl Into<Opnd<'a>>) -> &mut Self {
        self.emit(Instr::Store {
            addr: AddrExpr::Global(g),
            src: v.into().resolve(),
        });
        self
    }

    /// `*global = reg` (alias of [`Self::store_global`] for readability).
    pub fn store_global_from(&mut self, g: GlobalId, src: &str) -> &mut Self {
        self.store_global(g, src)
    }

    /// `dst = *(base + off)`.
    pub fn load_ind(&mut self, dst: &str, base: &str, off: u64) -> &mut Self {
        self.emit(Instr::Load {
            dst: reg(dst),
            addr: AddrExpr::Ind {
                base: reg(base),
                offset: off,
            },
        });
        self
    }

    /// `*(base + off) = value`.
    pub fn store_ind<'a>(&mut self, base: &str, off: u64, v: impl Into<Opnd<'a>>) -> &mut Self {
        self.emit(Instr::Store {
            addr: AddrExpr::Ind {
                base: reg(base),
                offset: off,
            },
            src: v.into().resolve(),
        });
        self
    }

    /// `*global += value` as one read-modify-write step.
    pub fn fetch_add_global<'a>(&mut self, g: GlobalId, v: impl Into<Opnd<'a>>) -> &mut Self {
        self.emit(Instr::FetchAdd {
            dst: None,
            addr: AddrExpr::Global(g),
            val: v.into().resolve(),
        });
        self
    }

    /// `*(base + off) += value` as one read-modify-write step.
    pub fn fetch_add_ind<'a>(&mut self, base: &str, off: u64, v: impl Into<Opnd<'a>>) -> &mut Self {
        self.emit(Instr::FetchAdd {
            dst: None,
            addr: AddrExpr::Ind {
                base: reg(base),
                offset: off,
            },
            val: v.into().resolve(),
        });
        self
    }

    /// `dst = value`.
    pub fn mov<'a>(&mut self, dst: &str, v: impl Into<Opnd<'a>>) -> &mut Self {
        self.emit(Instr::Mov {
            dst: reg(dst),
            src: v.into().resolve(),
        });
        self
    }

    /// `dst = lhs op rhs`.
    pub fn op<'a, 'b>(
        &mut self,
        dst: &str,
        op: BinOp,
        lhs: impl Into<Opnd<'a>>,
        rhs: impl Into<Opnd<'b>>,
    ) -> &mut Self {
        self.emit(Instr::Op {
            dst: reg(dst),
            op,
            lhs: lhs.into().resolve(),
            rhs: rhs.into().resolve(),
        });
        self
    }

    /// Creates an unplaced label.
    pub fn new_label(&mut self) -> Label {
        let d = &mut self.pb.drafts[self.idx];
        let l = Label(d.next_label);
        d.next_label += 1;
        l
    }

    /// Places a label at the next instruction position.
    pub fn place(&mut self, l: Label) -> &mut Self {
        let pos = self.pb.progs[self.idx].instrs.len();
        let d = &mut self.pb.drafts[self.idx];
        assert!(
            d.placed.insert(l.0, pos).is_none(),
            "label placed twice in thread {}",
            self.idx
        );
        self
    }

    /// Unconditional branch to `l`.
    pub fn jmp(&mut self, l: Label) -> &mut Self {
        let i = self.emit(Instr::Jmp { target: usize::MAX });
        self.pb.drafts[self.idx].fixups.push((i, l.0));
        self
    }

    /// Branch to `l` when `cond` holds.
    pub fn jmp_if(&mut self, cond: Cond, l: Label) -> &mut Self {
        if let Operand::Reg(r) = cond.lhs {
            self.touch_reg(r);
        }
        if let Operand::Reg(r) = cond.rhs {
            self.touch_reg(r);
        }
        let i = self.emit(Instr::JmpIf {
            cond,
            target: usize::MAX,
        });
        self.pb.drafts[self.idx].fixups.push((i, l.0));
        self
    }

    /// `dst = kmalloc(size)`.
    pub fn alloc(&mut self, dst: &str, size: u64) -> &mut Self {
        self.emit(Instr::Alloc {
            dst: reg(dst),
            size,
            must_free: false,
        });
        self
    }

    /// `dst = kmalloc(size)` where failing to free the object is a leak.
    pub fn alloc_must_free(&mut self, dst: &str, size: u64) -> &mut Self {
        self.emit(Instr::Alloc {
            dst: reg(dst),
            size,
            must_free: true,
        });
        self
    }

    /// `kfree(reg)`.
    pub fn free(&mut self, ptr: &str) -> &mut Self {
        self.emit(Instr::Free {
            ptr: Operand::Reg(reg(ptr)),
        });
        self
    }

    /// Acquire `lock`.
    pub fn lock(&mut self, lock: LockId) -> &mut Self {
        self.emit(Instr::Lock { lock });
        self
    }

    /// Release `lock`.
    pub fn unlock(&mut self, lock: LockId) -> &mut Self {
        self.emit(Instr::Unlock { lock });
        self
    }

    /// `list_add(item, global_head)`.
    pub fn list_add<'a>(&mut self, head: GlobalId, item: impl Into<Opnd<'a>>) -> &mut Self {
        self.emit(Instr::ListAdd {
            list: AddrExpr::Global(head),
            item: item.into().resolve(),
        });
        self
    }

    /// `list_del(item, global_head)`.
    pub fn list_del<'a>(&mut self, head: GlobalId, item: impl Into<Opnd<'a>>) -> &mut Self {
        self.emit(Instr::ListDel {
            list: AddrExpr::Global(head),
            item: item.into().resolve(),
        });
        self
    }

    /// `dst = list_contains(global_head, item)`.
    pub fn list_contains<'a>(
        &mut self,
        dst: &str,
        head: GlobalId,
        item: impl Into<Opnd<'a>>,
    ) -> &mut Self {
        self.emit(Instr::ListContains {
            dst: reg(dst),
            list: AddrExpr::Global(head),
            item: item.into().resolve(),
        });
        self
    }

    /// `dst = list_first_or_null(global_head)`.
    pub fn list_first(&mut self, dst: &str, head: GlobalId) -> &mut Self {
        self.emit(Instr::ListFirst {
            dst: reg(dst),
            list: AddrExpr::Global(head),
        });
        self
    }

    /// `refcount_inc(*global)`.
    pub fn ref_get(&mut self, g: GlobalId) -> &mut Self {
        self.emit(Instr::RefGet {
            addr: AddrExpr::Global(g),
        });
        self
    }

    /// `refcount_inc(*(base + off))`.
    pub fn ref_get_ind(&mut self, base: &str, off: u64) -> &mut Self {
        self.emit(Instr::RefGet {
            addr: AddrExpr::Ind {
                base: reg(base),
                offset: off,
            },
        });
        self
    }

    /// `refcount_dec(*global)`.
    pub fn ref_put(&mut self, g: GlobalId) -> &mut Self {
        self.emit(Instr::RefPut {
            dst: None,
            addr: AddrExpr::Global(g),
        });
        self
    }

    /// `dst = refcount_dec_and_test(*global)`.
    pub fn ref_put_test(&mut self, dst: &str, g: GlobalId) -> &mut Self {
        self.emit(Instr::RefPut {
            dst: Some(reg(dst)),
            addr: AddrExpr::Global(g),
        });
        self
    }

    /// `dst = refcount_dec_and_test(*(base + off))`.
    pub fn ref_put_test_ind(&mut self, dst: &str, base: &str, off: u64) -> &mut Self {
        self.emit(Instr::RefPut {
            dst: Some(reg(dst)),
            addr: AddrExpr::Ind {
                base: reg(base),
                offset: off,
            },
        });
        self
    }

    /// `BUG_ON(cond)`.
    pub fn bug_on(&mut self, cond: Cond) -> &mut Self {
        self.bug_on_msg(cond, "BUG_ON")
    }

    /// `BUG_ON(cond)` with a report message.
    pub fn bug_on_msg(&mut self, cond: Cond, msg: &'static str) -> &mut Self {
        self.emit(Instr::BugOn { cond, msg });
        self
    }

    /// `queue_work(prog)`, optionally forwarding a register to the worker's
    /// `r0`.
    pub fn queue_work(&mut self, prog: ThreadProgId, arg: Option<&str>) -> &mut Self {
        self.emit(Instr::QueueWork {
            prog,
            arg: arg.map(|r| Operand::Reg(reg(r))),
        });
        self
    }

    /// `queue_work(prog)` forwarding `arg_reg` to the worker's `r0`.
    pub fn queue_work_arg(&mut self, prog: ThreadProgId, arg_reg: &str) -> &mut Self {
        self.queue_work(prog, Some(arg_reg))
    }

    /// Arms a kernel timer whose callback runs `prog` (modeled as a
    /// background-thread spawn; the external scheduler decides when the
    /// timer "fires", exactly like `queue_work`).
    pub fn arm_timer(&mut self, prog: ThreadProgId, arg: Option<&str>) -> &mut Self {
        self.queue_work(prog, arg)
    }

    /// `call_rcu(prog)`, optionally forwarding a register to the callback's
    /// `r0`.
    pub fn call_rcu(&mut self, prog: ThreadProgId, arg: Option<&str>) -> &mut Self {
        self.emit(Instr::CallRcu {
            prog,
            arg: arg.map(|r| Operand::Reg(reg(r))),
        });
        self
    }

    /// `rcu_read_lock()`.
    pub fn rcu_read_lock(&mut self) -> &mut Self {
        self.emit(Instr::RcuReadLock);
        self
    }

    /// `rcu_read_unlock()`.
    pub fn rcu_read_unlock(&mut self) -> &mut Self {
        self.emit(Instr::RcuReadUnlock);
        self
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop);
        self
    }

    /// Thread exit.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Ret);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_parsing() {
        assert_eq!(reg("r0"), Reg(0));
        assert_eq!(reg("r15"), Reg(15));
    }

    #[test]
    #[should_panic(expected = "register names")]
    fn bad_reg_panics() {
        let _ = reg("x1");
    }

    #[test]
    fn labels_resolve_forward() {
        let mut p = ProgramBuilder::new("lbl");
        {
            let mut a = p.syscall_thread("A", "s");
            let out = a.new_label();
            a.mov("r0", 1u64);
            a.jmp_if(cond_reg("r0", CmpOp::Eq, 1), out);
            a.mov("r0", 2u64);
            a.place(out);
            a.ret();
        }
        let prog = p.build().unwrap();
        match prog.progs[0].instrs[1] {
            Instr::JmpIf { target, .. } => assert_eq!(target, 3),
            ref o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn unplaced_label_is_build_error() {
        let mut p = ProgramBuilder::new("lbl");
        {
            let mut a = p.syscall_thread("A", "s");
            let out = a.new_label();
            a.jmp(out);
            a.ret();
        }
        assert!(p.build().is_err());
    }

    #[test]
    fn reg_count_tracks_max() {
        let mut p = ProgramBuilder::new("regs");
        let g = p.global("g", 0);
        {
            let mut a = p.syscall_thread("A", "s");
            a.load_global("r5", g);
            a.ret();
        }
        let prog = p.build().unwrap();
        assert_eq!(prog.progs[0].reg_count, 6);
    }

    #[test]
    fn names_attach_to_next_instruction() {
        let mut p = ProgramBuilder::new("names");
        let g = p.global("g", 0);
        {
            let mut a = p.syscall_thread("A", "s");
            a.n("A1").store_global(g, 1u64);
            a.ret();
        }
        let prog = p.build().unwrap();
        assert_eq!(prog.progs[0].meta[0].name.as_deref(), Some("A1"));
        assert_eq!(prog.progs[0].meta[1].name, None);
        assert_eq!(prog.progs[0].instr_name(0), "A1");
    }

    #[test]
    fn func_and_line_metadata() {
        let mut p = ProgramBuilder::new("meta");
        {
            let mut a = p.syscall_thread("A", "s");
            a.func("fanout_add").line(10);
            a.nop();
            a.nop();
            a.ret();
        }
        let prog = p.build().unwrap();
        assert_eq!(prog.progs[0].meta[0].func, "fanout_add");
        assert_eq!(prog.progs[0].meta[0].line, 11);
        assert_eq!(prog.progs[0].meta[1].line, 12);
    }

    #[test]
    fn global_ptr_requires_declared_static() {
        let mut p = ProgramBuilder::new("sp");
        let idx = p.static_obj("sk", 16);
        let g = p.global_ptr("sk_ptr", idx);
        {
            let mut a = p.syscall_thread("A", "s");
            a.load_global("r0", g);
            a.ret();
        }
        let prog = p.build().unwrap();
        assert_eq!(prog.static_objs.len(), 1);
        assert_eq!(prog.globals[g.0 as usize].init, GlobalInit::StaticPtr(0));
    }

    #[test]
    fn addr_hooks_report_planted_instruction_positions() {
        let mut p = ProgramBuilder::new("hooks");
        let g = p.global("x", 0);
        let mut a = p.syscall_thread("A", "s");
        let planted = a.next_addr();
        assert_eq!(
            planted,
            InstrAddr {
                prog: a.id(),
                index: 0
            }
        );
        a.store_global(g, 1u64);
        assert_eq!(a.last_addr(), planted);
        a.load_global("r0", g);
        assert_eq!(a.last_addr().index, 1);
        assert_eq!(a.next_addr().index, 2);
    }
}
