//! Observable events produced by engine steps.
//!
//! Every [`crate::engine::Engine::step`] yields a [`StepRecord`] describing
//! exactly what AITIA's hypervisor would observe through breakpoints,
//! watchpoints, and kcov callbacks: the instruction executed, the memory it
//! touched, control-flow decisions, lock transitions, and thread spawns.

use crate::{
    addr::Addr,
    instr::LockId,
    program::InstrAddr,
    thread::ThreadId, //
};
use serde::{
    Deserialize,
    Serialize, //
};
use std::sync::Arc;

/// How an instruction accessed a memory location.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Pure load.
    Read,
    /// Pure store.
    Write,
    /// Read-modify-write (counter updates, list/refcount operations).
    Rmw,
}

impl AccessKind {
    /// Whether this access writes memory (a conflict requires at least one
    /// write, per the Linux kernel memory model definition the paper adopts).
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Rmw)
    }
}

/// One memory access performed by one executed instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// The accessed address.
    pub addr: Addr,
    /// Read, write, or read-modify-write.
    pub kind: AccessKind,
}

/// A lock transition performed by an executed instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockEvent {
    /// The lock was acquired.
    Acquired(LockId),
    /// The lock was released.
    Released(LockId),
}

/// The record of one executed instruction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Global sequence number within the run (total order of execution).
    pub seq: usize,
    /// The runtime thread that executed.
    pub tid: ThreadId,
    /// The static instruction address executed.
    pub at: InstrAddr,
    /// Memory accesses the instruction performed (empty for ALU/branches).
    pub accesses: Vec<MemAccess>,
    /// For conditional branches, whether the branch was taken.
    pub branch_taken: Option<bool>,
    /// Lock transition, if the instruction was `Lock`/`Unlock`.
    pub lock_event: Option<LockEvent>,
    /// Locks held by the thread *while executing* this instruction (after a
    /// `Lock` acquires, before an `Unlock` releases) — used for
    /// critical-section detection (§3.4 liveness).
    pub locks_held: Vec<LockId>,
    /// Background thread spawned by this instruction (`queue_work`,
    /// `call_rcu`), if any.
    pub spawned: Option<ThreadId>,
    /// The thread's program counter after this step (`None` when the thread
    /// exited) — lets schedule builders anchor a preemption point on "the
    /// next instruction this thread would have executed".
    pub next_pc: Option<usize>,
}

/// The immediate outcome of a single engine step.
///
/// Outcomes carry their record behind an [`Arc`] *shared with the engine
/// trace*: [`crate::Engine::step`] stores each record exactly once and
/// hands the caller another handle to it, instead of deep-cloning every
/// record a second time (field access still reads naturally through
/// `Deref`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction executed normally; the record was appended to the
    /// engine trace.
    Executed(Arc<StepRecord>),
    /// The thread could not acquire a lock and is now blocked; no
    /// instruction was executed.
    Blocked {
        /// The contended lock.
        on: LockId,
    },
    /// The thread executed its final instruction and exited. The record of
    /// that final instruction is included.
    Exited(Arc<StepRecord>),
    /// The instruction raised a kernel failure; the engine has halted. The
    /// record of the faulting instruction is included.
    Failed(Arc<StepRecord>),
}

impl StepOutcome {
    /// The step record, when an instruction actually executed.
    #[must_use]
    pub fn record(&self) -> Option<&StepRecord> {
        match self {
            StepOutcome::Executed(r) | StepOutcome::Exited(r) | StepOutcome::Failed(r) => {
                Some(r.as_ref())
            }
            StepOutcome::Blocked { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_classification() {
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::Rmw.is_write());
    }

    #[test]
    fn outcome_record_presence() {
        let rec = StepRecord {
            seq: 0,
            tid: ThreadId(0),
            at: InstrAddr {
                prog: crate::instr::ThreadProgId(0),
                index: 0,
            },
            accesses: vec![],
            branch_taken: None,
            lock_event: None,
            locks_held: vec![],
            spawned: None,
            next_pc: Some(0),
        };
        assert!(StepOutcome::Executed(Arc::new(rec.clone()))
            .record()
            .is_some());
        assert!(StepOutcome::Blocked { on: LockId(0) }.record().is_none());
        assert!(StepOutcome::Failed(Arc::new(rec)).record().is_some());
    }
}
