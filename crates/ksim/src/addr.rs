//! Simulated kernel address space.
//!
//! The simulator models a flat 64-bit address space partitioned into regions
//! that mirror the memory classes AITIA's failure detectors care about:
//!
//! * the **NULL page** (`0x0 .. 0x1000`) — any access is a NULL-pointer
//!   dereference, the failure in the paper's Figure 1;
//! * the **globals region** — statically declared kernel variables
//!   (`po->running`, `po->fanout`, list heads, statistics counters, ...);
//! * the **heap region** — dynamically allocated objects (`kmalloc`), with
//!   KASAN-style redzones and a use-after-free quarantine (see
//!   [`crate::memory`]).
//!
//! Everything outside these regions is unmapped; touching it raises a
//! general protection fault, matching the "general protection fault" failure
//! class of the paper's Table 3.

use serde::{
    Deserialize,
    Serialize, //
};

/// A simulated kernel virtual address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u64);

impl Addr {
    /// The NULL address.
    pub const NULL: Addr = Addr(0);

    /// Returns the address offset by `off` bytes.
    #[must_use]
    pub fn offset(self, off: u64) -> Addr {
        Addr(self.0.wrapping_add(off))
    }
}

impl core::fmt::Debug for Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl core::fmt::Display for Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Size of the NULL guard page.
pub const NULL_PAGE_SIZE: u64 = 0x1000;

/// Base of the globals region.
pub const GLOBALS_BASE: u64 = 0x1000_0000;

/// Each global variable occupies one 8-byte slot.
pub const GLOBAL_SLOT: u64 = 8;

/// Base of the heap region.
pub const HEAP_BASE: u64 = 0x2000_0000;

/// Bytes of KASAN-style redzone placed before and after every allocation.
pub const REDZONE: u64 = 16;

/// The coarse classification of an address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// Within the NULL guard page.
    NullPage,
    /// Within the globals region.
    Globals,
    /// Within the heap region (allocated or not is decided by the allocator).
    Heap,
    /// Not mapped by any region.
    Unmapped,
}

/// Classifies an address into its [`Region`].
#[must_use]
pub fn region_of(addr: Addr) -> Region {
    let a = addr.0;
    if a < NULL_PAGE_SIZE {
        Region::NullPage
    } else if (GLOBALS_BASE..HEAP_BASE).contains(&a) {
        Region::Globals
    } else if a >= HEAP_BASE {
        Region::Heap
    } else {
        Region::Unmapped
    }
}

/// Identifier of a declared global variable.
///
/// Globals are declared on a [`crate::program::Program`] via
/// [`crate::builder::ProgramBuilder::global`]; the id indexes the program's
/// global table and maps to a fixed address in the globals region.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// The fixed address of this global's 8-byte slot.
    #[must_use]
    pub fn addr(self) -> Addr {
        Addr(GLOBALS_BASE + u64::from(self.0) * GLOBAL_SLOT)
    }
}

impl core::fmt::Debug for GlobalId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_page_is_classified() {
        assert_eq!(region_of(Addr::NULL), Region::NullPage);
        assert_eq!(region_of(Addr(NULL_PAGE_SIZE - 1)), Region::NullPage);
        assert_eq!(region_of(Addr(NULL_PAGE_SIZE)), Region::Unmapped);
    }

    #[test]
    fn globals_map_to_distinct_slots() {
        let a = GlobalId(0).addr();
        let b = GlobalId(1).addr();
        assert_ne!(a, b);
        assert_eq!(region_of(a), Region::Globals);
        assert_eq!(b.0 - a.0, GLOBAL_SLOT);
    }

    #[test]
    fn heap_base_is_heap() {
        assert_eq!(region_of(Addr(HEAP_BASE)), Region::Heap);
        assert_eq!(region_of(Addr(HEAP_BASE - 1)), Region::Globals);
    }

    #[test]
    fn offset_wraps_like_hardware() {
        assert_eq!(Addr(u64::MAX).offset(1), Addr(0));
        assert_eq!(Addr(8).offset(8), Addr(16));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr(0x2000_0010).to_string(), "0x20000010");
    }
}
