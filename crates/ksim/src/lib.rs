//! `ksim` — a deterministic, externally-scheduled kernel execution simulator.
//!
//! This crate is the substrate for the AITIA reproduction (EuroSys 2023,
//! *Diagnosing Kernel Concurrency Failures with AITIA*). The paper controls a
//! real Linux kernel at instruction granularity through a modified KVM/QEMU
//! hypervisor; `ksim` provides the equivalent control surface over modeled
//! kernel code paths:
//!
//! * kernel code is expressed in a small instruction IR ([`instr`]) built
//!   with an ergonomic DSL ([`builder`]);
//! * the [`engine`] executes exactly one instruction of one chosen thread
//!   per step — scheduling is fully external, which is what LIFS and
//!   Causality Analysis require;
//! * memory carries KASAN-style shadow state ([`memory`]) so failures
//!   (NULL deref, UAF, OOB, double-free, leaks) manifest deterministically;
//! * kernel facilities the paper's bugs exercise are modeled: locks, linked
//!   lists ([`list`]), refcounts, and background-thread spawning
//!   (`queue_work` / `call_rcu`);
//! * [`coverage`] and [`disasm`] mirror the kcov + disassembly-map machinery
//!   the paper's user agent uses to find memory-accessing instructions;
//! * engines snapshot and restore ([`engine::Snapshot`]), the analogue of
//!   reverting a VM between schedule executions.
//!
//! # Example
//!
//! ```
//! use ksim::builder::ProgramBuilder;
//! use ksim::engine::Engine;
//! use ksim::thread::ThreadId;
//! use std::sync::Arc;
//!
//! let mut p = ProgramBuilder::new("demo");
//! let x = p.global("x", 0);
//! {
//!     let mut a = p.syscall_thread("A", "write");
//!     a.store_global(x, 1u64);
//!     a.ret();
//! }
//! {
//!     let mut b = p.syscall_thread("B", "read");
//!     b.load_global("r0", x);
//!     b.ret();
//! }
//! let prog = Arc::new(p.build().unwrap());
//! let mut e = Engine::new(prog);
//! // External scheduling: B's load runs before A's store.
//! e.run_to_completion(ThreadId(1));
//! e.run_to_completion(ThreadId(0));
//! assert_eq!(e.threads()[1].regs[0], 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod addr;
pub mod builder;
pub mod coverage;
pub mod disasm;
pub mod engine;
pub mod events;
pub mod failure;
pub mod instr;
pub mod list;
pub mod memory;
pub mod program;
pub mod thread;
pub mod trace;

pub use addr::{
    Addr,
    GlobalId, //
};
pub use builder::ProgramBuilder;
pub use engine::{
    Engine,
    EngineError,
    Snapshot,
    SnapshotMode, //
};
pub use events::{
    AccessKind,
    MemAccess,
    StepOutcome,
    StepRecord, //
};
pub use failure::{
    Failure,
    FailureKind, //
};
pub use instr::{
    CmpOp,
    Instr,
    LockId,
    ThreadProgId, //
};
pub use program::{
    InstrAddr,
    Program,
    ThreadKind, //
};
pub use thread::{
    Thread,
    ThreadId,
    ThreadStatus, //
};
pub use trace::Trace;
