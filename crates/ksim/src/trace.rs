//! The execution trace as a structurally-shared chunked sequence.
//!
//! Snapshots capture the whole trace-so-far, and a diagnosis takes
//! thousands of snapshots: storing the trace as a plain `Vec<StepRecord>`
//! made every [`crate::Engine::snapshot`] / [`crate::Engine::restore`] pair
//! copy every record ever executed. [`Trace`] instead keeps records behind
//! [`Arc`]s and groups full records into sealed immutable chunks, so
//! cloning a trace costs one reference-count bump per chunk (plus the
//! unsealed tail) instead of a deep copy per record — O(len / CHUNK), not
//! O(total record bytes).
//!
//! Sealed chunks are never mutated, which is what makes sharing them
//! between an engine and any number of live snapshots sound: appending
//! only ever touches the tail, and the tail is never shared (cloning
//! copies its `Arc`s, and those point at immutable records).

use crate::events::StepRecord;
use serde::{
    Deserialize,
    Serialize, //
};
use std::sync::Arc;

/// Records per sealed chunk. Chosen so typical schedule prefixes (tens to
/// a few hundred steps) seal a handful of chunks while the clone cost of
/// the unsealed tail stays bounded.
const CHUNK: usize = 64;

/// A structurally-shared, append-only sequence of [`StepRecord`]s.
///
/// Cloning is cheap (reference-count bumps); records themselves are
/// immutable once appended.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Full chunks of exactly [`CHUNK`] records, immutable once sealed.
    sealed: Vec<Arc<[Arc<StepRecord>]>>,
    /// The unsealed suffix, at most [`CHUNK`] - 1 records after `push`.
    tail: Vec<Arc<StepRecord>>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sealed.len() * CHUNK + self.tail.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// Appends a record. The record is stored exactly once; callers that
    /// also need it keep their own `Arc` clone.
    pub fn push(&mut self, rec: Arc<StepRecord>) {
        self.tail.push(rec);
        if self.tail.len() == CHUNK {
            self.sealed.push(std::mem::take(&mut self.tail).into());
        }
    }

    /// The `i`-th record, if present.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&StepRecord> {
        let chunk = i / CHUNK;
        if chunk < self.sealed.len() {
            Some(&self.sealed[chunk][i % CHUNK])
        } else {
            self.tail.get(i - self.sealed.len() * CHUNK).map(|r| &**r)
        }
    }

    /// The first record, if any.
    #[must_use]
    pub fn first(&self) -> Option<&StepRecord> {
        self.get(0)
    }

    /// The last record, if any.
    #[must_use]
    pub fn last(&self) -> Option<&StepRecord> {
        match self.tail.last() {
            Some(r) => Some(r),
            None => self.sealed.last().and_then(|c| c.last()).map(|r| &**r),
        }
    }

    /// Iterates the records in execution order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &StepRecord> {
        self.sealed
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
            .map(|r| &**r)
    }

    /// Materializes the trace as a flat owned vector (one deep copy —
    /// consumers that persist a `RunResult` need owned records).
    #[must_use]
    pub fn to_vec(&self) -> Vec<StepRecord> {
        self.iter().cloned().collect()
    }

    /// A deep, fully-unshared copy: every chunk and record gets a fresh
    /// allocation. This is the pre-refactor snapshot cost, kept for the
    /// [`crate::SnapshotMode::Deep`] A/B baseline.
    #[must_use]
    pub fn deep_unshared(&self) -> Self {
        Trace {
            sealed: self
                .sealed
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|r| Arc::new((**r).clone()))
                        .collect::<Vec<_>>()
                        .into()
                })
                .collect(),
            tail: self.tail.iter().map(|r| Arc::new((**r).clone())).collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a StepRecord;
    type IntoIter = Box<dyn Iterator<Item = &'a StepRecord> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl std::ops::Index<usize> for Trace {
    type Output = StepRecord;

    fn index(&self, i: usize) -> &StepRecord {
        self.get(i).expect("trace index out of bounds")
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Trace {}

impl FromIterator<StepRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = StepRecord>>(iter: I) -> Self {
        let mut t = Trace::new();
        for rec in iter {
            t.push(Arc::new(rec));
        }
        t
    }
}

impl From<Vec<StepRecord>> for Trace {
    fn from(records: Vec<StepRecord>) -> Self {
        records.into_iter().collect()
    }
}

/// Serializes as a flat sequence of records — the same wire format as the
/// `Vec<StepRecord>` it replaced, so persisted journals stay readable
/// across the representation change.
impl Serialize for Trace {
    fn serialize(&self) -> serde::Value {
        serde::Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl Deserialize for Trace {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let mut t = Trace::new();
        for item in v.seq()? {
            t.push(Arc::new(StepRecord::deserialize(item)?));
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::ThreadProgId;
    use crate::program::InstrAddr;
    use crate::thread::ThreadId;

    fn rec(seq: usize) -> Arc<StepRecord> {
        Arc::new(StepRecord {
            seq,
            tid: ThreadId(0),
            at: InstrAddr {
                prog: ThreadProgId(0),
                index: seq,
            },
            accesses: vec![],
            branch_taken: None,
            lock_event: None,
            locks_held: vec![],
            spawned: None,
            next_pc: Some(seq + 1),
        })
    }

    #[test]
    fn push_len_get_roundtrip_across_chunk_boundaries() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        let n = CHUNK * 2 + 7;
        for i in 0..n {
            t.push(rec(i));
            assert_eq!(t.len(), i + 1);
            assert_eq!(t.last().unwrap().seq, i);
        }
        for i in 0..n {
            assert_eq!(t.get(i).unwrap().seq, i);
        }
        assert!(t.get(n).is_none());
        let seqs: Vec<usize> = t.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..n).collect::<Vec<_>>());
        assert_eq!(t.to_vec().len(), n);
    }

    #[test]
    fn clone_shares_chunks_and_stays_isolated() {
        let mut t = Trace::new();
        for i in 0..CHUNK + 3 {
            t.push(rec(i));
        }
        let snap = t.clone();
        // The sealed chunk is shared, not copied.
        assert!(Arc::ptr_eq(&t.sealed[0], &snap.sealed[0]));
        // Appending to the original never shows through the clone.
        for i in 0..CHUNK {
            t.push(rec(1000 + i));
        }
        assert_eq!(snap.len(), CHUNK + 3);
        assert_eq!(snap.last().unwrap().seq, CHUNK + 2);
    }

    #[test]
    fn serde_roundtrip_matches_flat_vec_wire_format() {
        let mut t = Trace::new();
        for i in 0..CHUNK + 5 {
            t.push(rec(i));
        }
        let json = serde_json::to_string(&t).unwrap();
        // Wire-compatible with the Vec<StepRecord> representation it
        // replaced: old journals parse as Trace and vice versa.
        let as_vec: Vec<StepRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(json, serde_json::to_string(&as_vec).unwrap());
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.len(), CHUNK + 5);
    }

    #[test]
    fn index_first_and_from_vec_agree_with_get() {
        let t: Trace = (0..3).map(|i| (*rec(i)).clone()).collect();
        assert_eq!(t.first().unwrap().seq, 0);
        assert_eq!(t[2].seq, 2);
        let v = t.to_vec();
        assert_eq!(Trace::from(v), t);
    }

    #[test]
    fn deep_unshared_is_equal_but_disjoint() {
        let mut t = Trace::new();
        for i in 0..CHUNK + 1 {
            t.push(rec(i));
        }
        let d = t.deep_unshared();
        assert_eq!(d.to_vec(), t.to_vec());
        assert!(!Arc::ptr_eq(&d.sealed[0], &t.sealed[0]));
        assert!(!Arc::ptr_eq(&d.tail[0], &t.tail[0]));
    }
}
