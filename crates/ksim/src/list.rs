//! Kernel linked-list semantics.
//!
//! Linux's `struct list_head` operations are modeled semantically: the list
//! *contents* live in a side table keyed by the list-head address, while
//! every operation still performs a visible memory access to the head
//! address (so list operations participate in data races, exactly like the
//! `fanout_link`/`fanout_unlink` races of CVE-2017-15649, §2.1).
//!
//! Integrity violations raise [`FailureKind::ListCorruption`]:
//!
//! * `list_add` of an item already on the list (the double-insertion the
//!   paper uses to show why enforcing only `B17 ⇒ A12` is a wrong fix);
//! * `list_del` of an item not on the list (`__list_del_entry` corruption).

use crate::{
    addr::Addr,
    failure::FailureKind,
    memory::MemFault, //
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Side table holding the contents of every kernel list, keyed by the
/// address of the list head.
///
/// The table sits behind an [`Arc`], so cloning it (what
/// [`crate::Engine::snapshot`] does) is a reference-count bump; the first
/// mutation after a snapshot copies the map once ([`Arc::make_mut`]).
#[derive(Clone, Debug, Default)]
pub struct Lists {
    lists: Arc<BTreeMap<u64, Vec<u64>>>,
}

impl Lists {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Lists::default()
    }

    /// A deep, fully-unshared copy (the pre-refactor snapshot cost, kept
    /// for the [`crate::SnapshotMode::Deep`] A/B baseline).
    #[must_use]
    pub fn deep_unshared(&self) -> Self {
        Lists {
            lists: Arc::new((*self.lists).clone()),
        }
    }

    /// `list_add(item, head)`.
    ///
    /// # Errors
    ///
    /// [`FailureKind::ListCorruption`] if `item` is already on the list.
    pub fn add(&mut self, head: Addr, item: u64) -> Result<(), MemFault> {
        // Probe before unsharing: a failing add must not copy the table.
        if self.contains(head, item) {
            return Err(MemFault {
                kind: FailureKind::ListCorruption,
                addr: head,
            });
        }
        Arc::make_mut(&mut self.lists)
            .entry(head.0)
            .or_default()
            .push(item);
        Ok(())
    }

    /// `list_del(item, head)`.
    ///
    /// # Errors
    ///
    /// [`FailureKind::ListCorruption`] if `item` is not on the list.
    pub fn del(&mut self, head: Addr, item: u64) -> Result<(), MemFault> {
        let pos = self
            .lists
            .get(&head.0)
            .and_then(|l| l.iter().position(|&x| x == item));
        match pos {
            Some(i) => {
                Arc::make_mut(&mut self.lists)
                    .get_mut(&head.0)
                    .expect("probed above")
                    .remove(i);
                Ok(())
            }
            None => Err(MemFault {
                kind: FailureKind::ListCorruption,
                addr: head,
            }),
        }
    }

    /// Whether `item` is on the list at `head`.
    #[must_use]
    pub fn contains(&self, head: Addr, item: u64) -> bool {
        self.lists.get(&head.0).is_some_and(|l| l.contains(&item))
    }

    /// The first item of the list at `head`, or `None` when empty.
    #[must_use]
    pub fn first(&self, head: Addr) -> Option<u64> {
        self.lists.get(&head.0).and_then(|l| l.first().copied())
    }

    /// Number of items on the list at `head`.
    #[must_use]
    pub fn len(&self, head: Addr) -> usize {
        self.lists.get(&head.0).map_or(0, Vec::len)
    }

    /// Whether the list at `head` is empty.
    #[must_use]
    pub fn is_empty(&self, head: Addr) -> bool {
        self.len(head) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEAD: Addr = Addr(0x1000_0000);

    #[test]
    fn add_contains_del_roundtrip() {
        let mut l = Lists::new();
        assert!(!l.contains(HEAD, 7));
        l.add(HEAD, 7).unwrap();
        assert!(l.contains(HEAD, 7));
        assert_eq!(l.first(HEAD), Some(7));
        l.del(HEAD, 7).unwrap();
        assert!(!l.contains(HEAD, 7));
        assert!(l.is_empty(HEAD));
    }

    #[test]
    fn double_add_corrupts() {
        let mut l = Lists::new();
        l.add(HEAD, 7).unwrap();
        let e = l.add(HEAD, 7).unwrap_err();
        assert_eq!(e.kind, FailureKind::ListCorruption);
    }

    #[test]
    fn del_absent_corrupts() {
        let mut l = Lists::new();
        let e = l.del(HEAD, 7).unwrap_err();
        assert_eq!(e.kind, FailureKind::ListCorruption);
    }

    #[test]
    fn lists_are_independent_per_head() {
        let mut l = Lists::new();
        let other = Addr(0x1000_0008);
        l.add(HEAD, 1).unwrap();
        assert!(!l.contains(other, 1));
        l.add(other, 1).unwrap();
        l.del(HEAD, 1).unwrap();
        assert!(l.contains(other, 1));
    }

    #[test]
    fn first_preserves_fifo_order() {
        let mut l = Lists::new();
        l.add(HEAD, 1).unwrap();
        l.add(HEAD, 2).unwrap();
        assert_eq!(l.first(HEAD), Some(1));
        l.del(HEAD, 1).unwrap();
        assert_eq!(l.first(HEAD), Some(2));
    }
}
