//! Static kernel programs: thread code, globals, and static objects.

use crate::{
    addr::GlobalId,
    instr::{
        Instr,
        InstrMeta,
        ThreadProgId, //
    },
};
use serde::{
    Deserialize,
    Serialize, //
};

/// The static address of one instruction: which thread program, which index.
///
/// This is the simulator's analogue of a kernel code address — the thing the
/// AITIA hypervisor sets breakpoints on and schedules refer to
/// ("Thread A is interleaved to Thread B at address 0x601020", §4.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstrAddr {
    /// The thread program containing the instruction.
    pub prog: ThreadProgId,
    /// The instruction index within the program.
    pub index: usize,
}

impl core::fmt::Debug for InstrAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:?}:{}", self.prog, self.index)
    }
}

impl core::fmt::Display for InstrAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:?}:{}", self.prog, self.index)
    }
}

/// The execution context a thread program models.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadKind {
    /// A system-call thread (entered from user space).
    Syscall {
        /// The system call name (e.g. `"setsockopt"`).
        name: String,
    },
    /// A kernel worker thread (`kworkerd`), invoked via `queue_work`.
    Kworker,
    /// An RCU callback context, invoked via `call_rcu` (softirq for RCU).
    RcuCallback,
    /// A timer callback context.
    Timer,
    /// A hardware interrupt handler. Never spawned by kernel code: the
    /// hypervisor *injects* it at a scheduling point (the paper's §4.6
    /// future-work case, realized here via
    /// [`crate::engine::Engine::inject_irq`]).
    HardIrq,
}

impl ThreadKind {
    /// Whether this is a background (non-syscall) kernel context.
    #[must_use]
    pub fn is_background(&self) -> bool {
        !matches!(self, ThreadKind::Syscall { .. })
    }
}

/// The code of one thread: a straight-line instruction array with resolved
/// branch targets, plus per-instruction reporting metadata.
#[derive(Clone, Debug)]
pub struct ThreadProg {
    /// Short thread name (e.g. `"A"`, `"kworker"`).
    pub name: String,
    /// The execution context this program models.
    pub kind: ThreadKind,
    /// The instructions.
    pub instrs: Vec<Instr>,
    /// Parallel metadata array (`meta[i]` describes `instrs[i]`).
    pub meta: Vec<InstrMeta>,
    /// Number of virtual registers the program uses.
    pub reg_count: u16,
}

impl ThreadProg {
    /// The display name of instruction `index` (`"A2"`-style if named,
    /// otherwise `name:index`).
    #[must_use]
    pub fn instr_name(&self, index: usize) -> String {
        match self.meta.get(index).and_then(|m| m.name.as_deref()) {
            Some(n) => n.to_string(),
            None => format!("{}:{}", self.name, index),
        }
    }
}

/// Initial value of a global variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GlobalInit {
    /// A constant (0 models NULL for pointer-typed globals).
    Const(u64),
    /// A pointer to the static object with the given index — the engine
    /// allocates static objects at reset and patches their base addresses in.
    StaticPtr(usize),
}

/// A declared global variable.
#[derive(Clone, Debug)]
pub struct GlobalDecl {
    /// Source-level name (e.g. `"po->running"`).
    pub name: String,
    /// Initial value.
    pub init: GlobalInit,
}

/// A static heap object allocated before the run starts (e.g. the socket
/// object both threads of CVE-2017-15649 share).
#[derive(Clone, Debug)]
pub struct StaticObj {
    /// Source-level name (e.g. `"sk"`).
    pub name: String,
    /// Object size in bytes.
    pub size: u64,
}

/// A complete kernel scenario: globals, static objects, thread programs, and
/// which programs start as runnable syscall threads.
///
/// This corresponds to one *slice* of the execution history (§4.2): the 2–3
/// concurrently executing contexts AITIA reproduces and diagnoses together.
#[derive(Clone, Debug)]
pub struct Program {
    /// Scenario name (e.g. `"CVE-2017-15649"`).
    pub name: String,
    /// Declared globals, indexed by [`GlobalId`].
    pub globals: Vec<GlobalDecl>,
    /// Static objects allocated at reset.
    pub static_objs: Vec<StaticObj>,
    /// All thread programs, indexed by [`ThreadProgId`].
    pub progs: Vec<ThreadProg>,
    /// Programs started as initial (syscall) threads, in invocation order.
    pub initial: Vec<ThreadProgId>,
    /// Hardware-IRQ handler programs the hypervisor may inject at any
    /// scheduling point (they are never spawned by kernel instructions).
    pub irq_handlers: Vec<ThreadProgId>,
    /// Whether an end-of-run leak check runs over `must_free` allocations.
    pub check_leaks: bool,
}

impl Program {
    /// Access a thread program by id.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range (a builder bug, not a user error).
    #[must_use]
    pub fn prog(&self, id: ThreadProgId) -> &ThreadProg {
        &self.progs[id.0 as usize]
    }

    /// The instruction at a static address, if it exists.
    #[must_use]
    pub fn instr_at(&self, at: InstrAddr) -> Option<&Instr> {
        self.progs.get(at.prog.0 as usize)?.instrs.get(at.index)
    }

    /// Reporting metadata for a static address, if it exists.
    #[must_use]
    pub fn meta_at(&self, at: InstrAddr) -> Option<&InstrMeta> {
        self.progs.get(at.prog.0 as usize)?.meta.get(at.index)
    }

    /// The display name of the instruction at `at` (e.g. `"A2"`).
    #[must_use]
    pub fn instr_name(&self, at: InstrAddr) -> String {
        match self.progs.get(at.prog.0 as usize) {
            Some(p) => p.instr_name(at.index),
            None => format!("{at}"),
        }
    }

    /// The name of a declared global.
    #[must_use]
    pub fn global_name(&self, id: GlobalId) -> &str {
        &self.globals[id.0 as usize].name
    }

    /// Total instruction count across all thread programs.
    #[must_use]
    pub fn total_instrs(&self) -> usize {
        self.progs.iter().map(|p| p.instrs.len()).sum()
    }

    /// Validates internal consistency (branch targets in range, metadata
    /// arrays parallel, initial threads are syscalls).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        for (pi, p) in self.progs.iter().enumerate() {
            if p.instrs.len() != p.meta.len() {
                return Err(format!("prog {pi}: meta array not parallel to instrs"));
            }
            for (i, ins) in p.instrs.iter().enumerate() {
                let target = match ins {
                    Instr::Jmp { target } | Instr::JmpIf { target, .. } => Some(*target),
                    _ => None,
                };
                if let Some(t) = target {
                    if t >= p.instrs.len() {
                        return Err(format!(
                            "prog {pi} instr {i}: branch target {t} out of range"
                        ));
                    }
                }
                let spawn = match ins {
                    Instr::QueueWork { prog, .. } | Instr::CallRcu { prog, .. } => Some(*prog),
                    _ => None,
                };
                if let Some(sp) = spawn {
                    if sp.0 as usize >= self.progs.len() {
                        return Err(format!(
                            "prog {pi} instr {i}: spawn target {sp:?} out of range"
                        ));
                    }
                    if !self.progs[sp.0 as usize].kind.is_background() {
                        return Err(format!(
                            "prog {pi} instr {i}: spawn target {sp:?} is not a background program"
                        ));
                    }
                }
            }
            match p.instrs.last() {
                Some(Instr::Ret) | Some(Instr::Jmp { .. }) => {}
                _ => return Err(format!("prog {pi}: must end with Ret or Jmp")),
            }
        }
        for id in &self.initial {
            if id.0 as usize >= self.progs.len() {
                return Err(format!("initial thread {id:?} out of range"));
            }
            if self.progs[id.0 as usize].kind.is_background() {
                return Err(format!("initial thread {id:?} is a background program"));
            }
        }
        for id in &self.irq_handlers {
            if id.0 as usize >= self.progs.len() {
                return Err(format!("irq handler {id:?} out of range"));
            }
            if self.progs[id.0 as usize].kind != ThreadKind::HardIrq {
                return Err(format!("irq handler {id:?} is not a HardIrq program"));
            }
        }
        if self.initial.is_empty() {
            return Err("no initial threads".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{
        Cond,
        Operand, //
    };

    fn tiny_prog(instrs: Vec<Instr>) -> Program {
        let n = instrs.len();
        Program {
            name: "t".into(),
            globals: vec![],
            static_objs: vec![],
            progs: vec![ThreadProg {
                name: "A".into(),
                kind: ThreadKind::Syscall { name: "x".into() },
                instrs,
                meta: vec![InstrMeta::default(); n],
                reg_count: 1,
            }],
            initial: vec![ThreadProgId(0)],
            irq_handlers: vec![],
            check_leaks: false,
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        let p = tiny_prog(vec![Instr::Nop, Instr::Ret]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_branch() {
        let p = tiny_prog(vec![
            Instr::JmpIf {
                cond: Cond {
                    lhs: Operand::Const(0),
                    op: crate::instr::CmpOp::Eq,
                    rhs: Operand::Const(0),
                },
                target: 99,
            },
            Instr::Ret,
        ]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_terminator() {
        let p = tiny_prog(vec![Instr::Nop]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_background_initial_thread() {
        let mut p = tiny_prog(vec![Instr::Ret]);
        p.progs[0].kind = ThreadKind::Kworker;
        assert!(p.validate().is_err());
    }

    #[test]
    fn instr_names_fall_back_to_index() {
        let p = tiny_prog(vec![Instr::Nop, Instr::Ret]);
        assert_eq!(
            p.instr_name(InstrAddr {
                prog: ThreadProgId(0),
                index: 1
            }),
            "A:1"
        );
    }
}
