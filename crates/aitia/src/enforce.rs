//! Schedule enforcement — the AITIA-hypervisor equivalent (§4.4).
//!
//! The enforcer drives an execution backend (any
//! [`crate::backend::ExecBackend`]; [`ksim::Engine`] is the default) so
//! that the interleaving orders of
//! a [`Schedule`] hold: it runs exactly one thread at a time, suspends it
//! when it reaches a scheduling point (the breakpoint trap), and resumes the
//! point's target. Suspension is purely external — a suspended thread keeps
//! its kernel state consistent, mirroring the paper's trampoline.
//!
//! Two failure modes of enforcement carry diagnostic meaning and are
//! reported rather than hidden:
//!
//! * **disappeared points** — the anchor instruction was never reached
//!   because a race-steered control flow took another path; Causality
//!   Analysis reads these as "the data race did not occur";
//! * **forced resumes** — the running thread blocked on a lock held by a
//!   suspended thread; the enforcer resumes the holder until it releases
//!   (the §3.4 liveness rule that motivates flipping whole critical
//!   sections).

use crate::{
    backend::{
        BackendKind,
        BackendSnapshot,
        ExecBackend, //
    },
    schedule::{
        Anchor,
        SchedPoint,
        Schedule,
        ThreadSel, //
    },
};
use ksim::{
    Failure,
    InstrAddr,
    LockId,
    StepOutcome,
    ThreadId,
    ThreadStatus,
    Trace, //
};
use serde::{
    Deserialize,
    Serialize, //
};
use std::collections::HashMap;
use std::sync::{
    Arc,
    Mutex, //
};

/// Enforcement limits.
#[derive(Clone, Copy, Debug)]
pub struct EnforceConfig {
    /// Maximum engine steps before the run is abandoned (livelock guard).
    pub step_budget: usize,
}

impl Default for EnforceConfig {
    fn default() -> Self {
        EnforceConfig {
            step_budget: 200_000,
        }
    }
}

/// A forced resume of a suspended lock holder (liveness, §3.4).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForcedResume {
    /// The thread that blocked.
    pub blocked: ThreadSel,
    /// The suspended holder that was resumed.
    pub holder: ThreadSel,
    /// The contended lock.
    pub lock: LockId,
    /// Trace position at which the contention occurred.
    pub seq: usize,
}

/// Final state of one thread after a run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadFinal {
    /// Stable selector of the thread.
    pub sel: ThreadSel,
    /// Scheduling status at run end.
    pub status: ThreadStatus,
    /// Next instruction the thread was parked at (`None` when exited).
    pub next: Option<InstrAddr>,
}

/// Classification of one run's observable outcome (DESIGN.md §5).
///
/// Enforced schedules on real VMs do not just pass or fail: race-steered
/// control flow can make an awaited instruction never arrive (the schedule
/// *diverges*), a livelock can eat the whole step budget (the run *times
/// out*), and the VM itself can die under the run (the exec layer's
/// *crashed* — never produced by enforcement itself). Every consumer —
/// LIFS round folding, causality flip verdicts, the manager's fan-out —
/// branches on this taxonomy instead of re-deriving it from raw fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The run completed with no failure and every scheduling point fired.
    Passed,
    /// A failure manifested.
    Failed,
    /// The run completed without failing, but at least one scheduling point
    /// never fired — race-steered control flow took another path, so the
    /// enforced interleaving was not realized.
    Diverged,
    /// The step budget ran out (livelock / hang). A timed-out run proves
    /// nothing in either direction: it neither passed nor failed.
    Timeout,
    /// The worker VM died under the run (exec-layer fault injection or a
    /// real crash). Only [`crate::exec`] produces this variant;
    /// [`RunResult::outcome`] never returns it.
    Crashed,
}

impl RunOutcome {
    /// Whether the run's result carries no diagnostic signal: the schedule
    /// was never actually driven to completion, so neither "failed" nor
    /// "did not fail" may be concluded from it.
    #[must_use]
    pub fn is_inconclusive(self) -> bool {
        matches!(self, RunOutcome::Timeout | RunOutcome::Crashed)
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RunOutcome::Passed => "passed",
            RunOutcome::Failed => "failed",
            RunOutcome::Diverged => "diverged",
            RunOutcome::Timeout => "timeout",
            RunOutcome::Crashed => "crashed",
        };
        f.write_str(s)
    }
}

/// The observable outcome of one enforced run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// The executed trace (total order), structurally shared with the
    /// engine that produced it — cloning a [`RunResult`] bumps reference
    /// counts instead of copying records.
    pub trace: Trace,
    /// The manifested failure, if any.
    pub failure: Option<Failure>,
    /// `triggered[i]` — whether scheduling point `i` fired.
    pub triggered: Vec<bool>,
    /// Forced lock-holder resumes.
    pub forced: Vec<ForcedResume>,
    /// Steps executed.
    pub steps: usize,
    /// Whether the step budget ran out (livelock).
    pub budget_exhausted: bool,
    /// Final thread states.
    pub threads: Vec<ThreadFinal>,
}

impl RunResult {
    /// Indices of scheduling points that never fired (race-steered
    /// control-flow evidence).
    #[must_use]
    pub fn disappeared(&self) -> Vec<usize> {
        self.triggered
            .iter()
            .enumerate()
            .filter(|(_, &t)| !t)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether the run completed without any failure.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.failure.is_none() && !self.budget_exhausted
    }

    /// Classifies this run. Priority: a manifested failure wins (a failing
    /// run is diagnostic signal even if the budget also ran out), then
    /// budget exhaustion, then divergence (some point never fired), then a
    /// clean pass. Never [`RunOutcome::Crashed`] — VM death is observed by
    /// the exec layer, not by enforcement.
    #[must_use]
    pub fn outcome(&self) -> RunOutcome {
        if self.failure.is_some() {
            RunOutcome::Failed
        } else if self.budget_exhausted {
            RunOutcome::Timeout
        } else if self.triggered.iter().any(|&t| !t) {
            RunOutcome::Diverged
        } else {
            RunOutcome::Passed
        }
    }
}

/// Live enforcement-loop state, extracted so a run can *resume* from a
/// snapshot taken at a point boundary (the executor's snapshot-prefix
/// cache) instead of always starting from a fresh boot.
struct LoopState {
    triggered: Vec<bool>,
    forced: Vec<ForcedResume>,
    steps: usize,
    budget_exhausted: bool,
    point_idx: usize,
    exec_counts: HashMap<(ThreadId, InstrAddr), u32>,
    current: Option<ThreadId>,
    /// Cursor into the schedule's intended segment sequence (when present).
    seg_cursor: usize,
    /// Consecutive forced-resume hops without an executed step: a chain
    /// longer than the thread count is a lock cycle (ABBA deadlock).
    forced_chain: usize,
    /// Whether every scheduling decision so far was dictated by the
    /// schedule's points alone (no fallback/segment consultation). Only
    /// clean prefixes are deposited in the snapshot cache: a fallback
    /// decision depends on schedule parts *outside* the point prefix, so
    /// the resulting state would not be reusable across sibling schedules.
    clean: bool,
    /// Points already checkpointed this run (avoids duplicate deposits).
    checkpointed: usize,
}

impl LoopState {
    fn fresh(engine: &dyn ExecBackend, schedule: &Schedule) -> LoopState {
        let current = schedule
            .start
            .and_then(|s| s.resolve(engine))
            .or_else(|| engine.runnable().first().copied());
        LoopState {
            triggered: vec![false; schedule.points.len()],
            forced: Vec::new(),
            steps: 0,
            budget_exhausted: false,
            point_idx: 0,
            exec_counts: HashMap::new(),
            current,
            seg_cursor: 0,
            forced_chain: 0,
            clean: true,
            checkpointed: 0,
        }
    }
}

/// An engine checkpoint plus the enforcement-loop state at the moment the
/// `consumed`-th scheduling point was consumed. Restoring both resumes the
/// run exactly where a from-scratch execution of the same prefix would be.
#[derive(Clone)]
struct SavedPrefix {
    consumed: usize,
    snapshot: BackendSnapshot,
    triggered: Vec<bool>,
    forced: Vec<ForcedResume>,
    steps: usize,
    exec_counts: HashMap<(ThreadId, InstrAddr), u32>,
    current: Option<ThreadId>,
    forced_chain: usize,
}

impl SavedPrefix {
    fn resume(&self, schedule: &Schedule) -> LoopState {
        let mut triggered = self.triggered.clone();
        triggered.resize(schedule.points.len(), false);
        LoopState {
            triggered,
            forced: self.forced.clone(),
            steps: self.steps,
            budget_exhausted: false,
            point_idx: self.consumed,
            exec_counts: self.exec_counts.clone(),
            current: self.current,
            seg_cursor: 0,
            forced_chain: self.forced_chain,
            clean: true,
            checkpointed: self.consumed,
        }
    }
}

/// A small worker-local LRU of engine checkpoints keyed by schedule-point
/// prefix.
///
/// LIFS explores many sibling schedules that differ only in their final
/// preemptions; the shared prefix of scheduling points produces — by
/// sequential consistency — bit-identical engine states. Instead of
/// rebooting and replaying the prefix for every sibling, a worker restores
/// the nearest cached ancestor and executes only the divergent suffix.
///
/// Invariants (see DESIGN.md §5):
///
/// * only **clean** prefixes are cached — every control transfer up to the
///   checkpoint was dictated by the point list itself, never by the
///   fallback picker or segment cursor, so the state depends on nothing
///   but `(start, points[..k], step_budget)`;
/// * schedules carrying a segment sequence are never cached (the segment
///   cursor consults the whole schedule);
/// * the cache is only valid for a single program — callers must
///   [`SnapshotCache::clear`] it when their engine switches programs.
pub struct SnapshotCache {
    cap: usize,
    /// LRU order: least-recently-used first.
    entries: Vec<(u64, SavedPrefix)>,
    hits: u64,
    misses: u64,
    forest_hits: u64,
}

impl SnapshotCache {
    /// Creates a cache holding at most `cap` checkpoints (0 disables it).
    #[must_use]
    pub fn new(cap: usize) -> SnapshotCache {
        SnapshotCache {
            cap,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            forest_hits: 0,
        }
    }

    /// Drops every checkpoint (required when the engine switches programs).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached checkpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no checkpoints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Runs that restored from a cached ancestor prefix.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Runs that found no cached ancestor and booted from scratch.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Runs that restored a prefix published by *another* worker through a
    /// shared [`SnapshotForest`] — the checkpoint was absent from this
    /// worker's local LRU. Disjoint from [`SnapshotCache::hits`].
    #[must_use]
    pub fn forest_hits(&self) -> u64 {
        self.forest_hits
    }

    fn get(&mut self, key: u64) -> Option<SavedPrefix> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let saved = entry.1.clone();
        self.entries.push(entry);
        Some(saved)
    }

    fn put(&mut self, key: u64, saved: SavedPrefix) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        self.entries.push((key, saved));
        while self.entries.len() > self.cap {
            self.entries.remove(0);
        }
    }
}

/// Hash of everything a clean prefix's engine state can depend on: the
/// start selector, the first `k` scheduling points (all fields), and the
/// step budget.
fn prefix_key(schedule: &Schedule, k: usize, cfg: &EnforceConfig) -> u64 {
    use std::hash::{
        Hash,
        Hasher, //
    };
    let mut h = std::collections::hash_map::DefaultHasher::new();
    cfg.step_budget.hash(&mut h);
    match schedule.start {
        Some(s) => (1u8, s.prog.0, s.occurrence).hash(&mut h),
        None => 0u8.hash(&mut h),
    }
    k.hash(&mut h);
    for p in &schedule.points[..k] {
        (p.thread.prog.0, p.thread.occurrence).hash(&mut h);
        (p.at.prog.0, p.at.index).hash(&mut h);
        p.nth.hash(&mut h);
        u8::from(p.when == Anchor::After).hash(&mut h);
        (p.switch_to.prog.0, p.switch_to.occurrence).hash(&mut h);
    }
    h.finish()
}

/// Canonical fingerprint of everything an execution's outcome can depend
/// on: the step budget and the *entire* schedule — start selector, every
/// scheduling point (all fields), the fallback list, and the segment
/// sequence. Enforcement is deterministic, so two jobs over the same
/// program whose fingerprints (and, verified by the caller, full
/// schedules) agree drive the engine identically and their outputs are
/// interchangeable — the keying rule of the exec-layer memo table.
pub(crate) fn schedule_fingerprint(schedule: &Schedule, cfg: &EnforceConfig) -> u64 {
    use std::hash::{
        Hash,
        Hasher, //
    };
    let mut h = std::collections::hash_map::DefaultHasher::new();
    cfg.step_budget.hash(&mut h);
    match schedule.start {
        Some(s) => (1u8, s.prog.0, s.occurrence).hash(&mut h),
        None => 0u8.hash(&mut h),
    }
    schedule.points.len().hash(&mut h);
    for p in &schedule.points {
        (p.thread.prog.0, p.thread.occurrence).hash(&mut h);
        (p.at.prog.0, p.at.index).hash(&mut h);
        p.nth.hash(&mut h);
        u8::from(p.when == Anchor::After).hash(&mut h);
        (p.switch_to.prog.0, p.switch_to.occurrence).hash(&mut h);
    }
    schedule.fallback.len().hash(&mut h);
    for s in &schedule.fallback {
        (s.prog.0, s.occurrence).hash(&mut h);
    }
    schedule.segments.len().hash(&mut h);
    for s in &schedule.segments {
        (s.prog.0, s.occurrence).hash(&mut h);
    }
    h.finish()
}

/// One forest entry: prefix hash, backend kind, pinned program identity,
/// and the checkpoint itself.
type ForestEntry = (u64, BackendKind, Arc<ksim::Program>, SavedPrefix);

/// A process-wide, thread-safe store of engine checkpoints — the shared
/// counterpart of the worker-local [`SnapshotCache`].
///
/// Workers publish every checkpoint they deposit locally, so any worker —
/// in any executor — enforcing the same program can resume from the
/// longest clean prefix *anyone* has built, not just its own recent
/// history. [`BackendSnapshot`] handles are `Arc`-backed, so sharing is a
/// reference-count bump, never a deep copy.
///
/// Entries are keyed by the prefix hash, program identity (`Arc::ptr_eq`),
/// *and* backend kind: the held `Arc<Program>` pins the allocation, so a
/// live entry's pointer can never alias a recycled address, and the
/// backend key guarantees a worker never restores a foreign backend's
/// opaque snapshot (the trait's snapshot-affinity invariant). Unlike the
/// local cache, the forest never needs clearing when an engine switches
/// programs.
pub struct SnapshotForest {
    cap: usize,
    /// LRU order: least-recently-used first.
    entries: Mutex<Vec<ForestEntry>>,
}

impl SnapshotForest {
    /// Creates a forest holding at most `cap` checkpoints (0 disables it).
    #[must_use]
    pub fn new(cap: usize) -> SnapshotForest {
        SnapshotForest {
            cap,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Number of checkpoints currently held.
    ///
    /// # Panics
    ///
    /// Panics when the interior lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the forest holds no checkpoints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(
        &self,
        backend: BackendKind,
        program: &Arc<ksim::Program>,
        key: u64,
    ) -> Option<SavedPrefix> {
        let mut entries = self.entries.lock().unwrap();
        let pos = entries
            .iter()
            .position(|(k, b, p, _)| *k == key && *b == backend && Arc::ptr_eq(p, program))?;
        let entry = entries.remove(pos);
        let saved = entry.3.clone();
        entries.push(entry);
        Some(saved)
    }

    fn put(
        &self,
        key: u64,
        backend: BackendKind,
        program: &Arc<ksim::Program>,
        saved: SavedPrefix,
    ) {
        if self.cap == 0 {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        if let Some(pos) = entries
            .iter()
            .position(|(k, b, p, _)| *k == key && *b == backend && Arc::ptr_eq(p, program))
        {
            entries.remove(pos);
        }
        entries.push((key, backend, Arc::clone(program), saved));
        while entries.len() > self.cap {
            entries.remove(0);
        }
    }
}

/// The checkpoint sinks a driven run deposits into: the worker-local LRU
/// and, when sharing is on, the process-wide forest.
struct CacheCtx<'a> {
    cache: &'a mut SnapshotCache,
    forest: Option<&'a SnapshotForest>,
}

/// Deposits a checkpoint for the just-consumed point prefix, when eligible.
fn maybe_checkpoint(
    engine: &dyn ExecBackend,
    schedule: &Schedule,
    cfg: &EnforceConfig,
    state: &mut LoopState,
    sinks: &mut Option<CacheCtx<'_>>,
) {
    let Some(sinks) = sinks.as_mut() else {
        return;
    };
    if !state.clean || state.point_idx <= state.checkpointed || engine.halted() {
        return;
    }
    let k = state.point_idx;
    let key = prefix_key(schedule, k, cfg);
    let saved = SavedPrefix {
        consumed: k,
        snapshot: engine.snapshot(),
        triggered: state.triggered[..k].to_vec(),
        forced: state.forced.clone(),
        steps: state.steps,
        exec_counts: state.exec_counts.clone(),
        current: state.current,
        forced_chain: state.forced_chain,
    };
    if let Some(forest) = sinks.forest {
        forest.put(key, engine.kind(), engine.program(), saved.clone());
    }
    sinks.cache.put(key, saved);
    state.checkpointed = k;
}

/// Runs `engine` under `schedule`.
///
/// The engine should be freshly booted (or restored); the run consumes it —
/// inspect the returned [`RunResult`] and the engine afterwards.
#[must_use]
pub fn run(engine: &mut dyn ExecBackend, schedule: &Schedule, cfg: &EnforceConfig) -> RunResult {
    let mut state = LoopState::fresh(engine, schedule);
    drive(engine, schedule, cfg, &mut state, &mut None)
}

/// Runs `engine` under `schedule` through a worker-local snapshot-prefix
/// cache.
///
/// Unlike [`run`], the engine need *not* be freshly booted: this function
/// either restores the longest cached ancestor of the schedule's point
/// prefix or reboots the engine itself. While a run consumes scheduling
/// points cleanly it deposits a checkpoint after each, so sibling schedules
/// sharing the prefix skip straight past it. The returned [`RunResult`] is
/// bit-for-bit what [`run`] on a fresh engine would produce.
///
/// Schedules that carry a segment sequence execute uncached: the segment
/// cursor makes control flow depend on the whole schedule rather than the
/// point prefix, so such states are not reusable across schedules.
#[must_use]
pub fn run_cached(
    engine: &mut dyn ExecBackend,
    schedule: &Schedule,
    cfg: &EnforceConfig,
    cache: &mut SnapshotCache,
) -> RunResult {
    run_cached_shared(engine, schedule, cfg, cache, None)
}

/// [`run_cached`] with an optional process-wide [`SnapshotForest`].
///
/// The lookup prefers the worker's local LRU (no lock); on a local miss it
/// consults the forest for the same prefix key under the same program
/// (identity-checked), counts a *forest hit*, backfills the local LRU, and
/// resumes from the shared checkpoint. Every checkpoint the run deposits
/// locally is also published to the forest, so sibling workers — including
/// workers of other executors over the same program — skip the prefix too.
/// The returned [`RunResult`] is bit-for-bit what [`run`] on a fresh
/// engine would produce.
#[must_use]
pub fn run_cached_shared(
    engine: &mut dyn ExecBackend,
    schedule: &Schedule,
    cfg: &EnforceConfig,
    cache: &mut SnapshotCache,
    forest: Option<&SnapshotForest>,
) -> RunResult {
    if cache.cap == 0 || !schedule.segments.is_empty() || schedule.points.is_empty() {
        engine.reboot();
        let mut state = LoopState::fresh(engine, schedule);
        return drive(engine, schedule, cfg, &mut state, &mut None);
    }
    for k in (1..=schedule.points.len()).rev() {
        let key = prefix_key(schedule, k, cfg);
        let (saved, from_forest) = match cache.get(key) {
            Some(s) => (Some(s), false),
            None => (
                forest.and_then(|f| f.get(engine.kind(), engine.program(), key)),
                true, //
            ),
        };
        if let Some(saved) = saved {
            if from_forest {
                cache.forest_hits += 1;
                cache.put(key, saved.clone());
            } else {
                cache.hits += 1;
            }
            engine.restore(&saved.snapshot);
            let mut state = saved.resume(schedule);
            let mut sinks = Some(CacheCtx { cache, forest });
            return drive(engine, schedule, cfg, &mut state, &mut sinks);
        }
    }
    cache.misses += 1;
    engine.reboot();
    let mut state = LoopState::fresh(engine, schedule);
    let mut sinks = Some(CacheCtx { cache, forest });
    drive(engine, schedule, cfg, &mut state, &mut sinks)
}

fn drive(
    engine: &mut dyn ExecBackend,
    schedule: &Schedule,
    cfg: &EnforceConfig,
    state: &mut LoopState,
    sinks: &mut Option<CacheCtx<'_>>,
) -> RunResult {
    loop {
        if engine.halted() {
            if engine.failure().is_some() {
                break;
            }
            // Every listed thread finished without failing, but the
            // schedule may still name an unfired IRQ handler (LIFS's
            // handler probe): consult the fallback once, which injects it.
            state.clean = false;
            match pick_next(engine, schedule, &mut state.seg_cursor, None) {
                Some(t) => state.current = Some(t),
                None => break,
            }
        }
        if state.steps >= cfg.step_budget {
            state.budget_exhausted = true;
            break;
        }

        // Skip points whose thread can never reach its anchor any more.
        while state.point_idx < schedule.points.len() {
            let p = &schedule.points[state.point_idx];
            let gone = match p.thread.resolve(engine) {
                Some(tid) => engine
                    .thread(tid)
                    .map(ksim::Thread::is_done)
                    .unwrap_or(true),
                // Never spawned and nothing left to spawn it: only treat as
                // gone when no thread is runnable-or-blocked that could still
                // spawn it. Conservatively, only skip when the engine halted
                // for that thread — i.e. keep waiting unless all runnables
                // are gone, which the outer loop handles.
                None => false,
            };
            if gone {
                // Disappeared: preserve downstream intent by handing control
                // to the point's target.
                state.point_idx += 1;
                if let Some(t) = schedule.points[state.point_idx - 1]
                    .switch_to
                    .resolve(engine)
                {
                    if engine.thread(t).is_some_and(ksim::Thread::is_runnable) {
                        state.current = Some(t);
                    }
                }
            } else {
                break;
            }
        }
        maybe_checkpoint(engine, schedule, cfg, state, sinks);

        // Validate current; re-pick when it finished.
        let cur = match state.current {
            Some(t) if engine.thread(t).is_some_and(ksim::Thread::is_runnable) => t,
            Some(t)
                if engine
                    .thread(t)
                    .is_some_and(|th| matches!(th.status, ThreadStatus::Blocked { .. })) =>
            {
                // Blocked on a lock whose holder is suspended: forced resume.
                let ThreadStatus::Blocked { on } = engine.thread(t).unwrap().status else {
                    unreachable!()
                };
                match engine.lock_holder(on) {
                    Some(h) if h != t => {
                        state.forced_chain += 1;
                        if state.forced_chain > engine.threads().len() {
                            // A cycle of lock holders: deadlock.
                            break;
                        }
                        state.forced.push(ForcedResume {
                            blocked: ThreadSel::of(engine, t),
                            holder: ThreadSel::of(engine, h),
                            lock: on,
                            seq: engine.trace().len(),
                        });
                        state.current = Some(h);
                        continue;
                    }
                    _ => {
                        // No holder (stale block) — retry the thread.
                        t
                    }
                }
            }
            _ => {
                state.clean = false;
                match pick_next(engine, schedule, &mut state.seg_cursor, None) {
                    Some(t) => {
                        state.current = Some(t);
                        t
                    }
                    None => break,
                }
            }
        };

        // Before-anchored scheduling point?
        if state.point_idx < schedule.points.len() {
            let p = &schedule.points[state.point_idx];
            if p.when == Anchor::Before && matches_point(engine, &state.exec_counts, cur, p) {
                state.triggered[state.point_idx] = true;
                state.point_idx += 1;
                state.current = switch_target(
                    engine,
                    schedule,
                    p,
                    cur,
                    &mut state.seg_cursor,
                    &mut state.clean,
                );
                maybe_checkpoint(engine, schedule, cfg, state, sinks);
                continue;
            }
        }

        match engine.step(cur) {
            Ok(StepOutcome::Executed(rec))
            | Ok(StepOutcome::Exited(rec))
            | Ok(StepOutcome::Failed(rec)) => {
                state.steps += 1;
                *state.exec_counts.entry((cur, rec.at)).or_insert(0) += 1;
                // After-anchored scheduling point?
                if state.point_idx < schedule.points.len() {
                    let p = &schedule.points[state.point_idx];
                    if p.when == Anchor::After
                        && ThreadSel::of(engine, cur) == p.thread
                        && rec.at == p.at
                        && state.exec_counts.get(&(cur, p.at)).copied().unwrap_or(0) == p.nth + 1
                    {
                        state.triggered[state.point_idx] = true;
                        state.point_idx += 1;
                        state.current = switch_target(
                            engine,
                            schedule,
                            p,
                            cur,
                            &mut state.seg_cursor,
                            &mut state.clean,
                        );
                        maybe_checkpoint(engine, schedule, cfg, state, sinks);
                    }
                }
            }
            Ok(StepOutcome::Blocked { on }) => {
                // Lock contention: resume the holder until it releases.
                match engine.lock_holder(on) {
                    Some(h) if h != cur => {
                        state.forced.push(ForcedResume {
                            blocked: ThreadSel::of(engine, cur),
                            holder: ThreadSel::of(engine, h),
                            lock: on,
                            seq: engine.trace().len(),
                        });
                        state.current = Some(h);
                    }
                    _ => {
                        // Cannot make progress at all.
                        break;
                    }
                }
            }
            Err(_) => {
                state.clean = false;
                state.current = pick_next(engine, schedule, &mut state.seg_cursor, None);
                if state.current.is_none() {
                    break;
                }
            }
        }
    }

    // The kernel watchdog: no runnable thread, blocked threads remain —
    // an ABBA-style deadlock manifests as a hung-task report.
    let deadlock_cycle = state.forced_chain > engine.threads().len();
    let watchdog = if engine.failure().is_none() && (engine.deadlocked() || deadlock_cycle) {
        engine
            .threads()
            .iter()
            .find(|t| matches!(t.status, ThreadStatus::Blocked { .. }))
            .map(|t| ksim::Failure {
                kind: ksim::FailureKind::HungTask,
                at: engine.next_instr(t.id).unwrap_or(InstrAddr {
                    prog: t.prog,
                    index: t.pc,
                }),
                tid: t.id,
                addr: None,
                message: "blocked task never scheduled (watchdog)".into(),
            })
    } else {
        None
    };
    let threads = engine
        .threads()
        .iter()
        .map(|t| ThreadFinal {
            sel: ThreadSel {
                prog: t.prog,
                occurrence: t.occurrence,
            },
            status: t.status,
            next: engine.next_instr(t.id),
        })
        .collect();

    // The pre-refactor substrate materialized an owned Vec<StepRecord>
    // here (one deep copy of every record per run); the Deep A/B baseline
    // re-enacts that cost so bench-throughput measures the full delta.
    if engine.deep_snapshots() {
        std::hint::black_box(engine.trace().to_vec());
    }
    RunResult {
        trace: engine.trace().clone(),
        failure: engine.failure().cloned().or(watchdog),
        triggered: std::mem::take(&mut state.triggered),
        forced: std::mem::take(&mut state.forced),
        steps: state.steps,
        budget_exhausted: state.budget_exhausted,
        threads,
    }
}

fn matches_point(
    engine: &dyn ExecBackend,
    exec_counts: &HashMap<(ThreadId, InstrAddr), u32>,
    cur: ThreadId,
    p: &SchedPoint,
) -> bool {
    ThreadSel::of(engine, cur) == p.thread
        && engine.next_instr(cur) == Some(p.at)
        && exec_counts.get(&(cur, p.at)).copied().unwrap_or(0) == p.nth
}

fn switch_target(
    engine: &mut dyn ExecBackend,
    schedule: &Schedule,
    p: &SchedPoint,
    cur: ThreadId,
    seg_cursor: &mut usize,
    clean: &mut bool,
) -> Option<ThreadId> {
    advance_cursor_to(schedule, seg_cursor, p.switch_to);
    match resolve_or_inject(engine, p.switch_to) {
        Some(t) if engine.thread(t).is_some_and(ksim::Thread::is_runnable) => Some(t),
        _ => {
            *clean = false;
            pick_next(engine, schedule, seg_cursor, Some(cur))
        }
    }
}

/// Resolves a selector, *injecting* the hardware-IRQ handler it names when
/// it has not fired yet — the hypervisor raising the interrupt at this
/// scheduling point (the paper's §4.6 case).
fn resolve_or_inject(engine: &mut dyn ExecBackend, sel: ThreadSel) -> Option<ThreadId> {
    if let Some(t) = sel.resolve(engine) {
        return Some(t);
    }
    if engine.program().irq_handlers.contains(&sel.prog) {
        return engine.inject_irq(sel.prog).ok();
    }
    None
}

/// Moves the segment cursor to the next segment of `sel` at or after its
/// current position (a triggered point realizes that segment boundary).
fn advance_cursor_to(schedule: &Schedule, seg_cursor: &mut usize, sel: ThreadSel) {
    if let Some(pos) = schedule.segments[(*seg_cursor).min(schedule.segments.len())..]
        .iter()
        .position(|&s| s == sel)
    {
        *seg_cursor += pos;
    }
}

/// Picks the next thread at an unanchored boundary.
///
/// Preference order: the next *runnable* segment of the schedule's intended
/// order (skipping finished threads), then runnable background threads the
/// schedule never mentions (freshly spawned work runs when its spawner
/// yields, the paper's serial search orders), then the flat fallback list,
/// then any runnable thread.
fn pick_next(
    engine: &mut dyn ExecBackend,
    schedule: &Schedule,
    seg_cursor: &mut usize,
    exclude: Option<ThreadId>,
) -> Option<ThreadId> {
    let start = (*seg_cursor).min(schedule.segments.len());
    for off in 0..schedule.segments.len().saturating_sub(start) {
        let sel = schedule.segments[start + off];
        if let Some(t) = resolve_or_inject(engine, sel) {
            if Some(t) != exclude && engine.thread(t).is_some_and(ksim::Thread::is_runnable) {
                *seg_cursor = start + off;
                return Some(t);
            }
        }
    }
    pick_fallback_excluding(engine, schedule, exclude)
}

/// The flat-list fallback (schedules without a segment sequence).
///
/// A fallback entry naming a not-yet-fired hardware-IRQ handler *injects*
/// it when consulted, exactly like a scheduling-point target: a serial
/// schedule ending in an IRQ selector runs the listed threads to completion
/// and then fires the interrupt (LIFS's handler probe runs).
fn pick_fallback_excluding(
    engine: &mut dyn ExecBackend,
    schedule: &Schedule,
    exclude: Option<ThreadId>,
) -> Option<ThreadId> {
    let runnable = engine.runnable();
    let listed = |sel: &ThreadSel| schedule.fallback.contains(sel);
    // Unlisted background threads first, in spawn (id) order.
    for &t in &runnable {
        if Some(t) == exclude {
            continue;
        }
        let sel = ThreadSel::of(engine, t);
        let kind_bg = engine.thread(t).is_some_and(|th| th.kind.is_background());
        if kind_bg && !listed(&sel) {
            return Some(t);
        }
    }
    for i in 0..schedule.fallback.len() {
        let sel = schedule.fallback[i];
        if let Some(t) = resolve_or_inject(engine, sel) {
            if Some(t) == exclude {
                continue;
            }
            if engine.thread(t).is_some_and(ksim::Thread::is_runnable) {
                return Some(t);
            }
        }
    }
    runnable.into_iter().find(|&t| Some(t) != exclude)
}

#[cfg(test)]
mod outcome_tests {
    use super::*;

    fn result(failure: Option<ksim::Failure>, triggered: Vec<bool>, exhausted: bool) -> RunResult {
        RunResult {
            trace: Trace::new(),
            failure,
            triggered,
            forced: Vec::new(),
            steps: 0,
            budget_exhausted: exhausted,
            threads: Vec::new(),
        }
    }

    fn some_failure() -> Option<ksim::Failure> {
        Some(ksim::Failure {
            kind: ksim::FailureKind::NullDeref,
            at: ksim::InstrAddr {
                prog: ksim::ThreadProgId(0),
                index: 0,
            },
            tid: ksim::ThreadId(0),
            addr: None,
            message: String::new(),
        })
    }

    #[test]
    fn outcome_priority_failed_over_timeout_over_diverged() {
        // A manifested failure wins even over an exhausted budget or an
        // unfired point.
        let r = result(some_failure(), vec![false], true);
        assert_eq!(r.outcome(), RunOutcome::Failed);
        // No failure + exhausted budget: timeout, even with unfired points.
        let r = result(None, vec![false], true);
        assert_eq!(r.outcome(), RunOutcome::Timeout);
        // No failure, budget fine, a point never fired: divergence.
        let r = result(None, vec![true, false], false);
        assert_eq!(r.outcome(), RunOutcome::Diverged);
        // Everything fired, nothing failed: passed.
        let r = result(None, vec![true, true], false);
        assert_eq!(r.outcome(), RunOutcome::Passed);
    }

    #[test]
    fn inconclusive_covers_timeout_and_crashed_only() {
        assert!(RunOutcome::Timeout.is_inconclusive());
        assert!(RunOutcome::Crashed.is_inconclusive());
        assert!(!RunOutcome::Passed.is_inconclusive());
        assert!(!RunOutcome::Failed.is_inconclusive());
        assert!(!RunOutcome::Diverged.is_inconclusive());
    }

    #[test]
    fn outcome_display_is_lowercase() {
        assert_eq!(RunOutcome::Passed.to_string(), "passed");
        assert_eq!(RunOutcome::Crashed.to_string(), "crashed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::builder::ProgramBuilder;
    use ksim::ThreadProgId;
    use std::sync::Arc;

    /// Fig 1-shaped program: whether B crashes depends on the interleaving.
    fn fig1_program() -> Arc<ksim::Program> {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2a").load_global("r0", ptr);
            a.n("A2b").load_ind("r1", "r0", 0); // *ptr
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.n("B1a").load_global("r0", ptr_valid);
            b.n("B1b")
                .jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    fn sel(p: u16) -> ThreadSel {
        ThreadSel::first(ThreadProgId(p))
    }

    #[test]
    fn serial_schedules_do_not_fail() {
        for order in [vec![sel(0), sel(1)], vec![sel(1), sel(0)]] {
            let mut e = ksim::Engine::new(fig1_program());
            let r = run(&mut e, &Schedule::serial(order), &EnforceConfig::default());
            assert!(r.succeeded(), "serial order must not fail: {:?}", r.failure);
        }
    }

    #[test]
    fn enforced_interleaving_reproduces_null_deref() {
        // A1 ⇒ B1 ⇒ B2 ⇒ A2: suspend A before its ptr load (index 1),
        // let B run to completion, then resume A → NULL deref.
        let mut e = ksim::Engine::new(fig1_program());
        let schedule = Schedule {
            start: Some(sel(0)),
            points: vec![SchedPoint {
                thread: sel(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: 1,
                },
                nth: 0,
                when: Anchor::Before,
                switch_to: sel(1),
            }],
            fallback: vec![sel(1), sel(0)],
            segments: Vec::new(),
        };
        let r = run(&mut e, &schedule, &EnforceConfig::default());
        assert!(r.triggered[0]);
        let f = r.failure.expect("must fail");
        assert_eq!(f.kind, ksim::FailureKind::NullDeref);
    }

    #[test]
    fn disappeared_point_is_reported() {
        // Gate B at its (never-reached) store: run B first so ptr_valid is
        // still 0 and B returns early — the anchor B2 (index 2) disappears.
        let mut e = ksim::Engine::new(fig1_program());
        let schedule = Schedule {
            start: Some(sel(1)),
            points: vec![SchedPoint {
                thread: sel(1),
                at: InstrAddr {
                    prog: ThreadProgId(1),
                    index: 2,
                },
                nth: 0,
                when: Anchor::Before,
                switch_to: sel(0),
            }],
            fallback: vec![sel(1), sel(0)],
            segments: Vec::new(),
        };
        let r = run(&mut e, &schedule, &EnforceConfig::default());
        assert!(r.succeeded());
        assert_eq!(r.disappeared(), vec![0]);
    }

    #[test]
    fn after_anchor_switches_post_execution() {
        // Switch away from A right after A1 executes; B then sees
        // ptr_valid == 1 and stores NULL; A resumes and crashes.
        let mut e = ksim::Engine::new(fig1_program());
        let schedule = Schedule {
            start: Some(sel(0)),
            points: vec![SchedPoint {
                thread: sel(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: 0,
                },
                nth: 0,
                when: Anchor::After,
                switch_to: sel(1),
            }],
            fallback: vec![sel(1), sel(0)],
            segments: Vec::new(),
        };
        let r = run(&mut e, &schedule, &EnforceConfig::default());
        assert!(r.triggered[0]);
        assert_eq!(r.failure.expect("fails").kind, ksim::FailureKind::NullDeref);
    }

    #[test]
    fn forced_resume_on_suspended_lock_holder() {
        let mut p = ProgramBuilder::new("liveness");
        let x = p.global("x", 0);
        let l = p.lock("l");
        {
            let mut a = p.syscall_thread("A", "cs");
            a.lock(l); // 0
            a.store_global(x, 1u64); // 1
            a.unlock(l); // 2
            a.ret(); // 3
        }
        {
            let mut b = p.syscall_thread("B", "cs");
            b.lock(l);
            b.store_global(x, 2u64);
            b.unlock(l);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = ksim::Engine::new(prog);
        // Suspend A inside its critical section (before the unlock at 2),
        // switch to B — B blocks on the lock; the enforcer must resume A.
        let schedule = Schedule {
            start: Some(sel(0)),
            points: vec![SchedPoint {
                thread: sel(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: 2,
                },
                nth: 0,
                when: Anchor::Before,
                switch_to: sel(1),
            }],
            fallback: vec![sel(0), sel(1)],
            segments: Vec::new(),
        };
        let r = run(&mut e, &schedule, &EnforceConfig::default());
        assert!(r.succeeded(), "{:?}", r.failure);
        assert_eq!(r.forced.len(), 1);
        assert_eq!(r.forced[0].blocked, sel(1));
        assert_eq!(r.forced[0].holder, sel(0));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut p = ProgramBuilder::new("spin");
        {
            let mut a = p.syscall_thread("A", "spin");
            let top = a.new_label();
            a.place(top);
            a.jmp(top);
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = ksim::Engine::new(prog);
        let r = run(
            &mut e,
            &Schedule::serial(vec![sel(0)]),
            &EnforceConfig { step_budget: 100 },
        );
        assert!(r.budget_exhausted);
        assert!(!r.succeeded());
    }

    /// A cached run restored from a sibling's prefix checkpoint must be
    /// bit-identical to a from-scratch run of the same schedule.
    #[test]
    fn cached_runs_match_fresh_runs() {
        let prog = fig1_program();
        let cfg = EnforceConfig::default();
        let failing = Schedule {
            start: Some(sel(0)),
            points: vec![SchedPoint {
                thread: sel(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: 1,
                },
                nth: 0,
                when: Anchor::Before,
                switch_to: sel(1),
            }],
            fallback: vec![sel(1), sel(0)],
            segments: Vec::new(),
        };
        let mut cache = SnapshotCache::new(8);
        let mut e = ksim::Engine::new(Arc::clone(&prog));
        let first = run_cached(&mut e, &failing, &cfg, &mut cache);
        assert!(!cache.is_empty(), "clean prefix deposited a checkpoint");
        let second = run_cached(&mut e, &failing, &cfg, &mut cache);
        assert_eq!(cache.hits(), 1, "second run restored the prefix");

        let mut fresh = ksim::Engine::new(Arc::clone(&prog));
        let reference = run(&mut fresh, &failing, &cfg);
        for r in [&first, &second] {
            assert_eq!(r.failure, reference.failure);
            assert_eq!(r.triggered, reference.triggered);
            assert_eq!(r.steps, reference.steps);
            assert_eq!(r.trace.len(), reference.trace.len());
            assert_eq!(r.forced, reference.forced);
        }
    }

    /// A worker with an *empty* local LRU resumes from a prefix another
    /// worker published to the shared forest, and the result is
    /// bit-identical to a from-scratch run.
    #[test]
    fn forest_shares_prefixes_across_workers() {
        let prog = fig1_program();
        let cfg = EnforceConfig::default();
        let failing = Schedule {
            start: Some(sel(0)),
            points: vec![SchedPoint {
                thread: sel(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: 1,
                },
                nth: 0,
                when: Anchor::Before,
                switch_to: sel(1),
            }],
            fallback: vec![sel(1), sel(0)],
            segments: Vec::new(),
        };
        let forest = SnapshotForest::new(64);

        // Worker 1 runs from scratch and publishes its checkpoints.
        let mut cache1 = SnapshotCache::new(8);
        let mut e1 = ksim::Engine::new(Arc::clone(&prog));
        let first = run_cached_shared(&mut e1, &failing, &cfg, &mut cache1, Some(&forest));
        assert!(!forest.is_empty(), "checkpoint published to the forest");
        assert_eq!(cache1.misses(), 1);

        // Worker 2 has never seen this schedule, but the forest has.
        let mut cache2 = SnapshotCache::new(8);
        let mut e2 = ksim::Engine::new(Arc::clone(&prog));
        let second = run_cached_shared(&mut e2, &failing, &cfg, &mut cache2, Some(&forest));
        assert_eq!(cache2.forest_hits(), 1, "prefix came from the forest");
        assert_eq!(cache2.hits(), 0);
        assert_eq!(cache2.misses(), 0);
        // The forest hit backfilled worker 2's local LRU.
        assert!(!cache2.is_empty());

        let mut fresh = ksim::Engine::new(Arc::clone(&prog));
        let reference = run(&mut fresh, &failing, &cfg);
        for r in [&first, &second] {
            assert_eq!(r.failure, reference.failure);
            assert_eq!(r.triggered, reference.triggered);
            assert_eq!(r.steps, reference.steps);
            assert_eq!(r.trace.len(), reference.trace.len());
            assert_eq!(r.forced, reference.forced);
        }
    }

    /// Forest entries are keyed by program *identity*: a structurally
    /// identical but distinct program allocation never matches.
    #[test]
    fn forest_is_keyed_by_program_identity() {
        let cfg = EnforceConfig::default();
        let failing = Schedule {
            start: Some(sel(0)),
            points: vec![SchedPoint {
                thread: sel(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: 1,
                },
                nth: 0,
                when: Anchor::Before,
                switch_to: sel(1),
            }],
            fallback: vec![sel(1), sel(0)],
            segments: Vec::new(),
        };
        let forest = SnapshotForest::new(64);
        let mut cache1 = SnapshotCache::new(8);
        let mut e1 = ksim::Engine::new(fig1_program());
        let _ = run_cached_shared(&mut e1, &failing, &cfg, &mut cache1, Some(&forest));
        assert!(!forest.is_empty());

        // Same program *contents*, different allocation: no forest hit.
        let mut cache2 = SnapshotCache::new(8);
        let mut e2 = ksim::Engine::new(fig1_program());
        let _ = run_cached_shared(&mut e2, &failing, &cfg, &mut cache2, Some(&forest));
        assert_eq!(cache2.forest_hits(), 0);
        assert_eq!(cache2.misses(), 1);
    }

    /// The full-schedule fingerprint distinguishes schedules that share a
    /// point prefix but differ in fallback order or suffix.
    #[test]
    fn schedule_fingerprint_covers_the_whole_schedule() {
        let cfg = EnforceConfig::default();
        let base = Schedule {
            start: Some(sel(0)),
            points: vec![SchedPoint {
                thread: sel(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: 1,
                },
                nth: 0,
                when: Anchor::Before,
                switch_to: sel(1),
            }],
            fallback: vec![sel(1), sel(0)],
            segments: Vec::new(),
        };
        assert_eq!(
            schedule_fingerprint(&base, &cfg),
            schedule_fingerprint(&base.clone(), &cfg)
        );
        let mut flipped = base.clone();
        flipped.fallback = vec![sel(0), sel(1)];
        assert_ne!(
            schedule_fingerprint(&base, &cfg),
            schedule_fingerprint(&flipped, &cfg)
        );
        let tighter = EnforceConfig { step_budget: 7 };
        assert_ne!(
            schedule_fingerprint(&base, &cfg),
            schedule_fingerprint(&base, &tighter)
        );
    }

    #[test]
    fn final_thread_states_reported() {
        let mut e = ksim::Engine::new(fig1_program());
        let r = run(
            &mut e,
            &Schedule::serial(vec![sel(0), sel(1)]),
            &EnforceConfig::default(),
        );
        assert_eq!(r.threads.len(), 2);
        assert!(r
            .threads
            .iter()
            .all(|t| t.status == ThreadStatus::Exited && t.next.is_none()));
    }
}

#[cfg(test)]
mod segment_tests {
    use super::*;
    use crate::schedule::schedule_from_order;
    use ksim::builder::ProgramBuilder;
    use ksim::ThreadProgId;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Three threads where the middle one exits at a boundary: the segment
    /// cursor must hand control to the *next intended* thread, which a flat
    /// preference list cannot always express.
    #[test]
    fn segment_cursor_follows_intended_order() {
        let mut p = ProgramBuilder::new("segs");
        let x = p.global("x", 0);
        for name in ["A", "B", "C"] {
            let mut t = p.syscall_thread(name, "s");
            t.fetch_add_global(x, 1u64);
            t.fetch_add_global(x, 1u64);
            t.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let sel = |i: u16| ThreadSel::first(ThreadProgId(i));
        let at = |p: u16, i: usize| InstrAddr {
            prog: ThreadProgId(p),
            index: i,
        };
        // Intended order: B fully, then A fully, then C fully — B and A
        // exit at their boundaries, so no anchors exist and only the
        // segment sequence carries the intent.
        let order = vec![
            (sel(1), at(1, 0)),
            (sel(1), at(1, 1)),
            (sel(1), at(1, 2)),
            (sel(0), at(0, 0)),
            (sel(0), at(0, 1)),
            (sel(0), at(0, 2)),
            (sel(2), at(2, 0)),
            (sel(2), at(2, 1)),
            (sel(2), at(2, 2)),
        ];
        let schedule = schedule_from_order(&order, &HashMap::new());
        assert_eq!(schedule.segments, vec![sel(1), sel(0), sel(2)]);
        let mut e = ksim::Engine::new(Arc::clone(&prog));
        let r = run(&mut e, &schedule, &EnforceConfig::default());
        assert!(r.succeeded());
        let tids: Vec<u32> = r.trace.iter().map(|rec| rec.tid.0).collect();
        assert_eq!(tids, vec![1, 1, 1, 0, 0, 0, 2, 2, 2], "{tids:?}");
    }

    /// A schedule point whose target names an unfired IRQ handler injects
    /// it (the §4.6 extension at the enforcement layer).
    #[test]
    fn schedule_point_injects_irq_handler() {
        let mut p = ProgramBuilder::new("irq-enf");
        let x = p.global("x", 0);
        let irq = {
            let mut h = p.irq_thread("irq");
            h.store_global(x, 9u64);
            h.ret();
            h.id()
        };
        {
            let mut a = p.syscall_thread("A", "s");
            a.fetch_add_global(x, 1u64);
            a.fetch_add_global(x, 1u64);
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        // The syscall program id follows the handler's.
        let a_prog = prog.initial[0];
        let schedule = Schedule {
            start: Some(ThreadSel::first(a_prog)),
            points: vec![SchedPoint {
                thread: ThreadSel::first(a_prog),
                at: InstrAddr {
                    prog: a_prog,
                    index: 1,
                },
                nth: 0,
                when: crate::schedule::Anchor::Before,
                switch_to: ThreadSel::first(irq),
            }],
            fallback: vec![ThreadSel::first(a_prog)],
            segments: Vec::new(),
        };
        let mut e = ksim::Engine::new(Arc::clone(&prog));
        let r = run(&mut e, &schedule, &EnforceConfig::default());
        assert!(r.succeeded(), "{:?}", r.failure);
        assert!(r.triggered[0], "injection point fired");
        // IRQ stored 9 between A's two increments: final value 9 + 1 = 10.
        assert_eq!(e.peek(x.addr()), 10);
    }
}
