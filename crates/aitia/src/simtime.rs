//! Deterministic cost model for reproducing the paper's timing columns.
//!
//! The paper measures wall-clock seconds on a 48-core Xeon running 32
//! AITIA-hypervisor VMs (§5). The simulator executes the same *work* —
//! schedules, steps, VM reboots — orders of magnitude faster, so the timing
//! columns of Tables 2 and 3 are regenerated through a cost model instead:
//! every enforced schedule pays a fixed setup cost (guest boot-strapping,
//! breakpoint installation, memory revert), every executed instruction pays
//! a small step cost, and every *failing* run pays a VM reboot. The reboot
//! term is what makes Causality Analysis dominate diagnosis time in the
//! paper ("most of interleavings executed by Causality Analysis cause a
//! failure. When a failure occurs, AITIA has to reboot the virtual
//! machine."), and the model preserves exactly that shape.
//!
//! Wall-clock time of the Rust run is reported separately; the model is
//! calibrated against Table 2 (e.g. CVE-2019-11486: 225 LIFS schedules in
//! 44.7 s; 130 mostly-failing Causality Analysis schedules in 497.6 s).

use serde::{
    Deserialize,
    Serialize, //
};

/// Cost parameters of the simulated AITIA deployment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds to set up and enforce one schedule (VM revert, breakpoint
    /// installation, user-agent round trips).
    pub per_schedule_s: f64,
    /// Seconds per executed kernel instruction under the hypervisor's
    /// single-stepping regime.
    pub per_step_s: f64,
    /// Seconds to reboot a VM after a failing run.
    pub reboot_s: f64,
    /// Seconds of backoff charged per retry of a faulted job (VM restart
    /// plus the deliberate pause before re-enforcing the schedule).
    pub retry_backoff_s: f64,
    /// Effective parallel VMs working on one bug (the deployment launches
    /// 32 VMs shared across reproducers and diagnosers).
    pub vms: u32,
}

fn default_retry_backoff_s() -> f64 {
    5.0
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_schedule_s: 1.5,
            per_step_s: 0.000_2,
            reboot_s: 30.0,
            retry_backoff_s: default_retry_backoff_s(),
            vms: 8,
        }
    }
}

/// Accumulated simulated cost of a stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimCost {
    /// Schedules enforced.
    pub schedules: usize,
    /// Schedules that ended in a failure (each costs a reboot).
    pub failing_runs: usize,
    /// Total engine steps executed.
    pub steps: usize,
    /// Retries of faulted jobs (each costs [`CostModel::retry_backoff_s`]).
    pub retries: usize,
}

impl CostModel {
    /// Serial simulated seconds one execution of `steps` steps would cost
    /// under this model (setup, stepping, and — for a failing run — the VM
    /// reboot). This is what a memo hit *saves*: the cached output is
    /// returned instead of paying any of these terms. Retry backoff is not
    /// included — faults are decided before the memo lookup, so a memo hit
    /// still pays its own retries.
    #[must_use]
    pub fn serial_run_s(&self, steps: usize, failed: bool) -> f64 {
        self.per_schedule_s
            + steps as f64 * self.per_step_s
            + if failed { self.reboot_s } else { 0.0 }
    }
}

impl SimCost {
    /// Adds one run's contribution.
    pub fn add_run(&mut self, steps: usize, failed: bool) {
        self.schedules += 1;
        self.steps += steps;
        if failed {
            self.failing_runs += 1;
        }
    }

    /// Charges `n` fault retries to this stage.
    pub fn add_retries(&mut self, n: usize) {
        self.retries += n;
    }

    /// Merges another stage's cost.
    pub fn merge(&mut self, other: &SimCost) {
        self.schedules += other.schedules;
        self.failing_runs += other.failing_runs;
        self.steps += other.steps;
        self.retries += other.retries;
    }

    /// Simulated elapsed seconds under `model`, assuming ideal parallelism
    /// over the model's VM count.
    #[must_use]
    pub fn seconds(&self, model: &CostModel) -> f64 {
        let serial = self.schedules as f64 * model.per_schedule_s
            + self.steps as f64 * model.per_step_s
            + self.failing_runs as f64 * model.reboot_s
            + self.retries as f64 * model.retry_backoff_s;
        serial / f64::from(model.vms.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_runs_dominate_cost() {
        let m = CostModel::default();
        let mut lifs = SimCost::default();
        // LIFS: many schedules, one failure at the end.
        for i in 0..225 {
            lifs.add_run(300, i == 224);
        }
        let mut ca = SimCost::default();
        // Causality Analysis: fewer schedules, mostly failing.
        for i in 0..130 {
            ca.add_run(300, i % 10 != 0);
        }
        let (t_lifs, t_ca) = (lifs.seconds(&m), ca.seconds(&m));
        assert!(t_ca > t_lifs, "CA {t_ca} must exceed LIFS {t_lifs}");
        // Calibration sanity vs Table 2 row 1 (44.7 s / 497.6 s): within 2x.
        assert!((20.0..90.0).contains(&t_lifs), "LIFS {t_lifs}");
        assert!((220.0..1000.0).contains(&t_ca), "CA {t_ca}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimCost::default();
        a.add_run(10, true);
        let mut b = SimCost::default();
        b.add_run(5, false);
        b.add_retries(3);
        a.merge(&b);
        assert_eq!(a.schedules, 2);
        assert_eq!(a.failing_runs, 1);
        assert_eq!(a.steps, 15);
        assert_eq!(a.retries, 3);
    }

    #[test]
    fn retries_charge_backoff_seconds() {
        let m = CostModel {
            vms: 1,
            ..CostModel::default()
        };
        let mut quiet = SimCost::default();
        quiet.add_run(100, false);
        let mut flaky = quiet;
        flaky.add_retries(2);
        let delta = flaky.seconds(&m) - quiet.seconds(&m);
        assert!((delta - 2.0 * m.retry_backoff_s).abs() < 1e-9, "{delta}");
    }

    #[test]
    fn serial_run_cost_matches_the_seconds_terms() {
        let m = CostModel {
            vms: 1,
            ..CostModel::default()
        };
        let mut c = SimCost::default();
        c.add_run(300, true);
        assert!((m.serial_run_s(300, true) - c.seconds(&m)).abs() < 1e-9);
        // A passing run saves the reboot term.
        assert!((m.serial_run_s(300, true) - m.serial_run_s(300, false) - m.reboot_s).abs() < 1e-9);
    }

    #[test]
    fn zero_vms_does_not_divide_by_zero() {
        let m = CostModel {
            vms: 0,
            ..CostModel::default()
        };
        let mut c = SimCost::default();
        c.add_run(1, false);
        assert!(c.seconds(&m).is_finite());
    }
}
