//! Durable write-ahead run journal (DESIGN.md §7).
//!
//! A full diagnosis campaign is thousands of enforced schedule runs, and a
//! SIGKILL, OOM, or host reboot mid-campaign would throw all of them away —
//! the in-memory memo table dies with the process. Because enforcement is a
//! pure function of `(program, schedule, step budget)`, the campaign is
//! restartable by construction: this journal appends one record per
//! *conclusive* [`ExecOutput`], keyed exactly like the memo table, and a
//! resumed campaign replays the journal into the memo so every
//! previously-executed schedule is answered at zero VM cost. Consumers are
//! memo-invariant, so the resumed diagnosis is bit-identical to an
//! uninterrupted run.
//!
//! # Record format
//!
//! The file opens with a versioned header — the 8-byte magic `AITIAJNL`
//! followed by a little-endian `u32` format version — so a format bump
//! truncates cleanly instead of poisoning a resume. Each record is:
//!
//! ```text
//! u32 len (LE) | u32 crc32(payload) (LE) | payload (JSON, `len` bytes)
//! ```
//!
//! The payload carries the memo key (schedule fingerprint, program content
//! digest, step budget) plus everything needed to reconstruct the
//! [`ExecOutput`]: the schedule itself, the full [`RunResult`] (trace
//! included, so causality edge extraction sees exactly what a re-execution
//! would show), the thread-selector map, and the outcome.
//!
//! # Torn tails and corruption
//!
//! A crash mid-append can leave a torn final record. On open, the journal
//! scans forward and truncates at the first record whose length frame, CRC,
//! or JSON payload does not check out — counted in
//! [`JournalStats::torn_tail_truncations`] and warned about, never a panic.
//! Every record before the truncation point is intact (appends are
//! sequential), so the resume degrades by at most the torn record. An
//! unrecognized header degrades all the way to a cold start.
//!
//! # What is never journaled
//!
//! Inconclusive outcomes — [`RunOutcome::Timeout`], [`RunOutcome::Crashed`],
//! and exec-layer fault placeholders — are never appended, mirroring the
//! memo table's `memo_excluded` rule: an inconclusive run proves nothing in
//! either direction, and making it durable would let it shadow a future
//! conclusive execution across process lifetimes.

use crate::{
    backend::BackendKind,
    enforce::{
        schedule_fingerprint,
        EnforceConfig,
        RunOutcome,
        RunResult, //
    },
    exec::{
        memo_preload,
        ExecJob,
        ExecOutput,
        Substrate, //
    },
    schedule::{
        Schedule,
        ThreadSel, //
    },
};
use ksim::{
    Program,
    ThreadId, //
};
use serde::{
    Deserialize,
    Serialize, //
};
use std::{
    collections::HashSet,
    fs::{
        File,
        OpenOptions, //
    },
    hash::{
        Hash,
        Hasher, //
    },
    io::{
        Read,
        Seek,
        SeekFrom,
        Write, //
    },
    path::{
        Path,
        PathBuf, //
    },
    sync::{
        atomic::{
            AtomicBool,
            AtomicU64,
            Ordering, //
        },
        Arc,
        Mutex,
        OnceLock, //
    },
};

/// The journal file magic.
const MAGIC: [u8; 8] = *b"AITIAJNL";
/// The journal format version. Bumping it makes old files read as
/// unrecognized and resume from a cold start.
const VERSION: u32 = 1;
/// Header length: magic plus version.
const HEADER_LEN: u64 = 12;
/// Records are fsync-batched: the file is synced after this many appends
/// (and on [`Journal::flush`] / drop).
const FSYNC_EVERY: usize = 32;
/// Sanity bound on a record's framed length; anything larger reads as
/// corruption (no schedule run serializes to a gigabyte).
const MAX_RECORD_LEN: u32 = 1 << 30;

/// Journal observability counters (surfaced in the `report` stats block).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records replayed into the memo table by [`Journal::replay_into_memo`].
    pub records_replayed: u64,
    /// Records appended (after deduplication) this process lifetime.
    pub records_appended: u64,
    /// Truncations performed on open because of a torn tail, a CRC or JSON
    /// mismatch, or an unrecognized header.
    pub torn_tail_truncations: u64,
    /// Sticky: an fsync failed at some point this process lifetime. The
    /// journal disabled itself when this flipped (records that cannot be
    /// made durable are worse than no records: a resume would trust them),
    /// so the campaign ran on without crash-safety from that point.
    pub fsync_failed: bool,
}

/// One journaled execution, carrying its memo key and its full output.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct RecordPayload {
    /// Canonical schedule fingerprint (the memo-table key hash).
    fp: u64,
    /// Deterministic content digest of the program (cross-process stand-in
    /// for the memo table's `Arc` identity).
    program: u64,
    /// Enforcement step budget the run executed under.
    step_budget: usize,
    /// The enforced schedule, compared in full on memo lookup so a
    /// fingerprint collision degrades to a miss.
    schedule: Schedule,
    /// The run exactly as execution reported it.
    run: RunResult,
    /// Runtime-thread → selector map of the run, as sorted pairs (JSON
    /// objects cannot key on a tuple struct).
    sel_of: Vec<(ThreadId, ThreadSel)>,
    /// Conclusive classification of the run.
    outcome: RunOutcome,
}

/// In-memory journal state behind the lock.
struct Inner {
    file: File,
    /// Keys already present (loaded at open, extended by appends): appends
    /// deduplicate so re-running a campaign over an existing journal does
    /// not grow the file.
    seen: HashSet<(u64, u64, usize)>,
    /// Records loaded at open, kept for [`Journal::replay_into_memo`].
    records: Vec<RecordPayload>,
    /// Appends since the last fsync.
    unsynced: usize,
}

/// A durable, fsync-batched, CRC-checked write-ahead journal of conclusive
/// schedule executions. Thread-safe: the executor appends from any worker.
pub struct Journal {
    path: PathBuf,
    inner: Mutex<Inner>,
    replayed: AtomicU64,
    appended: AtomicU64,
    truncations: AtomicU64,
    /// Sticky fsync-failure flag: once set, `append` and `flush` are
    /// no-ops (the journal is disabled) and [`JournalStats::fsync_failed`]
    /// reports the durability loss instead of silently claiming
    /// crash-safety.
    fsync_failed: AtomicBool,
    /// Test seam: forces every subsequent fsync to fail, modeling the
    /// journal's directory going away under it (a poisoned temp dir).
    fsync_poisoned: AtomicBool,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Journal {
    /// Opens (or creates) the journal at `path`, scanning existing records
    /// and truncating any torn tail. Never fails on corruption — a file
    /// that does not check out degrades to a cold start with a warning —
    /// only on I/O errors (unwritable path, permission).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be opened,
    /// read, or truncated.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut truncations = 0u64;
        let mut records = Vec::new();
        let good_end = if bytes.is_empty() {
            file.write_all(&MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
            HEADER_LEN
        } else if bytes.len() < HEADER_LEN as usize
            || bytes[..8] != MAGIC
            || bytes[8..12] != VERSION.to_le_bytes()
        {
            eprintln!(
                "aitia-journal: {} has an unrecognized header; starting fresh \
                 (cold start)",
                path.display()
            );
            truncations += 1;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
            HEADER_LEN
        } else {
            let (parsed, good_end, torn) = scan_records(&bytes);
            records = parsed;
            if torn {
                eprintln!(
                    "aitia-journal: {} has a torn or corrupt tail at byte {}; \
                     truncating ({} intact records kept)",
                    path.display(),
                    good_end,
                    records.len()
                );
                truncations += 1;
                file.set_len(good_end)?;
            }
            good_end
        };
        file.seek(SeekFrom::Start(good_end))?;
        let seen = records
            .iter()
            .map(|r| (r.fp, r.program, r.step_budget))
            .collect();
        Ok(Journal {
            path,
            inner: Mutex::new(Inner {
                file,
                seen,
                records,
                unsynced: 0,
            }),
            replayed: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            truncations: AtomicU64::new(truncations),
            fsync_failed: AtomicBool::new(false),
            fsync_poisoned: AtomicBool::new(false),
        })
    }

    /// The journal's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records loaded from disk at open (intact records only).
    #[must_use]
    pub fn loaded_records(&self) -> usize {
        self.inner.lock().unwrap().records.len()
    }

    /// A snapshot of the journal's observability counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            records_replayed: self.replayed.load(Ordering::SeqCst),
            records_appended: self.appended.load(Ordering::SeqCst),
            torn_tail_truncations: self.truncations.load(Ordering::SeqCst),
            fsync_failed: self.fsync_failed.load(Ordering::SeqCst),
        }
    }

    /// Whether an fsync has failed (sticky): the journal is disabled and
    /// the campaign is running without crash-safety.
    #[must_use]
    pub fn fsync_failed(&self) -> bool {
        self.fsync_failed.load(Ordering::SeqCst)
    }

    /// Test seam: makes every subsequent fsync fail, as if the temp dir
    /// holding the journal were poisoned (device gone, quota exhausted).
    #[doc(hidden)]
    pub fn poison_fsync(&self) {
        self.fsync_poisoned.store(true, Ordering::SeqCst);
    }

    /// Syncs the file, honoring the poison seam.
    fn sync_data(&self, inner: &mut Inner) -> std::io::Result<()> {
        if self.fsync_poisoned.load(Ordering::SeqCst) {
            return Err(std::io::Error::other(
                "poisoned temp-dir path: fsync injection",
            ));
        }
        inner.file.sync_data()
    }

    /// Records a failed fsync: warns once, flips the sticky flag, and
    /// thereby disables the journal — a record that cannot be made durable
    /// must not be trusted by a future resume, so degrading to a
    /// journal-less campaign is strictly safer than journaling on.
    fn note_fsync_failure(&self, e: &std::io::Error) {
        if !self.fsync_failed.swap(true, Ordering::SeqCst) {
            eprintln!(
                "aitia-journal: fsync of {} failed ({e}); disabling the \
                 journal — this campaign continues WITHOUT crash-safety",
                self.path.display()
            );
        }
    }

    /// Appends one conclusive output. Inconclusive outcomes and duplicate
    /// keys are silently skipped; I/O errors are warned about and swallowed
    /// (a failing journal degrades durability, never the campaign).
    pub fn append(&self, job: &ExecJob, out: &ExecOutput) {
        if out.outcome.is_inconclusive() {
            return;
        }
        // A journal whose fsync failed is disabled: appending records that
        // may be torn would hand a future resume corrupt durability.
        if self.fsync_failed() {
            return;
        }
        let fp = schedule_fingerprint(&job.schedule, &job.enforce);
        let digest = program_digest(&job.program);
        let mut inner = self.inner.lock().unwrap();
        if !inner.seen.insert((fp, digest, job.enforce.step_budget)) {
            return;
        }
        let mut sel_of: Vec<(ThreadId, ThreadSel)> =
            out.sel_of.iter().map(|(&k, &v)| (k, v)).collect();
        sel_of.sort_unstable_by_key(|(tid, _)| tid.0);
        let payload = RecordPayload {
            fp,
            program: digest,
            step_budget: job.enforce.step_budget,
            schedule: job.schedule.clone(),
            run: out.run.clone(),
            sel_of,
            outcome: out.outcome,
        };
        let bytes = match serde_json::to_string(&payload) {
            Ok(s) => s.into_bytes(),
            Err(e) => {
                eprintln!("aitia-journal: serialization failed, dropping record: {e}");
                return;
            }
        };
        let framed = frame_record(&bytes);
        if let Err(e) = inner.file.write_all(&framed) {
            eprintln!(
                "aitia-journal: append to {} failed ({e}); continuing without \
                 durability for this record",
                self.path.display()
            );
            return;
        }
        inner.unsynced += 1;
        if inner.unsynced >= FSYNC_EVERY {
            inner.unsynced = 0;
            if let Err(e) = self.sync_data(&mut inner) {
                self.note_fsync_failure(&e);
                return;
            }
        }
        self.appended.fetch_add(1, Ordering::SeqCst);
    }

    /// Syncs buffered appends to disk. A failed sync flips the sticky
    /// [`JournalStats::fsync_failed`] flag and disables the journal.
    pub fn flush(&self) {
        if self.fsync_failed() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.unsynced = 0;
        if let Err(e) = self.sync_data(&mut inner) {
            self.note_fsync_failure(&e);
        }
    }

    /// Replays every loaded record whose program digest matches `program`
    /// into the process-wide memo table, keyed against *this* `Arc` — so the
    /// resumed campaign's lookups (which compare `Arc` identity) hit.
    /// Returns how many records were seeded.
    pub fn replay_into_memo(&self, program: &Arc<Program>) -> u64 {
        self.replay_into_substrate(
            program,
            &Substrate::process_global(),
            BackendKind::default(),
        )
    }

    /// [`Journal::replay_into_memo`], but seeding an explicit [`Substrate`]
    /// — a campaign running on a private (or server-shared) substrate must
    /// replay into the table its executors will actually consult — under an
    /// explicit backend key: memo entries are backend-keyed, so a resumed
    /// campaign only hits records seeded for the backend it actually runs.
    pub fn replay_into_substrate(
        &self,
        program: &Arc<Program>,
        substrate: &Substrate,
        backend: BackendKind,
    ) -> u64 {
        let digest = program_digest(program);
        let inner = self.inner.lock().unwrap();
        let mut seeded = 0u64;
        for r in inner.records.iter().filter(|r| r.program == digest) {
            let job = ExecJob {
                program: Arc::clone(program),
                schedule: r.schedule.clone(),
                enforce: EnforceConfig {
                    step_budget: r.step_budget,
                },
            };
            let out = ExecOutput {
                run: r.run.clone(),
                sel_of: r.sel_of.iter().copied().collect(),
                outcome: r.outcome,
                retries: 0,
                vm_faulted: None,
                memo_hit: false,
                forest_hits: 0,
            };
            memo_preload(substrate, &job, &out, backend);
            seeded += 1;
        }
        self.replayed.fetch_add(seeded, Ordering::SeqCst);
        seeded
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.get_mut() {
            let _ = inner.file.sync_data();
        }
    }
}

/// Scans the byte buffer past the header, returning the intact records, the
/// byte offset after the last intact record, and whether a torn/corrupt
/// tail was found.
fn scan_records(bytes: &[u8]) -> (Vec<RecordPayload>, u64, bool) {
    let (frames, mut good_end, mut torn) = scan_frames(bytes, HEADER_LEN);
    let mut records = Vec::with_capacity(frames.len());
    for frame in frames {
        let Ok(record) = std::str::from_utf8(frame.payload)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<RecordPayload>(s).map_err(|e| e.to_string()))
        else {
            // A CRC-clean frame that is not a record: treat everything from
            // this frame on as corrupt, exactly like a torn frame.
            good_end = frame.start;
            torn = true;
            break;
        };
        records.push(record);
    }
    (records, good_end, torn)
}

/// One CRC-verified frame in a framed log file.
pub(crate) struct Frame<'a> {
    /// Byte offset of the frame's length header in the file.
    pub start: u64,
    /// The frame's payload bytes (CRC already verified).
    pub payload: &'a [u8],
}

/// Scans `len | crc | payload` frames starting at `header_len`, stopping at
/// the first torn or corrupt frame. Returns the intact frames, the byte
/// offset after the last intact frame, and whether a torn tail was found.
/// Shared by the run journal and the `campaignd` job queue — the two
/// durable logs frame records identically.
pub(crate) fn scan_frames(bytes: &[u8], header_len: u64) -> (Vec<Frame<'_>>, u64, bool) {
    let mut frames = Vec::new();
    let mut off = header_len as usize;
    loop {
        if off >= bytes.len() {
            return (frames, off.min(bytes.len()) as u64, off > bytes.len());
        }
        let Some(header) = bytes.get(off..off + 8) else {
            return (frames, off as u64, true);
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return (frames, off as u64, true);
        }
        let Some(payload) = bytes.get(off + 8..off + 8 + len as usize) else {
            return (frames, off as u64, true);
        };
        if crc32(payload) != crc {
            return (frames, off as u64, true);
        }
        frames.push(Frame {
            start: off as u64,
            payload,
        });
        off += 8 + len as usize;
    }
}

/// Builds one framed record — `u32 len (LE) | u32 crc32 (LE) | payload` —
/// as a single buffer so the append is one `write_all` (one syscall on the
/// usual path), minimizing the torn-tail window.
pub(crate) fn frame_record(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// Truncates the journal at `path` so at most `keep` records remain — the
/// kill-and-resume tests and the resume benchmark interrupt campaigns at
/// exact record boundaries with this. Returns how many records remain.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be read or
/// truncated.
pub fn truncate_at_record(path: impl AsRef<Path>, keep: usize) -> std::io::Result<usize> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN as usize {
        return Ok(0);
    }
    let (records, _, _) = scan_records(&bytes);
    let kept = records.len().min(keep);
    let mut off = HEADER_LEN as usize;
    for _ in 0..kept {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        off += 8 + len as usize;
    }
    OpenOptions::new()
        .write(true)
        .open(path)?
        .set_len(off as u64)?;
    Ok(kept)
}

/// Number of intact records in the journal at `path`.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be read.
pub fn record_count(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let mut bytes = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN as usize || bytes[..8] != MAGIC {
        return Ok(0);
    }
    Ok(scan_records(&bytes).0.len())
}

/// Deterministic content digest of a program — the cross-process stand-in
/// for the memo table's `Arc` identity key. Hashes the program's complete
/// `Debug` rendering (globals, statics, every instruction and its metadata)
/// with the zero-keyed `DefaultHasher` that `schedule_fingerprint` already
/// relies on being stable across processes. Cached per `Arc` allocation,
/// with the `Arc` pinned in the cache so a recycled address can never alias
/// a different program.
#[must_use]
pub fn program_digest(program: &Arc<Program>) -> u64 {
    type DigestCache = Mutex<Vec<(usize, Arc<Program>, u64)>>;
    static CACHE: OnceLock<DigestCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let key = Arc::as_ptr(program) as usize;
    let mut cache = cache.lock().unwrap();
    if let Some(&(_, _, digest)) = cache.iter().find(|(k, _, _)| *k == key) {
        return digest;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{program:?}").hash(&mut h);
    let digest = h.finish();
    // Bound the pinned set: campaigns touch a handful of programs, but a
    // long-lived process churning scaled corpora should not pin them all.
    if cache.len() >= 256 {
        cache.remove(0);
    }
    cache.push((key, Arc::clone(program), digest));
    digest
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven. The
/// workspace deliberately has no compression/CRC dependency, and 12 lines
/// beat a vendored crate for one framing checksum. `pub(crate)`: the
/// `campaignd` job queue frames its records with the same checksum.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = u32::try_from(i).unwrap_or(0);
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{
        CancelToken,
        Executor,
        ExecutorConfig, //
    };
    use crate::schedule::{
        Anchor,
        SchedPoint, //
    };
    use ksim::{
        builder::ProgramBuilder,
        InstrAddr,
        ThreadProgId, //
    };

    fn fig1_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    fn sel(p: u16) -> ThreadSel {
        ThreadSel::first(ThreadProgId(p))
    }

    fn fig1_jobs(program: &Arc<Program>) -> Vec<ExecJob> {
        let failing = Schedule {
            start: Some(sel(0)),
            points: vec![SchedPoint {
                thread: sel(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: 1,
                },
                nth: 0,
                when: Anchor::Before,
                switch_to: sel(1),
            }],
            fallback: vec![sel(1), sel(0)],
            segments: Vec::new(),
        };
        [
            Schedule::serial(vec![sel(0), sel(1)]),
            Schedule::serial(vec![sel(1), sel(0)]),
            failing,
        ]
        .into_iter()
        .map(|schedule| ExecJob {
            program: Arc::clone(program),
            schedule,
            enforce: EnforceConfig::default(),
        })
        .collect()
    }

    fn journaling_pool(journal: &Arc<Journal>) -> Executor {
        Executor::with_config(ExecutorConfig {
            vms: 1,
            journal: Some(Arc::clone(journal)),
            ..ExecutorConfig::default()
        })
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "aitia-journal-test-{}-{name}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn appends_are_durable_and_reload() {
        let path = tmp_path("durable");
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        {
            let journal = Arc::new(Journal::open(&path).unwrap());
            let exec = journaling_pool(&journal);
            let out = exec.run_batch(&jobs, &CancelToken::new());
            assert!(out.iter().all(Option::is_some));
            assert_eq!(journal.stats().records_appended, jobs.len() as u64);
            journal.flush();
        }
        let reloaded = Journal::open(&path).unwrap();
        assert_eq!(reloaded.loaded_records(), jobs.len());
        assert_eq!(reloaded.stats().torn_tail_truncations, 0);
        assert_eq!(record_count(&path).unwrap(), jobs.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_keys_are_not_rewritten() {
        let path = tmp_path("dedup");
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let journal = Arc::new(Journal::open(&path).unwrap());
        let exec = journaling_pool(&journal);
        let _ = exec.run_batch(&jobs, &CancelToken::new());
        // The second batch is all memo hits; the journal must not grow.
        let _ = exec.run_batch(&jobs, &CancelToken::new());
        assert_eq!(journal.stats().records_appended, jobs.len() as u64);
        journal.flush();
        assert_eq!(record_count(&path).unwrap(), jobs.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_seeds_the_memo_for_a_fresh_program_arc() {
        let path = tmp_path("replay");
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        {
            let journal = Arc::new(Journal::open(&path).unwrap());
            let _ = journaling_pool(&journal).run_batch(&jobs, &CancelToken::new());
            journal.flush();
        }
        // A content-identical program in a fresh allocation models the
        // restarted process: the identity-keyed memo cannot hit, but the
        // digest-keyed replay preloads against the new Arc.
        let fresh = fig1_program();
        assert_eq!(program_digest(&program), program_digest(&fresh));
        let journal = Journal::open(&path).unwrap();
        let seeded = journal.replay_into_memo(&fresh);
        assert_eq!(seeded, jobs.len() as u64);
        let exec = Executor::new(1);
        let out = exec.run_batch(&fig1_jobs(&fresh), &CancelToken::new());
        assert!(out.iter().flatten().all(|o| o.memo_hit));
        assert_eq!(exec.stats().runs, 0, "resume pays zero VM executions");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_truncates_to_the_last_intact_record() {
        let path = tmp_path("torn");
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        {
            let journal = Arc::new(Journal::open(&path).unwrap());
            let _ = journaling_pool(&journal).run_batch(&jobs, &CancelToken::new());
            journal.flush();
        }
        // Tear the last record mid-payload.
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let journal = Journal::open(&path).unwrap();
        assert_eq!(journal.loaded_records(), jobs.len() - 1);
        assert_eq!(journal.stats().torn_tail_truncations, 1);
        // Reopening the repaired file is clean.
        drop(journal);
        let journal = Journal::open(&path).unwrap();
        assert_eq!(journal.stats().torn_tail_truncations, 0);
        assert_eq!(journal.loaded_records(), jobs.len() - 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_payload_bytes_fail_the_crc() {
        let path = tmp_path("crc");
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        {
            let journal = Arc::new(Journal::open(&path).unwrap());
            let _ = journaling_pool(&journal).run_batch(&jobs, &CancelToken::new());
            journal.flush();
        }
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let second_payload = 12 + 8 + first_len + 8 + 4;
        bytes[second_payload] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let journal = Journal::open(&path).unwrap();
        assert_eq!(journal.loaded_records(), 1, "records after the flip drop");
        assert_eq!(journal.stats().torn_tail_truncations, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unrecognized_header_degrades_to_cold_start() {
        let path = tmp_path("header");
        std::fs::write(&path, b"not a journal at all").unwrap();
        let journal = Journal::open(&path).unwrap();
        assert_eq!(journal.loaded_records(), 0);
        assert_eq!(journal.stats().torn_tail_truncations, 1);
        // The rewritten file is a valid empty journal.
        drop(journal);
        let journal = Journal::open(&path).unwrap();
        assert_eq!(journal.stats().torn_tail_truncations, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_at_record_keeps_a_prefix() {
        let path = tmp_path("truncate");
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        {
            let journal = Arc::new(Journal::open(&path).unwrap());
            let _ = journaling_pool(&journal).run_batch(&jobs, &CancelToken::new());
            journal.flush();
        }
        assert_eq!(truncate_at_record(&path, 2).unwrap(), 2);
        assert_eq!(record_count(&path).unwrap(), 2);
        let journal = Journal::open(&path).unwrap();
        assert_eq!(journal.loaded_records(), 2);
        assert_eq!(journal.stats().torn_tail_truncations, 0, "clean cut");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inconclusive_outcomes_are_never_journaled() {
        let path = tmp_path("inconclusive");
        let program = fig1_program();
        // A one-step budget times out every schedule.
        let jobs: Vec<ExecJob> = fig1_jobs(&program)
            .into_iter()
            .map(|j| ExecJob {
                enforce: EnforceConfig { step_budget: 1 },
                ..j
            })
            .collect();
        let journal = Arc::new(Journal::open(&path).unwrap());
        let _ = journaling_pool(&journal).run_batch(&jobs, &CancelToken::new());
        assert_eq!(journal.stats().records_appended, 0);
        journal.flush();
        assert_eq!(record_count(&path).unwrap(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn digest_is_content_keyed_and_identity_cached() {
        let a = fig1_program();
        let b = fig1_program();
        assert_eq!(program_digest(&a), program_digest(&a));
        assert_eq!(program_digest(&a), program_digest(&b), "same content");
        let mut p = ProgramBuilder::new("other");
        let g = p.global("x", 0);
        {
            let mut t = p.syscall_thread("T", "w");
            t.store_global(g, 1u64);
            t.ret();
        }
        let other = Arc::new(p.build().unwrap());
        assert_ne!(program_digest(&a), program_digest(&other));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_failure_is_sticky_and_disables_the_journal() {
        let path = tmp_path("fsync-poison");
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let journal = Arc::new(Journal::open(&path).unwrap());
        let pool = journaling_pool(&journal);
        let out = pool.run_batch(&jobs, &CancelToken::new());
        assert!(out.iter().all(Option::is_some));
        let appended_before = journal.stats().records_appended;
        assert!(appended_before > 0, "healthy journal appends");
        assert!(!journal.stats().fsync_failed);

        // The temp dir goes bad under the journal: every fsync now fails.
        journal.poison_fsync();
        journal.flush();
        assert!(journal.stats().fsync_failed, "failure is surfaced");

        // Disabled: no further appends land, in memory or on disk.
        let more = ExecJob {
            program: Arc::clone(&program),
            schedule: Schedule::serial(vec![sel(1), sel(0), sel(1)]),
            enforce: EnforceConfig { step_budget: 77 },
        };
        let one = pool.run_batch(std::slice::from_ref(&more), &CancelToken::new());
        assert!(one[0].is_some());
        assert_eq!(journal.stats().records_appended, appended_before);
        // Sticky across flushes; the flag never clears.
        journal.flush();
        assert!(journal.stats().fsync_failed);
        drop(pool);
        drop(journal);

        // The surviving prefix is still a valid journal: reopening reads
        // exactly the records appended while fsync was healthy.
        let reopened = Journal::open(&path).unwrap();
        assert_eq!(reopened.loaded_records() as u64, appended_before);
        assert!(!reopened.stats().fsync_failed, "flag is per-process");
        let _ = std::fs::remove_file(&path);
    }
}
