//! `aitia` — root-cause diagnosis of kernel concurrency failures.
//!
//! Reproduction of the AITIA system (EuroSys 2023): Least Interleaving
//! First Search ([`lifs`]) reproduces a concurrency failure as a
//! deterministic failure-causing instruction sequence, and Causality
//! Analysis ([`causality`]) flips each data race's interleaving order to
//! decide whether it contributes to the failure, assembling the root cause
//! as a *causality chain*.
//!
//! Module map (paper section in parentheses):
//!
//! * [`backend`] — the pluggable execution-substrate contract
//!   ([`backend::ExecBackend`]) with the default `ksim` implementation and
//!   the feature-gated KVM microVM;
//! * [`race`] — data races, happens-before, critical sections (§2);
//! * [`schedule`] — scheduling points and schedules (§4.3);
//! * [`enforce`] — schedule enforcement, the hypervisor equivalent (§4.4);
//! * [`exec`] — the shared VM-pool execution layer: batch scheduling of
//!   enforced runs with deterministic canonical-order folding;
//! * [`lifs`] — Least Interleaving First Search (§3.3);
//! * [`causality`] — Causality Analysis and chain construction (§3.4);
//! * [`simtime`] — the deterministic cost model standing in for the paper's
//!   wall-clock measurements (32 VMs, reboot-on-failure);
//! * [`manager`] — parallel reproducer/diagnoser orchestration (§4.1, §4.5);
//! * [`journal`] — the durable write-ahead run journal backing kill-and-resume;
//! * [`campaign`] — crash-safe, deadline-budgeted campaign driver;
//! * [`server`] — `campaignd`: a supervised multi-campaign diagnosis service
//!   with a persistent job queue, admission control, fair-share VM
//!   scheduling, and dead-letter quarantine;
//! * [`report`] — human-readable chain and diagnosis reports.
//!
//! # Example
//!
//! Diagnose the paper's Figure 1 bug end to end:
//!
//! ```
//! use aitia::{CausalityAnalysis, CausalityConfig, Lifs, LifsConfig};
//! use ksim::builder::{cond_reg, ProgramBuilder};
//! use ksim::CmpOp;
//! use std::sync::Arc;
//!
//! // Model the racing kernel paths.
//! let mut p = ProgramBuilder::new("fig1");
//! let obj = p.static_obj("obj", 8);
//! let ptr_valid = p.global("ptr_valid", 0);
//! let ptr = p.global_ptr("ptr", obj);
//! {
//!     let mut a = p.syscall_thread("A", "write");
//!     a.n("A1").store_global(ptr_valid, 1u64);
//!     a.n("A2").load_global("r0", ptr);
//!     a.load_ind("r1", "r0", 0); // *ptr
//!     a.ret();
//! }
//! {
//!     let mut b = p.syscall_thread("B", "write");
//!     let out = b.new_label();
//!     b.n("B1").load_global("r0", ptr_valid);
//!     b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
//!     b.n("B2").store_global(ptr, 0u64);
//!     b.place(out);
//!     b.ret();
//! }
//! let program = Arc::new(p.build().unwrap());
//!
//! // LIFS reproduces; Causality Analysis builds the chain.
//! let run = Lifs::new(program, LifsConfig::default())
//!     .search()
//!     .failing
//!     .expect("the race reproduces");
//! let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
//! assert_eq!(
//!     result.chain.to_string(),
//!     "A1 ⇒ B1 → B2 ⇒ A2 → NULL pointer dereference"
//! );
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod campaign;
pub mod causality;
pub mod enforce;
pub mod exec;
pub mod journal;
pub mod lifs;
pub mod manager;
pub mod race;
pub mod report;
pub mod schedule;
pub mod server;
pub mod simtime;

pub use backend::{
    BackendKind,
    BackendSnapshot,
    ExecBackend,
    KsimBackend, //
};
pub use campaign::{
    Campaign,
    CampaignOutcome,
    PartialDiagnosis, //
};
pub use causality::chain::{
    CausalityChain,
    ChainNode, //
};
pub use causality::{
    CausalityAnalysis,
    CausalityConfig,
    CausalityLevel,
    CausalityResult,
    Verdict, //
};
pub use enforce::{
    run as enforce_run,
    EnforceConfig,
    RunOutcome,
    RunResult,
    SnapshotCache,
    SnapshotForest, //
};
pub use exec::{
    CancelToken,
    ClaimMode,
    DeadlineBudget,
    ExecJob,
    ExecOutput,
    ExecStats,
    Executor,
    ExecutorConfig,
    FaultInjection,
    FaultKind,
    Substrate, //
};
pub use journal::{
    Journal,
    JournalStats, //
};
pub use lifs::{
    FailingRun,
    FailureTarget,
    Lifs,
    LifsConfig,
    LifsOutput,
    PruneLevel, //
};
pub use race::{
    races_in_trace,
    AccessClass,
    ConflictIndex,
    ObservedRace,
    RaceEnd, //
};
pub use schedule::{
    Anchor,
    SchedPoint,
    Schedule,
    ThreadSel, //
};
pub use server::{
    CampaignServer,
    JobQueue,
    JobResolver,
    JobSnapshot,
    JobState,
    ResolvedJob,
    RetryBackoff,
    ServerConfig,
    ServerStats,
    SubmitError, //
};
pub use simtime::CostModel;
