//! Crash-safe diagnosis campaigns: kill-and-resume plus deadline-budgeted
//! graceful degradation.
//!
//! A [`Campaign`] wraps [`Manager`] with the two robustness properties a
//! long-running diagnosis needs:
//!
//! * **Durability.** With a [`Journal`] configured, every conclusive
//!   schedule execution is appended to a write-ahead log before the
//!   campaign consumes it. A relaunched campaign replays the journal into
//!   the process-wide memo table, so every previously-executed schedule is
//!   answered at zero VM cost — and because consumers are memo-invariant
//!   (PR 3), the resumed diagnosis is bit-identical to an uninterrupted
//!   one. A truncated or corrupt journal degrades to a cold start with a
//!   warning, never a panic or a wrong diagnosis.
//!
//! * **Bounded time.** With a wall-clock or simulated-time deadline
//!   configured ([`ManagerConfig::wall_deadline_s`],
//!   [`ManagerConfig::sim_deadline_s`]), an expired budget stops in-flight
//!   batches and the campaign returns best-so-far results as a
//!   [`PartialDiagnosis`]: LIFS keeps its deepest frontier, and every race
//!   whose flip never ran is marked [`Verdict::Unverified`] — never
//!   silently `Benign`, because the absence of a flip is not evidence of
//!   harmlessness.
//!
//! Journal replay requires memoization ([`ManagerConfig::memo`]) to stay
//! enabled — the replayed records are served *through* the memo table.

use crate::{
    causality::Verdict,
    journal::{
        Journal,
        JournalStats, //
    },
    manager::{
        Diagnosis,
        Manager,
        ManagerConfig,
        SliceResolver, //
    },
};
use khist::ExecHistory;
use ksim::Program;
use std::path::Path;
use std::sync::Arc;

/// A diagnosis cut short by an expired deadline budget: everything the
/// campaign established before the budget ran out, with the unverified
/// remainder accounted for explicitly.
#[derive(Debug)]
pub struct PartialDiagnosis {
    /// The best-so-far diagnosis (chain, verdicts, statistics).
    pub diagnosis: Diagnosis,
    /// How many tested races are [`Verdict::Unverified`] — their flips
    /// never executed.
    pub unverified: usize,
    /// Whether the manager's deadline budget fired (as opposed to a
    /// partial result from an external cancellation).
    pub deadline_fired: bool,
}

/// What a campaign concluded.
#[derive(Debug)]
pub enum CampaignOutcome {
    /// Every race was flipped and judged: the diagnosis is complete.
    Complete(Diagnosis),
    /// A deadline (or cancellation) cut the campaign short: best-so-far
    /// results with explicit unverified accounting.
    Partial(PartialDiagnosis),
    /// No slice reproduced the failure.
    NoReproduction {
        /// Whether a deadline fired before the search was exhausted (the
        /// non-reproduction is then *not* evidence of absence).
        deadline_fired: bool,
    },
}

impl CampaignOutcome {
    /// The diagnosis, complete or partial.
    #[must_use]
    pub fn diagnosis(&self) -> Option<&Diagnosis> {
        match self {
            CampaignOutcome::Complete(d) => Some(d),
            CampaignOutcome::Partial(p) => Some(&p.diagnosis),
            CampaignOutcome::NoReproduction { .. } => None,
        }
    }

    /// Whether the outcome was degraded by a deadline or cancellation.
    #[must_use]
    pub fn is_partial(&self) -> bool {
        matches!(self, CampaignOutcome::Partial(_))
    }

    /// Whether a deadline budget fired during the campaign.
    #[must_use]
    pub fn deadline_fired(&self) -> bool {
        match self {
            CampaignOutcome::Complete(_) => false,
            CampaignOutcome::Partial(p) => p.deadline_fired,
            CampaignOutcome::NoReproduction { deadline_fired } => *deadline_fired,
        }
    }
}

/// The crash-safe campaign driver.
pub struct Campaign {
    manager: Manager,
    journal: Option<Arc<Journal>>,
}

impl Campaign {
    /// Creates a campaign from a fully-specified configuration (the
    /// journal, if any, rides in [`ManagerConfig::journal`]).
    #[must_use]
    pub fn new(config: ManagerConfig) -> Self {
        let journal = config.journal.clone();
        Campaign {
            manager: Manager::new(config),
            journal,
        }
    }

    /// Creates a campaign journaling to `path`. An unusable journal file
    /// (unwritable path, permissions) degrades to a journal-less campaign
    /// with a warning — durability is best-effort, correctness is not.
    #[must_use]
    pub fn with_journal_path(mut config: ManagerConfig, path: impl AsRef<Path>) -> Self {
        let path = path.as_ref();
        match Journal::open(path) {
            Ok(j) => config.journal = Some(Arc::new(j)),
            Err(e) => {
                eprintln!(
                    "aitia-campaign: cannot open journal {} ({e}); \
                     running without durability",
                    path.display()
                );
            }
        }
        Campaign::new(config)
    }

    /// The underlying manager.
    #[must_use]
    pub fn manager(&self) -> &Manager {
        &self.manager
    }

    /// The journal's counters, when one is configured.
    #[must_use]
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.journal.as_ref().map(|j| j.stats())
    }

    /// Diagnoses over candidate slices, replaying the journal first so a
    /// relaunched campaign re-pays nothing for schedules it already ran.
    #[must_use]
    pub fn diagnose(&self, slices: &[Arc<Program>]) -> CampaignOutcome {
        if let Some(journal) = &self.journal {
            for program in slices {
                // Replay into the substrate this campaign's executors will
                // actually consult — a campaign isolated on a private
                // substrate must not leak its journal into (or depend on)
                // the process-global table.
                journal.replay_into_substrate(
                    program,
                    self.manager.substrate(),
                    self.manager.backend(),
                );
            }
        }
        let diagnosis = self.manager.diagnose(slices);
        if let Some(journal) = &self.journal {
            journal.flush();
            // A failed fsync disabled the journal mid-campaign (the Journal
            // itself stops appending — every holder shares the Arc, so the
            // executor's appends stop too). Surface the degradation here:
            // the diagnosis is still correct, but this campaign is NOT
            // resumable past the last durable record.
            if journal.fsync_failed() {
                eprintln!(
                    "aitia-campaign: journal {} was disabled after an fsync \
                     failure; the campaign completed without crash-safety",
                    journal.path().display()
                );
            }
        }
        self.classify(diagnosis)
    }

    /// Diagnoses a single program (one-slice convenience).
    #[must_use]
    pub fn diagnose_program(&self, program: Arc<Program>) -> CampaignOutcome {
        self.diagnose(&[program])
    }

    /// The full input-to-chain pipeline over an execution history
    /// ([`Manager::diagnose_history`]), with journal replay and outcome
    /// classification.
    #[must_use]
    pub fn diagnose_history(
        &self,
        history: &ExecHistory,
        resolver: &dyn SliceResolver,
    ) -> CampaignOutcome {
        let slices: Vec<Arc<Program>> = khist::slices(history)
            .iter()
            .filter_map(|s| resolver.resolve(s))
            .collect();
        self.diagnose(&slices)
    }

    fn classify(&self, diagnosis: Option<Diagnosis>) -> CampaignOutcome {
        let deadline_fired = self.manager.deadline_fired();
        let Some(d) = diagnosis else {
            return CampaignOutcome::NoReproduction { deadline_fired };
        };
        let unverified = d
            .result
            .tested
            .iter()
            .filter(|t| t.verdict == Verdict::Unverified)
            .count();
        let partial = deadline_fired
            || d.lifs_stats.deadline_fired
            || d.result.stats.deadline_fired
            || unverified > 0;
        if partial {
            CampaignOutcome::Partial(PartialDiagnosis {
                diagnosis: d,
                unverified,
                deadline_fired,
            })
        } else {
            CampaignOutcome::Complete(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simtime::CostModel;
    use ksim::builder::ProgramBuilder;

    fn fig1_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    fn serial_config() -> ManagerConfig {
        // memo off keeps every run executed (and so deadline-charged)
        // regardless of what other tests put in the process-wide table.
        ManagerConfig {
            vms: 1,
            memo: false,
            ..ManagerConfig::default()
        }
    }

    #[test]
    fn unbudgeted_campaign_is_complete() {
        let outcome = Campaign::new(serial_config()).diagnose_program(fig1_program());
        let CampaignOutcome::Complete(d) = outcome else {
            panic!("expected a complete diagnosis, got {outcome:?}");
        };
        assert_eq!(d.result.chain.race_count(), 2);
        assert!(!outcome_like(&d));
        fn outcome_like(d: &Diagnosis) -> bool {
            d.result.tested.iter().any(|t| t.outcome.is_none())
        }
    }

    #[test]
    fn sim_deadline_mid_analysis_yields_partial_with_unverified_never_benign() {
        // Measure the un-budgeted campaign, then rerun with a simulated-time
        // budget that covers LIFS plus a sliver: the budget expires during
        // the causality pass, leaving later flips unexecuted.
        let complete = Campaign::new(serial_config()).diagnose_program(fig1_program());
        let d = complete.diagnosis().expect("fig1 reproduces");
        let model = CostModel {
            vms: 1,
            ..CostModel::default()
        };
        let lifs_s = d.lifs_stats.sim.seconds(&model);
        let budget = lifs_s + model.per_schedule_s * 0.5;
        let outcome = Campaign::new(ManagerConfig {
            sim_deadline_s: Some(budget),
            ..serial_config()
        })
        .diagnose_program(fig1_program());
        let CampaignOutcome::Partial(p) = outcome else {
            panic!("expected a partial diagnosis, got {outcome:?}");
        };
        assert!(p.deadline_fired);
        assert!(p.unverified > 0, "some flips must have been cut off");
        for t in &p.diagnosis.result.tested {
            // The degradation invariant: a race whose flip never ran is
            // Unverified — it must never be silently excluded as Benign.
            if t.outcome.is_none() {
                assert_eq!(t.verdict, Verdict::Unverified, "race {:?}", t.race.key());
                assert_eq!(t.provenance(), "not executed (deadline)");
            }
            assert!(
                !(t.outcome.is_none() && t.verdict == Verdict::Benign),
                "un-flipped race {:?} labeled Benign",
                t.race.key()
            );
        }
        assert!(p.diagnosis.result.stats.deadline_fired);
        assert_eq!(
            p.unverified,
            p.diagnosis.result.unverified().len(),
            "count matches the result helper"
        );
    }

    #[test]
    fn zero_wall_deadline_degrades_no_reproduction_gracefully() {
        let outcome = Campaign::new(ManagerConfig {
            wall_deadline_s: Some(0.0),
            ..serial_config()
        })
        .diagnose_program(fig1_program());
        let CampaignOutcome::NoReproduction { deadline_fired } = outcome else {
            panic!("an already-expired budget cannot reproduce: {outcome:?}");
        };
        assert!(deadline_fired);
    }

    #[test]
    fn journaled_campaign_resumes_bit_identically() {
        let mut path = std::env::temp_dir();
        path.push(format!("aitia-campaign-test-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let first = Campaign::with_journal_path(ManagerConfig::default(), &path);
        let outcome = first.diagnose_program(fig1_program());
        let d1 = outcome
            .diagnosis()
            .expect("fig1 reproduces")
            .result
            .chain
            .to_string();
        let appended = first.journal_stats().expect("journal configured");
        assert!(appended.records_appended > 0);
        // The resumed campaign sees a content-identical program in a fresh
        // allocation (a restarted process); only the journal can answer.
        let resumed = Campaign::with_journal_path(ManagerConfig::default(), &path);
        let outcome = resumed.diagnose_program(fig1_program());
        let d2 = outcome
            .diagnosis()
            .expect("fig1 reproduces")
            .result
            .chain
            .to_string();
        assert_eq!(d1, d2);
        let stats = resumed.journal_stats().expect("journal configured");
        assert!(stats.records_replayed > 0, "resume replayed the journal");
        assert_eq!(
            stats.records_appended, 0,
            "a full resume re-executes nothing new"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn campaign_degrades_to_journal_disabled_on_fsync_failure() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "aitia-campaign-fsync-test-{}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let campaign = Campaign::with_journal_path(serial_config(), &path);
        // The journal's temp dir goes bad before any record lands: every
        // fsync fails, so the very first flush disables the journal.
        campaign
            .journal
            .as_ref()
            .expect("journal configured")
            .poison_fsync();
        let outcome = campaign.diagnose_program(fig1_program());
        // The diagnosis itself is unaffected — durability degrades,
        // correctness does not.
        assert!(matches!(outcome, CampaignOutcome::Complete(_)));
        let stats = campaign.journal_stats().expect("journal configured");
        assert!(stats.fsync_failed, "durability loss must be surfaced");
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite: cross-campaign digest isolation. Two campaigns diagnosing
    /// the *same* program object on private substrates share no memo state
    /// — the second pays full VM execution — while two campaigns sharing
    /// one substrate (the `campaignd` configuration) serve the second
    /// largely from the first's entries. Either way the diagnosis digest is
    /// bit-identical, which is exactly why cross-campaign sharing is safe.
    #[test]
    fn private_substrates_isolate_campaigns_shared_substrates_memoize() {
        use crate::exec::Substrate;
        let program = fig1_program();
        let with_substrate = |substrate: Substrate| {
            let campaign = Campaign::new(ManagerConfig {
                vms: 1,
                substrate,
                ..ManagerConfig::default()
            });
            let outcome = campaign.diagnose_program(Arc::clone(&program));
            let digest = outcome
                .diagnosis()
                .expect("fig1 reproduces")
                .result
                .chain
                .to_string();
            (digest, campaign.manager().exec_stats())
        };
        // Isolated: the second campaign's table starts empty.
        let (d1, s1) = with_substrate(Substrate::private(8192, 256));
        let (d2, s2) = with_substrate(Substrate::private(8192, 256));
        assert_eq!(d1, d2);
        // A lone diagnosis hits its *own* substrate (repeated schedules),
        // so isolation shows up as the second campaign's counters matching
        // the first's exactly — nothing carried over.
        assert_eq!(
            s2.memo_hits, s1.memo_hits,
            "a private substrate must not observe another campaign's state"
        );
        assert_eq!(s1.runs, s2.runs, "both isolated campaigns pay full price");
        // Shared: one handle, two campaigns — the second hits.
        let shared = Substrate::private(8192, 256);
        assert!(shared.shares_with(&shared.clone()));
        assert!(!shared.shares_with(&Substrate::private(8192, 256)));
        let (d3, _) = with_substrate(shared.clone());
        let (d4, s4) = with_substrate(shared);
        assert_eq!(d3, d4);
        assert_eq!(d1, d3, "substrate choice never changes the diagnosis");
        assert!(
            s4.memo_hits > 0,
            "a shared substrate serves the second campaign from the first's entries"
        );
        assert!(s4.runs < s2.runs, "sharing must save VM executions");
    }

    #[test]
    fn journaled_campaign_on_private_substrate_replays_into_it() {
        use crate::exec::Substrate;
        let mut path = std::env::temp_dir();
        path.push(format!(
            "aitia-campaign-substrate-test-{}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let config = || ManagerConfig {
            vms: 1,
            substrate: Substrate::private(8192, 256),
            ..ManagerConfig::default()
        };
        let first = Campaign::with_journal_path(config(), &path);
        let d1 = first
            .diagnose_program(fig1_program())
            .diagnosis()
            .expect("fig1 reproduces")
            .result
            .chain
            .to_string();
        // The resumed campaign's private substrate starts empty; only the
        // journal replay (into *that* substrate) can spare re-execution.
        let resumed = Campaign::with_journal_path(config(), &path);
        let d2 = resumed
            .diagnose_program(fig1_program())
            .diagnosis()
            .expect("fig1 reproduces")
            .result
            .chain
            .to_string();
        assert_eq!(d1, d2);
        let stats = resumed.journal_stats().expect("journal configured");
        assert!(stats.records_replayed > 0);
        assert_eq!(
            stats.records_appended, 0,
            "the replay must land in the private substrate the executors consult"
        );
        assert_eq!(resumed.manager().exec_stats().runs, 0, "full resume");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unwritable_journal_path_degrades_to_no_durability() {
        let campaign =
            Campaign::with_journal_path(ManagerConfig::default(), "/nonexistent-dir/journal.wal");
        assert!(campaign.journal_stats().is_none());
        let outcome = campaign.diagnose_program(fig1_program());
        assert!(outcome.diagnosis().is_some(), "diagnosis still runs");
    }
}
