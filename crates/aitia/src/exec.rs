//! The shared VM-pool execution layer (DESIGN.md §5).
//!
//! Every consumer of schedule execution — LIFS rounds, Causality Analysis
//! flips, the manager's slice fan-out — goes through one executor that owns
//! the worker "VMs" (per-worker [`ksim::Engine`]s plus snapshot-prefix
//! caches). Callers submit *batches* of `(program, schedule)` jobs and fold
//! the results in canonical submission order, which keeps every consumer
//! bit-for-bit deterministic at any worker count:
//!
//! * each job is a pure function of its program and schedule (sequential
//!   consistency of the engine), so *which* worker runs it cannot change
//!   its result;
//! * workers claim job indices from a single monotone counter, and an
//!   early-stop request at index `i` only ever *lowers* the shared stop
//!   bound — so every index at or below the final bound is guaranteed to
//!   have been executed, and the returned prefix is complete;
//! * results beyond the final stop bound are discarded (speculative work),
//!   never folded.
//!
//! Cancellation is checked at schedule boundaries (job claim time): an
//! in-flight search stops submitting work but completed results still form
//! a contiguous prefix that callers can fold deterministically.

use crate::{
    enforce::{
        run_cached,
        EnforceConfig,
        RunResult,
        SnapshotCache, //
    },
    schedule::{
        Schedule,
        ThreadSel, //
    },
};
use ksim::{
    Engine,
    Program,
    ThreadId, //
};
use std::{
    collections::HashMap,
    sync::{
        atomic::{
            AtomicBool,
            AtomicUsize,
            Ordering, //
        },
        Arc,
        Mutex, //
    },
};

/// A cooperative cancellation flag, checked at schedule boundaries.
///
/// Tokens form a chain: a [`CancelToken::child`] is cancelled when either
/// it or any ancestor is cancelled, so the manager can abort one slice's
/// search without touching its siblings while a user-level cancel still
/// reaches everything.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    flag: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A child token: cancelled when either it or `self` is cancelled.
    #[must_use]
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Requests cancellation (of this token and all its children).
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::SeqCst);
    }

    /// Whether this token or any ancestor has been cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        let mut tok = Some(self);
        while let Some(t) = tok {
            if t.inner.flag.load(Ordering::SeqCst) {
                return true;
            }
            tok = t.inner.parent.as_ref();
        }
        false
    }
}

/// One unit of work: enforce `schedule` on a fresh (or prefix-restored)
/// boot of `program`.
#[derive(Clone, Debug)]
pub struct ExecJob {
    /// The kernel scenario to boot.
    pub program: Arc<Program>,
    /// The interleaving to enforce.
    pub schedule: Schedule,
    /// Enforcement limits.
    pub enforce: EnforceConfig,
}

/// The observable outcome of one job.
#[derive(Clone, Debug)]
pub struct ExecOutput {
    /// The enforced run, exactly as [`crate::enforce::run`] on a fresh
    /// engine would report it.
    pub run: RunResult,
    /// Stable selector of every runtime thread the run spawned.
    pub sel_of: HashMap<ThreadId, ThreadSel>,
}

/// Executor sizing.
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Worker ("VM") count. One worker executes jobs inline on the calling
    /// thread — the only serial path. Spawned OS threads are additionally
    /// capped at the host's available parallelism; results never depend on
    /// either number.
    pub vms: usize,
    /// Snapshot-prefix cache capacity per worker (0 disables caching).
    pub snapshot_cache: usize,
    /// Cap on spawned OS threads; `None` uses the host's available
    /// parallelism. Only wall-clock time depends on this — results are
    /// bit-for-bit identical at any value (tests force it above the host
    /// count to exercise the concurrent path on small machines).
    pub os_threads: Option<usize>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            vms: 8,
            snapshot_cache: 8,
            os_threads: None,
        }
    }
}

/// A worker's persistent state: the engine it keeps booted and the
/// snapshot-prefix cache for the program that engine is running. Both are
/// discarded when a batch hands the worker a different program.
struct WorkerVm {
    prog: usize,
    engine: Engine,
    cache: SnapshotCache,
}

/// The shared VM pool.
///
/// Worker state persists *across* batches (engines stay booted, caches stay
/// warm) but worker threads do not: each batch spawns scoped threads that
/// lock their slot for the batch's duration, so the executor holds no
/// running threads while idle and is trivially safe to drop.
pub struct Executor {
    config: ExecutorConfig,
    slots: Vec<Mutex<Option<WorkerVm>>>,
}

impl Executor {
    /// A pool with `vms` workers and default cache sizing.
    #[must_use]
    pub fn new(vms: usize) -> Executor {
        Executor::with_config(ExecutorConfig {
            vms,
            ..ExecutorConfig::default()
        })
    }

    /// A pool with explicit sizing. `vms` is clamped to at least 1.
    #[must_use]
    pub fn with_config(config: ExecutorConfig) -> Executor {
        let vms = config.vms.max(1);
        Executor {
            config,
            slots: (0..vms).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Worker count.
    #[must_use]
    pub fn vms(&self) -> usize {
        self.slots.len()
    }

    /// The OS-thread budget actually used for a batch (see
    /// [`ExecutorConfig::os_threads`]).
    fn os_threads(&self) -> usize {
        self.config
            .os_threads
            .unwrap_or_else(hardware_threads)
            .max(1)
    }

    /// Runs every job; `results[i]` is job `i`'s outcome, in submission
    /// order. Entries are `None` only past a cancellation boundary.
    #[must_use]
    pub fn run_batch(&self, jobs: &[ExecJob], cancel: &CancelToken) -> Vec<Option<ExecOutput>> {
        self.run_until(jobs, cancel, |_| false)
    }

    /// Runs jobs until `stop` accepts one, in *canonical* terms: the
    /// returned vector holds `Some` for a contiguous prefix of submission
    /// indices ending at the first accepted job (all of them executed), and
    /// `None` beyond it. Workers may speculatively execute later jobs;
    /// those results are discarded, so the outcome is identical to a serial
    /// front-to-back scan at any worker count.
    #[must_use]
    pub fn run_until<F>(
        &self,
        jobs: &[ExecJob],
        cancel: &CancelToken,
        stop: F,
    ) -> Vec<Option<ExecOutput>>
    where
        F: Fn(&ExecOutput) -> bool + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let cache_cap = self.config.snapshot_cache;
        let workers = self.slots.len().min(n).min(self.os_threads());
        if workers <= 1 {
            let mut slot = self.slots[0].lock().unwrap();
            let mut out: Vec<Option<ExecOutput>> = Vec::with_capacity(n);
            for job in jobs {
                if cancel.is_cancelled() {
                    break;
                }
                let res = run_job(&mut slot, job, cache_cap);
                let hit = stop(&res);
                out.push(Some(res));
                if hit {
                    break;
                }
            }
            out.resize_with(n, || None);
            return out;
        }

        let next = AtomicUsize::new(0);
        let stop_at = AtomicUsize::new(usize::MAX);
        let results: Vec<Mutex<Option<ExecOutput>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (results, next, stop_at, stop) = (&results, &next, &stop_at, &stop);
                let slot = &self.slots[w];
                scope.spawn(move || {
                    let mut slot = slot.lock().unwrap();
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        // `stop_at` only decreases, so a stale read can only
                        // make us execute speculatively, never skip an index
                        // at or below the final bound.
                        if i >= n || i > stop_at.load(Ordering::SeqCst) || cancel.is_cancelled() {
                            return;
                        }
                        let res = run_job(&mut slot, &jobs[i], cache_cap);
                        if stop(&res) {
                            stop_at.fetch_min(i, Ordering::SeqCst);
                        }
                        *results[i].lock().unwrap() = Some(res);
                    }
                });
            }
        });
        let cut = stop_at.load(Ordering::SeqCst);
        let mut out: Vec<Option<ExecOutput>> = results
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        for (i, r) in out.iter_mut().enumerate() {
            if i > cut {
                *r = None;
            }
        }
        normalize_prefix(&mut out);
        out
    }

    /// Fans `count` opaque tasks out over the pool's worker budget with the
    /// same canonical-prefix semantics as [`Executor::run_until`], *without*
    /// touching the pool's per-worker engines — so a task may itself run a
    /// (single-worker) executor without deadlocking. The manager uses this
    /// for slice fan-out.
    ///
    /// Each task receives a child of `cancel`; when an earlier task stops
    /// the scan, the tokens of all later in-flight tasks are cancelled so
    /// they abort at their next schedule boundary.
    #[must_use]
    pub fn run_tasks_until<T, F, S>(
        &self,
        count: usize,
        cancel: &CancelToken,
        task: F,
        stop: S,
    ) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(usize, CancelToken) -> T + Sync,
        S: Fn(&T) -> bool + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let tokens: Vec<CancelToken> = (0..count).map(|_| cancel.child()).collect();
        let workers = self.slots.len().min(count).min(self.os_threads());
        if workers <= 1 {
            let mut out: Vec<Option<T>> = Vec::with_capacity(count);
            for (i, token) in tokens.iter().enumerate() {
                if cancel.is_cancelled() {
                    break;
                }
                let res = task(i, token.clone());
                let hit = stop(&res);
                out.push(Some(res));
                if hit {
                    break;
                }
            }
            out.resize_with(count, || None);
            return out;
        }

        let next = AtomicUsize::new(0);
        let stop_at = AtomicUsize::new(usize::MAX);
        let results: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let (results, next, stop_at, task, stop, tokens) =
                    (&results, &next, &stop_at, &task, &stop, &tokens);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= count || i > stop_at.load(Ordering::SeqCst) || cancel.is_cancelled() {
                        return;
                    }
                    let res = task(i, tokens[i].clone());
                    if stop(&res) {
                        let bound = stop_at.fetch_min(i, Ordering::SeqCst).min(i);
                        // Only indices strictly above the (monotonically
                        // shrinking) bound are ever cancelled, so every task
                        // at or below the final bound ran uncancelled.
                        for t in &tokens[bound + 1..] {
                            t.cancel();
                        }
                    }
                    *results[i].lock().unwrap() = Some(res);
                });
            }
        });
        let cut = stop_at.load(Ordering::SeqCst);
        let mut out: Vec<Option<T>> = results
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        for (i, r) in out.iter_mut().enumerate() {
            if i > cut {
                *r = None;
            }
        }
        normalize_prefix(&mut out);
        out
    }
}

/// OS threads available to the process (cgroup-quota aware). By default the
/// pool never spawns more threads than this: `vms` is the *semantic* pool
/// width (it sizes the slots and the simulated cost model), while the OS
/// thread count is an implementation detail that cannot change any result —
/// oversubscribing a small host would only add context-switch overhead for
/// bit-identical output.
fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Executes one job on a worker's persistent VM, rebooting (and dropping
/// the snapshot cache) when the job's program differs from the VM's.
fn run_job(slot: &mut Option<WorkerVm>, job: &ExecJob, cache_cap: usize) -> ExecOutput {
    let key = Arc::as_ptr(&job.program) as usize;
    let vm = match slot {
        Some(vm) if vm.prog == key => vm,
        _ => slot.insert(WorkerVm {
            prog: key,
            engine: Engine::new(Arc::clone(&job.program)),
            cache: SnapshotCache::new(cache_cap),
        }),
    };
    let run = run_cached(&mut vm.engine, &job.schedule, &job.enforce, &mut vm.cache);
    let sel_of = vm
        .engine
        .threads()
        .iter()
        .map(|t| {
            (
                t.id,
                ThreadSel {
                    prog: t.prog,
                    occurrence: t.occurrence,
                },
            )
        })
        .collect();
    ExecOutput { run, sel_of }
}

/// Truncates at the first hole so callers always fold a contiguous prefix
/// (cancellation can otherwise leave an executed job after a skipped one).
fn normalize_prefix<T>(out: &mut [Option<T>]) {
    if let Some(first_none) = out.iter().position(Option::is_none) {
        for r in out.iter_mut().skip(first_none) {
            *r = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{
        Anchor,
        SchedPoint, //
    };
    use ksim::{
        builder::ProgramBuilder,
        FailureKind,
        InstrAddr,
        ThreadProgId, //
    };

    fn fig1_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    fn sel(p: u16) -> ThreadSel {
        ThreadSel::first(ThreadProgId(p))
    }

    /// A pool that really spawns `vms` OS threads, even on a host with
    /// fewer cores — the concurrent path must stay tested everywhere.
    fn threaded_pool(vms: usize) -> Executor {
        Executor::with_config(ExecutorConfig {
            vms,
            os_threads: Some(vms),
            ..ExecutorConfig::default()
        })
    }

    /// The failing fig1 interleaving plus the two benign serial orders.
    fn fig1_jobs(program: &Arc<Program>) -> Vec<ExecJob> {
        let failing = Schedule {
            start: Some(sel(0)),
            points: vec![SchedPoint {
                thread: sel(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: 1,
                },
                nth: 0,
                when: Anchor::Before,
                switch_to: sel(1),
            }],
            fallback: vec![sel(1), sel(0)],
            segments: Vec::new(),
        };
        [
            Schedule::serial(vec![sel(0), sel(1)]),
            Schedule::serial(vec![sel(1), sel(0)]),
            failing,
            Schedule::serial(vec![sel(0), sel(1)]),
        ]
        .into_iter()
        .map(|schedule| ExecJob {
            program: Arc::clone(program),
            schedule,
            enforce: EnforceConfig::default(),
        })
        .collect()
    }

    fn digest(out: &[Option<ExecOutput>]) -> Vec<Option<(Option<FailureKind>, usize)>> {
        out.iter()
            .map(|o| {
                o.as_ref()
                    .map(|o| (o.run.failure.as_ref().map(|f| f.kind), o.run.steps))
            })
            .collect()
    }

    #[test]
    fn batch_results_are_identical_across_worker_counts() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let baseline = Executor::new(1).run_batch(&jobs, &CancelToken::new());
        for vms in [2, 4, 8] {
            let got = threaded_pool(vms).run_batch(&jobs, &CancelToken::new());
            assert_eq!(digest(&baseline), digest(&got), "vms={vms}");
        }
        assert!(baseline.iter().all(Option::is_some));
    }

    #[test]
    fn run_until_stops_at_first_match_in_submission_order() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        for vms in [1, 2, 8] {
            let out = threaded_pool(vms)
                .run_until(&jobs, &CancelToken::new(), |o| o.run.failure.is_some());
            // Jobs 0–2 executed (2 is the first failing one), job 3 cut off.
            assert!(out[0].as_ref().is_some_and(|o| o.run.failure.is_none()));
            assert!(out[1].as_ref().is_some_and(|o| o.run.failure.is_none()));
            assert!(out[2].as_ref().is_some_and(|o| o.run.failure.is_some()));
            assert!(out[3].is_none(), "vms={vms}");
        }
    }

    #[test]
    fn cancelled_token_stops_at_schedule_boundary() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = threaded_pool(4).run_batch(&jobs, &cancel);
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn child_tokens_observe_parent_cancellation() {
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();
        assert!(!grandchild.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
        // Sibling cancellation does not propagate upward.
        let other = parent.child();
        other.cancel();
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn task_fanout_cancels_tasks_past_the_stop_index() {
        let exec = threaded_pool(4);
        let out = exec.run_tasks_until(
            6,
            &CancelToken::new(),
            |i, token| {
                if i > 2 {
                    // Later tasks spin until the index-2 stop cancels them.
                    while !token.is_cancelled() {
                        std::thread::yield_now();
                    }
                }
                i
            },
            |&i| i == 2,
        );
        assert_eq!(out[0], Some(0));
        assert_eq!(out[1], Some(1));
        assert_eq!(out[2], Some(2));
        assert!(out[3..].iter().all(Option::is_none));
    }

    #[test]
    fn workers_reuse_engines_across_batches() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let exec = threaded_pool(2);
        let first = exec.run_batch(&jobs, &CancelToken::new());
        let second = exec.run_batch(&jobs, &CancelToken::new());
        assert_eq!(digest(&first), digest(&second));
    }
}
