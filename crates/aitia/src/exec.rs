//! The shared VM-pool execution layer (DESIGN.md §5).
//!
//! Every consumer of schedule execution — LIFS rounds, Causality Analysis
//! flips, the manager's slice fan-out — goes through one executor that owns
//! the worker "VMs" (per-worker [`crate::backend::ExecBackend`] instances,
//! [`ksim::Engine`] by default, plus snapshot-prefix
//! caches). Callers submit *batches* of `(program, schedule)` jobs and fold
//! the results in canonical submission order, which keeps every consumer
//! bit-for-bit deterministic at any worker count:
//!
//! * each job is a pure function of its program and schedule (sequential
//!   consistency of the engine), so *which* worker runs it cannot change
//!   its result;
//! * workers claim job indices from a single monotone counter, and an
//!   early-stop request at index `i` only ever *lowers* the shared stop
//!   bound — so every index at or below the final bound is guaranteed to
//!   have been executed, and the returned prefix is complete;
//! * results beyond the final stop bound are discarded (speculative work),
//!   never folded.
//!
//! Cancellation is checked at schedule boundaries (job claim time): an
//! in-flight search stops submitting work but completed results still form
//! a contiguous prefix that callers can fold deterministically.

use crate::{
    backend::{
        BackendKind,
        ExecBackend, //
    },
    enforce::{
        run_cached_shared,
        schedule_fingerprint,
        EnforceConfig,
        RunOutcome,
        RunResult,
        SnapshotCache,
        SnapshotForest, //
    },
    journal::Journal,
    schedule::{
        Schedule,
        ThreadSel, //
    },
    simtime::CostModel,
};
use ksim::{
    Program,
    ThreadId, //
};
use std::{
    collections::{
        BTreeMap,
        HashMap,
        VecDeque, //
    },
    hash::{
        Hash,
        Hasher, //
    },
    sync::{
        atomic::{
            AtomicBool,
            AtomicU32,
            AtomicU64,
            AtomicUsize,
            Ordering, //
        },
        Arc,
        Mutex,
        OnceLock,
        Weak, //
    },
    time::Instant,
};

/// A cooperative cancellation flag, checked at schedule boundaries.
///
/// Tokens form a chain: a [`CancelToken::child`] is cancelled when either
/// it or any ancestor is cancelled, so the manager can abort one slice's
/// search without touching its siblings while a user-level cancel still
/// reaches everything.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    flag: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A child token: cancelled when either it or `self` is cancelled.
    #[must_use]
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Requests cancellation (of this token and all its children).
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::SeqCst);
    }

    /// Whether this token or any ancestor has been cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        let mut tok = Some(self);
        while let Some(t) = tok {
            if t.inner.flag.load(Ordering::SeqCst) {
                return true;
            }
            tok = t.inner.parent.as_ref();
        }
        false
    }
}

/// A wall-clock and/or simulated-time budget for a whole campaign, checked
/// by every executor claim loop at schedule boundaries (DESIGN.md §7).
///
/// When either budget runs out the deadline *fires* exactly once: it marks
/// itself fired and cancels every subscribed [`CancelToken`] (whose children
/// — per-slice search tokens, flip-batch tokens — observe the cancellation
/// through the existing token chain). In-flight batches then stop claiming
/// work, so consumers fold a contiguous best-so-far prefix and degrade
/// gracefully instead of being killed mid-result: LIFS returns its frontier,
/// Causality Analysis marks un-flipped races
/// [`crate::causality::Verdict::Unverified`].
///
/// The simulated budget is spent by executed runs only (memo hits are free,
/// exactly like [`ExecStats`] cost accounting): each run charges its
/// [`CostModel::serial_run_s`] divided by the model's VM count, each fault
/// retry charges the model's backoff, so the simulated clock advances the
/// way the reported campaign seconds do.
#[derive(Debug)]
pub struct DeadlineBudget {
    /// Wall-clock expiry instant, when a wall deadline was configured.
    wall: Option<Instant>,
    /// Simulated-seconds budget, in microseconds, when configured.
    sim_budget_us: Option<u64>,
    /// Cost model translating executed runs into simulated seconds.
    model: CostModel,
    /// Simulated microseconds spent so far.
    sim_spent_us: AtomicU64,
    /// Whether the deadline has fired.
    fired: AtomicBool,
    /// Tokens cancelled when the deadline fires, held weakly: a budget
    /// outliving its campaigns (or subscribed to repeatedly) must not pin
    /// dead tokens forever, so dropped subscribers are pruned on
    /// [`DeadlineBudget::subscribe`] and [`DeadlineBudget::check`].
    subscribers: Mutex<Vec<Weak<CancelInner>>>,
}

impl DeadlineBudget {
    /// A budget expiring after `wall_s` wall-clock seconds and/or `sim_s`
    /// simulated seconds (under `model`), whichever comes first. With both
    /// `None` the budget never fires.
    #[must_use]
    pub fn new(wall_s: Option<f64>, sim_s: Option<f64>, model: CostModel) -> DeadlineBudget {
        let wall = wall_s
            .filter(|s| s.is_finite() && *s >= 0.0)
            .map(|s| Instant::now() + std::time::Duration::from_secs_f64(s));
        let sim_budget_us = sim_s
            .filter(|s| s.is_finite() && *s >= 0.0)
            .map(|s| (s * 1e6) as u64);
        DeadlineBudget {
            wall,
            sim_budget_us,
            model,
            sim_spent_us: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            subscribers: Mutex::new(Vec::new()),
        }
    }

    /// Registers a token to be cancelled when the deadline fires. Its
    /// children (slice tasks, batch tokens) observe the cancellation through
    /// the normal parent chain. The registration is weak: once every strong
    /// clone of the token is dropped its slot is reclaimed, so subscriber
    /// count is bounded by *live* tokens, not by subscription history.
    pub fn subscribe(&self, token: &CancelToken) {
        let mut subs = self.subscribers.lock().unwrap();
        subs.retain(|w| w.strong_count() > 0);
        subs.push(Arc::downgrade(&token.inner));
    }

    /// Live subscriber count (dead weak registrations excluded). Exposed so
    /// long-running processes can assert the subscriber list stays bounded.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers
            .lock()
            .unwrap()
            .iter()
            .filter(|w| w.strong_count() > 0)
            .count()
    }

    /// Whether the deadline has fired.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Simulated seconds spent against the budget so far.
    #[must_use]
    pub fn sim_spent_s(&self) -> f64 {
        self.sim_spent_us.load(Ordering::SeqCst) as f64 / 1e6
    }

    /// Evaluates both budgets, firing the deadline if either has run out.
    /// Returns whether the deadline has fired (now or earlier).
    pub fn check(&self) -> bool {
        if self.fired() {
            return true;
        }
        // Opportunistic pruning keeps the weak list bounded even on budgets
        // that never fire; try_lock so claim loops never convoy here.
        if let Ok(mut subs) = self.subscribers.try_lock() {
            subs.retain(|w| w.strong_count() > 0);
        }
        let wall_hit = self.wall.is_some_and(|w| Instant::now() >= w);
        let sim_hit = self
            .sim_budget_us
            .is_some_and(|b| self.sim_spent_us.load(Ordering::SeqCst) >= b);
        if wall_hit || sim_hit {
            self.fire(if wall_hit {
                "wall-clock"
            } else {
                "simulated-time"
            });
            return true;
        }
        false
    }

    /// Fires exactly once: marks the budget expired and cancels subscribers.
    /// The subscriber list is snapshotted before any `cancel` runs: cancel
    /// observers may re-enter the budget (subscribe a cleanup token, query
    /// counts), which would deadlock against a lock held across the loop.
    fn fire(&self, which: &str) {
        if self.fired.swap(true, Ordering::SeqCst) {
            return;
        }
        let live: Vec<Arc<CancelInner>> = {
            let subs = self.subscribers.lock().unwrap();
            subs.iter().filter_map(Weak::upgrade).collect()
        };
        for inner in live {
            inner.flag.store(true, Ordering::SeqCst);
        }
        eprintln!(
            "aitia-exec: {which} deadline fired after {:.1} simulated seconds; \
             degrading to best-so-far results",
            self.sim_spent_s()
        );
    }

    /// Charges one executed run's simulated cost.
    pub(crate) fn charge_run(&self, steps: usize, failed: bool) {
        let serial = self.model.serial_run_s(steps, failed);
        self.charge_s(serial / f64::from(self.model.vms.max(1)));
    }

    /// Charges one fault retry's backoff.
    pub(crate) fn charge_retry(&self) {
        self.charge_s(self.model.retry_backoff_s / f64::from(self.model.vms.max(1)));
    }

    fn charge_s(&self, seconds: f64) {
        let us = (seconds * 1e6) as u64;
        self.sim_spent_us.fetch_add(us, Ordering::SeqCst);
    }
}

/// One unit of work: enforce `schedule` on a fresh (or prefix-restored)
/// boot of `program`.
#[derive(Clone, Debug)]
pub struct ExecJob {
    /// The kernel scenario to boot.
    pub program: Arc<Program>,
    /// The interleaving to enforce.
    pub schedule: Schedule,
    /// Enforcement limits.
    pub enforce: EnforceConfig,
}

/// The observable outcome of one job.
#[derive(Clone, Debug)]
pub struct ExecOutput {
    /// The enforced run, exactly as [`crate::enforce::run`] on a fresh
    /// engine would report it. For a job that exhausted its retry budget
    /// (`vm_faulted` is `Some`), this is an empty placeholder — no trace,
    /// no failure — that must not be read as a passing run; check
    /// `outcome` first.
    pub run: RunResult,
    /// Stable selector of every runtime thread the run spawned.
    pub sel_of: HashMap<ThreadId, ThreadSel>,
    /// Classification of the run, including the exec-layer-only
    /// [`RunOutcome::Crashed`].
    pub outcome: RunOutcome,
    /// How many times the job was retried after an injected VM fault
    /// before this result was produced. Deterministic: fault decisions
    /// depend only on the job's content and the attempt number.
    pub retries: u32,
    /// `Some` when every attempt (initial + `max_retries` retries)
    /// faulted and the executor gave up on the job; `run` is then a
    /// placeholder and `outcome` is [`RunOutcome::Crashed`] or
    /// [`RunOutcome::Timeout`].
    pub vm_faulted: Option<FaultKind>,
    /// Whether this output came from the process-wide result memo table
    /// instead of a VM execution. Memoized outputs are bit-identical to
    /// what the execution would have produced (enforcement is a pure
    /// function of program, schedule, and step budget); consumers use the
    /// flag only for cost accounting, never to branch on content.
    ///
    /// In particular the full [`RunResult`] — every step record with its
    /// accesses, lock events, held locks and spawns — rides along on a
    /// hit, because LIFS feeds it into its knowledge base (footprints,
    /// conflict index, solo traces). The DPOR sleep-set and persistent-set
    /// rules derive from that knowledge, so a memo hit grows sleep-set
    /// state exactly like the execution it stands in for, and pruning
    /// stays memo- and worker-count-invariant.
    pub memo_hit: bool,
    /// Snapshot-forest restores this job's execution consumed (a prefix
    /// published by *another* worker; 0 on a memo hit — nothing executed).
    pub forest_hits: u32,
}

/// The kind of a (simulated) VM fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The guest died under the run (panic outside the enforced scenario,
    /// QEMU crash). The worker's engine and snapshot cache are lost.
    Crash,
    /// The guest stopped responding (hypervisor watchdog fired). The run
    /// is abandoned and the VM restarted; the attempt reads as a timeout.
    Hang,
}

/// Deterministic, seed-driven VM-fault injection (DESIGN.md §5).
///
/// Real AITIA deployments lose VMs routinely: enforced schedules hang the
/// guest, crash it outright, or wedge QEMU. The simulator has no real
/// flakiness, so the retry/quarantine machinery is exercised by *injecting*
/// faults instead — at a configurable rate, decided by a hash of the
/// **job's content and the attempt number only**. Worker identity, batch
/// position, and wall-clock never enter the decision, so whether a given
/// job faults (and on which attempt it recovers) is identical at any
/// worker count — the canonical-prefix determinism guarantee survives
/// fault injection unchanged.
#[derive(Clone, Copy, Debug)]
pub struct FaultInjection {
    /// Seed mixed into every fault decision.
    pub seed: u64,
    /// Fault probability per attempt, in permille (0 disables, 1000 faults
    /// every attempt).
    pub rate_permille: u32,
    /// Retries granted per job after its first faulted attempt. When the
    /// budget is exhausted the job publishes a placeholder output with
    /// [`ExecOutput::vm_faulted`] set.
    pub max_retries: u32,
    /// Quarantine a worker slot after this many *consecutive* jobs on it
    /// experienced a fault (0 disables the breaker). The last active slot
    /// is never quarantined.
    pub quarantine_after: u32,
}

impl Default for FaultInjection {
    fn default() -> Self {
        FaultInjection {
            seed: 0,
            rate_permille: 0,
            max_retries: 3,
            quarantine_after: 3,
        }
    }
}

impl FaultInjection {
    /// Decides whether attempt `attempt` of `job` faults, and if so how
    /// (kind) and where (the index of the schedule point the VM dies at —
    /// purely cosmetic in the simulator, but logged).
    ///
    /// Pure over `(self, job content, attempt)`: never consults worker
    /// identity, batch index, pointers, or time.
    #[must_use]
    pub fn decide(&self, job: &ExecJob, attempt: u32) -> Option<(FaultKind, usize)> {
        if self.rate_permille == 0 {
            return None;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        attempt.hash(&mut h);
        job.enforce.step_budget.hash(&mut h);
        match job.schedule.start {
            Some(s) => (1u8, s).hash(&mut h),
            None => 0u8.hash(&mut h),
        }
        for p in &job.schedule.points {
            p.thread.hash(&mut h);
            (p.at.prog.0, p.at.index).hash(&mut h);
            p.nth.hash(&mut h);
            u8::from(p.when == crate::schedule::Anchor::After).hash(&mut h);
            p.switch_to.hash(&mut h);
        }
        job.schedule.fallback.hash(&mut h);
        job.schedule.segments.hash(&mut h);
        let v = h.finish();
        if v % 1000 >= u64::from(self.rate_permille.min(1000)) {
            return None;
        }
        let kind = if (v >> 10) & 1 == 0 {
            FaultKind::Crash
        } else {
            FaultKind::Hang
        };
        let k = ((v >> 11) as usize) % (job.schedule.points.len() + 1);
        Some((kind, k))
    }
}

/// A snapshot of the pool's robustness counters (surfaced via `report`).
///
/// `runs`/`retries`/fault counts are deterministic at any worker count
/// (fault decisions are content-keyed); `quarantined_slots` and the cache
/// counters depend on which slot happened to claim which job and are
/// diagnostics only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Enforced runs actually executed (faulted attempts execute nothing).
    pub runs: u64,
    /// Attempts re-run after an injected fault.
    pub retries: u64,
    /// Injected faults of kind [`FaultKind::Crash`].
    pub crash_faults: u64,
    /// Injected faults of kind [`FaultKind::Hang`].
    pub hang_faults: u64,
    /// Jobs that faulted on every attempt and published a placeholder.
    pub gave_up: u64,
    /// Worker slots quarantined by the consecutive-fault breaker.
    pub quarantined_slots: u64,
    /// Worker VMs discarded and restarted after a fault.
    pub vm_restarts: u64,
    /// Snapshot-prefix cache hits across all workers.
    pub snapshot_hits: u64,
    /// Snapshot-prefix cache misses across all workers.
    pub snapshot_misses: u64,
    /// Jobs served from the process-wide result memo table without any VM
    /// execution. Worker-count *dependent* (two fingerprint-equal jobs in
    /// flight race to insert first), like the cache counters — a
    /// diagnostic, never folded into results.
    pub memo_hits: u64,
    /// Jobs that consulted the memo table and executed (fingerprint not
    /// yet seen).
    pub memo_misses: u64,
    /// Executed runs whose outcome was inconclusive (timeout / crash) and
    /// were therefore *excluded* from the memo table — the fault-exclusion
    /// rule: an inconclusive result proves nothing and must not shadow a
    /// future conclusive execution.
    pub memo_excluded: u64,
    /// Snapshot-forest restores across all workers: a run resumed from a
    /// prefix checkpoint published by another worker (absent from the
    /// restoring worker's local LRU).
    pub forest_hits: u64,
    /// Whether this executor's deadline budget fired: in-flight batches
    /// stopped claiming work and consumers folded best-so-far prefixes.
    /// Always `false` without a configured [`DeadlineBudget`].
    pub deadline_fired: bool,
    /// Batches (canonical folds) this pool completed.
    pub batches: u64,
    /// Deterministic simulated wall-clock of this pool, in nanoseconds
    /// under the default [`CostModel`] rates: per batch, each canonical
    /// (folded) job's serial cost is assigned greedily to the least-loaded
    /// of the pool's `vms` slots, and the batch contributes the maximum
    /// slot load. Unlike `SimCost::seconds` (which divides total serial
    /// cost by the pool width, i.e. assumes perfect utilization), this
    /// accounts for slot idleness — a 3-job batch on an 8-wide pool pays
    /// one job's duration while 5 slots sit idle. Memo/journal hits cost
    /// nothing but their retries; fault placeholders cost their retry
    /// backoff. Deterministic at any OS-thread count and claim mode (it is
    /// computed from the canonical fold, not from which worker ran what).
    pub sim_makespan_ns: u64,
    /// Engine steps executed across all workers (memo hits execute none).
    pub steps_executed: u64,
    /// Wall-clock nanoseconds workers spent inside VM execution, summed
    /// across workers — so `runs / (busy_ns / 1e9)` is per-worker-second
    /// throughput, not wall-clock throughput. Timing, hence host-dependent:
    /// a diagnostic, never folded into results.
    pub busy_ns: u64,
}

impl ExecStats {
    /// Enforced schedules per worker-busy second (0 when nothing ran).
    #[must_use]
    pub fn schedules_per_sec(&self) -> f64 {
        per_second(self.runs, self.busy_ns)
    }

    /// Engine instructions per worker-busy second (0 when nothing ran).
    #[must_use]
    pub fn instrs_per_sec(&self) -> f64 {
        per_second(self.steps_executed, self.busy_ns)
    }

    /// Simulated pool wall-clock in seconds (see
    /// [`ExecStats::sim_makespan_ns`]).
    #[must_use]
    pub fn sim_makespan_s(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.sim_makespan_ns as f64 / 1e9
        }
    }
}

/// `count / (ns / 1e9)`, guarding the nothing-ran case.
fn per_second(count: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        count as f64 / (ns as f64 / 1e9)
    }
}

/// Internal atomic counters behind [`ExecStats`].
#[derive(Debug, Default)]
struct StatCells {
    runs: AtomicU64,
    retries: AtomicU64,
    crash_faults: AtomicU64,
    hang_faults: AtomicU64,
    gave_up: AtomicU64,
    quarantined_slots: AtomicU64,
    vm_restarts: AtomicU64,
    snapshot_hits: AtomicU64,
    snapshot_misses: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    memo_excluded: AtomicU64,
    forest_hits: AtomicU64,
    batches: AtomicU64,
    sim_makespan_ns: AtomicU64,
    steps_executed: AtomicU64,
    busy_ns: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ExecStats {
        ExecStats {
            runs: self.runs.load(Ordering::SeqCst),
            retries: self.retries.load(Ordering::SeqCst),
            crash_faults: self.crash_faults.load(Ordering::SeqCst),
            hang_faults: self.hang_faults.load(Ordering::SeqCst),
            gave_up: self.gave_up.load(Ordering::SeqCst),
            quarantined_slots: self.quarantined_slots.load(Ordering::SeqCst),
            vm_restarts: self.vm_restarts.load(Ordering::SeqCst),
            snapshot_hits: self.snapshot_hits.load(Ordering::SeqCst),
            snapshot_misses: self.snapshot_misses.load(Ordering::SeqCst),
            memo_hits: self.memo_hits.load(Ordering::SeqCst),
            memo_misses: self.memo_misses.load(Ordering::SeqCst),
            memo_excluded: self.memo_excluded.load(Ordering::SeqCst),
            forest_hits: self.forest_hits.load(Ordering::SeqCst),
            deadline_fired: false,
            batches: self.batches.load(Ordering::SeqCst),
            sim_makespan_ns: self.sim_makespan_ns.load(Ordering::SeqCst),
            steps_executed: self.steps_executed.load(Ordering::SeqCst),
            busy_ns: self.busy_ns.load(Ordering::SeqCst),
        }
    }
}

/// How workers claim job indices inside a batch.
///
/// Either mode yields bit-identical batch results: jobs are pure functions
/// of `(program, schedule, step budget)` and results are folded in
/// submission order behind the canonical stop bound, so the claim order
/// can only move wall-clock time around.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClaimMode {
    /// All workers pull from one monotone `fetch_add` counter — the
    /// pre-refactor scheme, kept as the A/B throughput baseline. Every
    /// claim is a contended RMW on one cache line.
    Counter,
    /// Work stealing: indices are strided across per-worker deques up
    /// front; owners pop from the front, and a worker whose deque drains
    /// steals from the back of a peer's. Claims are contention-free until
    /// the tail of a batch.
    #[default]
    Steal,
}

/// Per-slot circuit-breaker state.
#[derive(Debug, Default)]
struct SlotHealth {
    /// Consecutive jobs on this slot that experienced a fault (reset by
    /// any fault-free job).
    consecutive_faults: AtomicU32,
    /// Whether the breaker has tripped for this slot.
    quarantined: AtomicBool,
}

/// Executor sizing.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// Worker ("VM") count. One worker executes jobs inline on the calling
    /// thread — the only serial path. Spawned OS threads are additionally
    /// capped at the host's available parallelism; results never depend on
    /// either number.
    pub vms: usize,
    /// Snapshot-prefix cache capacity per worker (0 disables caching).
    pub snapshot_cache: usize,
    /// Cap on spawned OS threads; `None` uses the host's available
    /// parallelism. Only wall-clock time depends on this — results are
    /// bit-for-bit identical at any value (tests force it above the host
    /// count to exercise the concurrent path on small machines).
    pub os_threads: Option<usize>,
    /// Deterministic VM-fault injection; `None` disables it.
    pub fault: Option<FaultInjection>,
    /// Whether jobs consult the substrate's result memo table and snapshot
    /// forest. Off, every job pays full VM execution (the A/B baseline for
    /// `report --no-memo`); results are bit-identical either way.
    pub memo: bool,
    /// Which memo table / snapshot forest this executor consults — the
    /// process-global one by default, or a [`Substrate::private`] handle
    /// for isolated campaigns and A/B benchmark sides. Ignored when `memo`
    /// is off.
    pub substrate: Substrate,
    /// Durable run journal: every fresh conclusive output (and every memo
    /// hit, deduplicated by key) is appended so a killed campaign can
    /// resume at zero VM cost. `None` disables journaling.
    pub journal: Option<Arc<Journal>>,
    /// Campaign deadline budget, checked at every job-claim boundary and
    /// charged by executed runs. `None` disables deadlines.
    pub deadline: Option<Arc<DeadlineBudget>>,
    /// How workers claim batch indices (results are identical either way;
    /// see [`ClaimMode`]).
    pub claim: ClaimMode,
    /// Force every worker engine into deep-clone snapshots (see
    /// [`crate::backend::ExecBackend::set_deep_snapshots`]) — the
    /// pre-refactor snapshot cost, kept as the A/B baseline for
    /// `report bench-throughput`. Off, engines use structurally-shared
    /// copy-on-write snapshots. Observable state is identical either way.
    pub deep_snapshots: bool,
    /// Which execution backend boots the worker VMs. Callers must validate
    /// [`BackendKind::available`] up front: booting an unavailable backend
    /// panics.
    pub backend: BackendKind,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            vms: 8,
            snapshot_cache: 8,
            os_threads: None,
            fault: None,
            memo: true,
            substrate: Substrate::process_global(),
            journal: None,
            deadline: None,
            claim: ClaimMode::default(),
            deep_snapshots: false,
            backend: BackendKind::default(),
        }
    }
}

/// One finished job's output, pinned to everything its correctness depends
/// on. The held `Arc<Program>` keeps the program allocation alive, so the
/// `Arc::ptr_eq` identity check on lookup can never alias a recycled
/// address; the full `Schedule` (plus step budget) is compared on lookup so
/// a fingerprint collision degrades to a miss, never a wrong answer.
struct MemoEntry {
    program: Arc<Program>,
    schedule: Schedule,
    step_budget: usize,
    /// The backend that produced the output. Part of the key: the table is
    /// shared process-wide, and an executor on one backend must never serve
    /// results recorded by another (identical by the conformance contract,
    /// but only a matching key keeps a *broken* backend observable).
    backend: BackendKind,
    output: ExecOutput,
}

impl MemoEntry {
    /// Whether this entry's full key matches `job` run on `backend`
    /// (fingerprint equality is only the bucket index; this is the
    /// collision-proof comparison).
    fn matches(&self, job: &ExecJob, backend: BackendKind) -> bool {
        self.backend == backend
            && Arc::ptr_eq(&self.program, &job.program)
            && self.step_budget == job.enforce.step_budget
            && self.schedule == job.schedule
    }
}

/// One lock-striped shard of the memo table: entries bucketed by
/// fingerprint for O(bucket) lookup, with a tick-ordered recency index for
/// O(log n) LRU maintenance — replacing the pre-refactor single
/// `Mutex<Vec<_>>` whose every `get` paid a linear scan of the whole table
/// under one process-wide lock.
#[derive(Default)]
struct MemoShard {
    /// Buckets by fingerprint; each entry carries its recency tick.
    entries: HashMap<u64, Vec<(u64, MemoEntry)>>,
    /// Recency order: tick → fingerprint (ticks are unique per shard, so
    /// the smallest tick is always the least-recently-used entry).
    recency: BTreeMap<u64, u64>,
    /// Monotone tick source for this shard.
    tick: u64,
    /// Live entry count across all buckets.
    len: usize,
}

impl MemoShard {
    fn touch(&mut self, fp: u64, old_tick: u64) -> u64 {
        self.recency.remove(&old_tick);
        self.tick += 1;
        self.recency.insert(self.tick, fp);
        self.tick
    }

    fn evict_lru(&mut self) {
        let Some((&tick, &fp)) = self.recency.iter().next() else {
            return;
        };
        self.recency.remove(&tick);
        let mut removed = false;
        if let Some(bucket) = self.entries.get_mut(&fp) {
            let before = bucket.len();
            bucket.retain(|(t, _)| *t != tick);
            removed = bucket.len() < before;
            // An emptied bucket must leave the map with its key: fingerprint
            // churn otherwise grows `entries` without bound — every evicted
            // singleton fingerprint would stay behind as a permanent
            // zero-length bucket.
            if bucket.is_empty() {
                self.entries.remove(&fp);
            }
        }
        if removed {
            self.len -= 1;
        }
    }

    /// `(bucket keys, live entries, recency entries)` — test diagnostics
    /// for the bounded-occupancy invariant: bucket keys and recency
    /// entries may never outgrow live entries.
    #[cfg(test)]
    fn diag(&self) -> (usize, usize, usize) {
        (
            self.entries.len(),
            self.entries.values().map(Vec::len).sum(),
            self.recency.len(),
        )
    }
}

/// Number of lock stripes in the memo table. Sixteen shards keep the
/// workers of an 8-wide pool (plus the manager's per-slice executors) from
/// convoying on one mutex while staying small enough that per-shard LRU
/// capacity (`cap / 16`) still covers a diagnosis working set.
const MEMO_SHARDS: usize = 16;

/// The process-wide result memo table (DESIGN.md §6).
///
/// Enforcement is a pure function of `(program, schedule, step budget)`:
/// once any worker of any executor has driven a job to a *conclusive*
/// outcome, every later job with the same canonical fingerprint can return
/// the cached [`ExecOutput`] — full trace included, so downstream trace
/// consumers (causality edge extraction) see exactly what a re-execution
/// would have shown — at zero simulated cost. Inconclusive outcomes
/// (timeout, crash) are never inserted, and exec-layer fault placeholders
/// never reach the table at all (faults are decided *before* the lookup).
///
/// Concurrency: the table is striped into [`MEMO_SHARDS`] independently
/// locked shards keyed by `fingerprint % MEMO_SHARDS`, so lookups for
/// different schedules contend only when they land on the same stripe.
/// Capacity is split evenly across shards; eviction is per-shard LRU,
/// which bounds total occupancy by the same global cap while keeping every
/// operation free of cross-shard coordination.
struct MemoTable {
    /// Per-shard capacity (`ceil(cap / MEMO_SHARDS)`; 0 disables writes).
    shard_cap: usize,
    shards: Vec<Mutex<MemoShard>>,
}

impl MemoTable {
    fn new(cap: usize) -> MemoTable {
        MemoTable {
            shard_cap: cap.div_ceil(MEMO_SHARDS),
            shards: (0..MEMO_SHARDS).map(|_| Mutex::default()).collect(),
        }
    }

    fn shard(&self, fp: u64) -> &Mutex<MemoShard> {
        &self.shards[(fp % MEMO_SHARDS as u64) as usize]
    }

    fn get(&self, job: &ExecJob, fp: u64, backend: BackendKind) -> Option<ExecOutput> {
        // A 0-capacity table holds nothing (`put` refuses writes); skip the
        // shard lock and recency churn entirely to match.
        if self.shard_cap == 0 {
            return None;
        }
        let mut shard = self.shard(fp).lock().unwrap();
        let bucket = shard.entries.get(&fp)?;
        let pos = bucket.iter().position(|(_, e)| e.matches(job, backend))?;
        let old_tick = bucket[pos].0;
        let tick = shard.touch(fp, old_tick);
        let bucket = shard.entries.get_mut(&fp).expect("bucket exists");
        bucket[pos].0 = tick;
        Some(bucket[pos].1.output.clone())
    }

    fn put(&self, fp: u64, job: &ExecJob, output: &ExecOutput, backend: BackendKind) {
        if self.shard_cap == 0 {
            return;
        }
        let mut shard = self.shard(fp).lock().unwrap();
        let bucket = shard.entries.entry(fp).or_default();
        let entry = MemoEntry {
            program: Arc::clone(&job.program),
            schedule: job.schedule.clone(),
            step_budget: job.enforce.step_budget,
            backend,
            output: output.clone(),
        };
        if let Some(pos) = bucket.iter().position(|(_, e)| e.matches(job, backend)) {
            let old_tick = bucket[pos].0;
            bucket[pos].1 = entry;
            let tick = shard.touch(fp, old_tick);
            shard.entries.get_mut(&fp).expect("bucket exists")[pos].0 = tick;
            return;
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard
            .entries
            .get_mut(&fp)
            .expect("bucket exists")
            .push((tick, entry));
        shard.recency.insert(tick, fp);
        shard.len += 1;
        while shard.len > self.shard_cap && !shard.recency.is_empty() {
            shard.evict_lru();
        }
    }
}

/// The shared execution substrate: the result memo table plus the snapshot
/// forest, bundled as one explicitly injected handle.
///
/// Before `campaignd`, both structures were process-wide `OnceLock`
/// globals — correct for a one-campaign process (content-keyed entries
/// make cross-campaign sharing safe), but an *implicit* dependency: a test
/// or a service wanting two campaigns that cannot observe each other's
/// in-progress state had no way to ask for it. The substrate makes the
/// sharing decision explicit:
///
/// * [`Substrate::process_global`] — every clone shares the one
///   process-wide table and forest (the default, and what every
///   pre-existing caller gets);
/// * [`Substrate::private`] — a fresh, isolated table and forest, shared
///   only by executors handed this exact clone (A/B benchmark sides, the
///   cross-campaign isolation tests).
///
/// Clones share: the substrate is a pair of `Arc`s, so handing one
/// `Substrate` to many executors is what "promoted from per-run to
/// cross-campaign" means.
#[derive(Clone)]
pub struct Substrate {
    memo: Arc<MemoTable>,
    forest: Arc<SnapshotForest>,
}

impl std::fmt::Debug for Substrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Substrate")
            .field("process_global", &self.is_process_global())
            .finish()
    }
}

impl Default for Substrate {
    fn default() -> Self {
        Substrate::process_global()
    }
}

impl Substrate {
    /// The process-wide substrate. Shared across executors because the
    /// manager's slice fan-out constructs an independent single-worker
    /// executor per slice: "any worker" must span executors, not just
    /// slots of one pool.
    /// The memo capacity must cover a whole diagnosis working set or LRU
    /// replay thrashes: a re-run replays schedules oldest-first, which is
    /// exactly the eviction order, so a table even slightly smaller than
    /// one pass yields zero cross-run hits. A full-calibration Table 2
    /// pass is ~5.1k distinct schedules; 8192 holds it with headroom.
    #[must_use]
    pub fn process_global() -> Substrate {
        static GLOBAL: OnceLock<Substrate> = OnceLock::new();
        GLOBAL.get_or_init(|| Substrate::private(8192, 256)).clone()
    }

    /// A fresh substrate sharing nothing with any other: `memo_cap` result
    /// entries (LRU, split over the table's shards) and `forest_roots`
    /// snapshot-forest roots. Executors handed clones of this value share
    /// state with each other and nobody else.
    #[must_use]
    pub fn private(memo_cap: usize, forest_roots: usize) -> Substrate {
        Substrate {
            memo: Arc::new(MemoTable::new(memo_cap)),
            forest: Arc::new(SnapshotForest::new(forest_roots)),
        }
    }

    /// Whether this handle is (a clone of) the process-global substrate.
    #[must_use]
    pub fn is_process_global(&self) -> bool {
        Arc::ptr_eq(&self.memo, &Substrate::process_global().memo)
    }

    /// Whether two handles share the same underlying state.
    #[must_use]
    pub fn shares_with(&self, other: &Substrate) -> bool {
        Arc::ptr_eq(&self.memo, &other.memo)
    }
}

/// Seeds `substrate`'s memo table with a replayed journal record, keyed
/// against the resuming campaign's `Arc<Program>`. Safe against fingerprint
/// collisions and stale records alike: the memo lookup compares the full
/// schedule, program identity, and step budget, so a mismatched preload
/// degrades to a miss, never a wrong answer.
pub(crate) fn memo_preload(
    substrate: &Substrate,
    job: &ExecJob,
    output: &ExecOutput,
    backend: BackendKind,
) {
    let fp = schedule_fingerprint(&job.schedule, &job.enforce);
    substrate.memo.put(fp, job, output, backend);
}

/// A worker's persistent state: the engine it keeps booted and the
/// snapshot-prefix cache for the program that engine is running. Both are
/// discarded when a batch hands the worker a different program.
struct WorkerVm {
    prog: usize,
    engine: Box<dyn ExecBackend>,
    cache: SnapshotCache,
}

/// The shared VM pool.
///
/// Worker state persists *across* batches (engines stay booted, caches stay
/// warm) but worker threads do not: each batch spawns scoped threads that
/// lock their slot for the batch's duration, so the executor holds no
/// running threads while idle and is trivially safe to drop.
pub struct Executor {
    config: ExecutorConfig,
    slots: Vec<Mutex<Option<WorkerVm>>>,
    health: Vec<SlotHealth>,
    /// Slots not yet quarantined. The breaker never lets this reach 0.
    active: AtomicUsize,
    stats: StatCells,
}

impl Executor {
    /// A pool with `vms` workers and default cache sizing.
    #[must_use]
    pub fn new(vms: usize) -> Executor {
        Executor::with_config(ExecutorConfig {
            vms,
            ..ExecutorConfig::default()
        })
    }

    /// A pool with explicit sizing. A zero-width pool is degenerate (there
    /// would be no slot to run the serial path on), so `vms` is clamped to
    /// at least 1; callers that want to reject `0` outright (the `report`
    /// CLI) must validate before construction.
    #[must_use]
    pub fn with_config(config: ExecutorConfig) -> Executor {
        let vms = config.vms.max(1);
        Executor {
            config,
            slots: (0..vms).map(|_| Mutex::new(None)).collect(),
            health: (0..vms).map(|_| SlotHealth::default()).collect(),
            active: AtomicUsize::new(vms),
            stats: StatCells::default(),
        }
    }

    /// Worker count (including quarantined slots).
    #[must_use]
    pub fn vms(&self) -> usize {
        self.slots.len()
    }

    /// A snapshot of the pool's robustness counters.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            deadline_fired: self.deadline_fired(),
            ..self.stats.snapshot()
        }
    }

    /// Whether this executor's configured deadline budget has fired.
    /// Always `false` without one.
    #[must_use]
    pub fn deadline_fired(&self) -> bool {
        self.config.deadline.as_ref().is_some_and(|d| d.fired())
    }

    /// Evaluates the deadline budget at a claim boundary, firing it if
    /// either budget ran out. `false` without a configured deadline.
    fn deadline_expired(&self) -> bool {
        self.config.deadline.as_ref().is_some_and(|d| d.check())
    }

    /// Indices of slots the breaker has not quarantined. Non-empty by
    /// invariant (the last active slot is never quarantined).
    fn active_slots(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| !self.health[i].quarantined.load(Ordering::SeqCst))
            .collect()
    }

    /// The OS-thread budget actually used for a batch (see
    /// [`ExecutorConfig::os_threads`]).
    fn os_threads(&self) -> usize {
        self.config
            .os_threads
            .unwrap_or_else(hardware_threads)
            .max(1)
    }

    /// Runs every job; `results[i]` is job `i`'s outcome, in submission
    /// order. Entries are `None` only past a cancellation boundary.
    #[must_use]
    pub fn run_batch(&self, jobs: &[ExecJob], cancel: &CancelToken) -> Vec<Option<ExecOutput>> {
        self.run_until(jobs, cancel, |_| false)
    }

    /// Runs `jobs` in the caller's priority order while reporting results
    /// in canonical order: job `submit[k]` is the `k`-th submitted, and the
    /// returned `results[i]` is job `i`'s outcome. `submit` must hold
    /// distinct indices into `jobs`; jobs it omits never execute and stay
    /// `None`. Cancellation (deadline expiry) truncates the *submission*
    /// sequence — with a gain-sorted `submit`, the unexecuted tail lands on
    /// the lowest-priority jobs, not on whichever happened to be last in
    /// canonical order.
    #[must_use]
    pub fn run_batch_permuted(
        &self,
        jobs: &[ExecJob],
        submit: &[usize],
        cancel: &CancelToken,
    ) -> Vec<Option<ExecOutput>> {
        debug_assert!({
            let mut seen = vec![false; jobs.len()];
            submit
                .iter()
                .all(|&i| !std::mem::replace(&mut seen[i], true))
        });
        let permuted: Vec<ExecJob> = submit.iter().map(|&i| jobs[i].clone()).collect();
        let permuted_results = self.run_batch(&permuted, cancel);
        let mut results: Vec<Option<ExecOutput>> = (0..jobs.len()).map(|_| None).collect();
        for (&i, res) in submit.iter().zip(permuted_results) {
            results[i] = res;
        }
        results
    }

    /// Runs jobs until `stop` accepts one, in *canonical* terms: the
    /// returned vector holds `Some` for a contiguous prefix of submission
    /// indices ending at the first accepted job (all of them executed), and
    /// `None` beyond it. Workers may speculatively execute later jobs;
    /// those results are discarded, so the outcome is identical to a serial
    /// front-to-back scan at any worker count.
    #[must_use]
    pub fn run_until<F>(
        &self,
        jobs: &[ExecJob],
        cancel: &CancelToken,
        stop: F,
    ) -> Vec<Option<ExecOutput>>
    where
        F: Fn(&ExecOutput) -> bool + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let active = self.active_slots();
        let workers = active.len().min(n).min(self.os_threads());
        if workers <= 1 {
            let si = active[0];
            let mut slot = self.slots[si].lock().unwrap();
            let mut out: Vec<Option<ExecOutput>> = Vec::with_capacity(n);
            for job in jobs {
                if cancel.is_cancelled() || self.deadline_expired() {
                    break;
                }
                let res = self.run_job_ft(si, &mut slot, job);
                let hit = stop(&res);
                out.push(Some(res));
                if hit {
                    break;
                }
            }
            out.resize_with(n, || None);
            drop(slot);
            self.apply_quarantine();
            self.charge_batch_makespan(&out);
            return out;
        }

        let queue = ClaimQueue::new(self.config.claim, n, workers);
        let stop_at = AtomicUsize::new(usize::MAX);
        let results: Vec<Mutex<Option<ExecOutput>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for (w, &si) in active[..workers].iter().enumerate() {
                let (results, queue, stop_at, stop) = (&results, &queue, &stop_at, &stop);
                let slot = &self.slots[si];
                scope.spawn(move || {
                    let mut slot = slot.lock().unwrap();
                    loop {
                        if cancel.is_cancelled() || self.deadline_expired() {
                            return;
                        }
                        // `stop_at` only decreases, so a stale read can only
                        // make us execute speculatively, never skip an index
                        // at or below the final bound.
                        let bound = stop_at.load(Ordering::SeqCst);
                        let Some(i) = queue.claim(w, n, bound) else {
                            return;
                        };
                        let res = self.run_job_ft(si, &mut slot, &jobs[i]);
                        if stop(&res) {
                            stop_at.fetch_min(i, Ordering::SeqCst);
                        }
                        *results[i].lock().unwrap() = Some(res);
                    }
                });
            }
        });
        self.apply_quarantine();
        let cut = stop_at.load(Ordering::SeqCst);
        let mut out: Vec<Option<ExecOutput>> = results
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        for (i, r) in out.iter_mut().enumerate() {
            if i > cut {
                *r = None;
            }
        }
        normalize_prefix(&mut out);
        self.charge_batch_makespan(&out);
        out
    }

    /// Charges one batch's deterministic simulated makespan (see
    /// [`ExecStats::sim_makespan_ns`]): each canonical job's serial cost is
    /// placed on the least-loaded of the pool's slots (ties to the lowest
    /// index), and the batch contributes the maximum slot load. Computed
    /// from the canonical fold only — speculative executions beyond a stop
    /// bound are never charged — so the value is identical at any OS-thread
    /// count and claim mode for a given pool width.
    fn charge_batch_makespan(&self, out: &[Option<ExecOutput>]) {
        let model = CostModel::default();
        let mut loads = vec![0f64; self.slots.len()];
        let mut any = false;
        for res in out.iter().flatten() {
            any = true;
            let mut s = f64::from(res.retries) * model.retry_backoff_s;
            if !res.memo_hit && res.vm_faulted.is_none() {
                s += model.serial_run_s(res.run.steps, res.run.failure.is_some());
            }
            let slot = loads
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map_or(0, |(i, _)| i);
            loads[slot] += s;
        }
        if !any {
            return;
        }
        let makespan = loads.iter().copied().fold(0f64, f64::max);
        self.stats.batches.fetch_add(1, Ordering::SeqCst);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        self.stats
            .sim_makespan_ns
            .fetch_add((makespan * 1e9) as u64, Ordering::SeqCst);
    }

    /// Executes one job with the fault-tolerance wrapper: injected faults
    /// are retried **inside the owning worker, before the result is
    /// published** — so job `i`'s slot in the canonical fold never observes
    /// an intermediate attempt, and fold order / worker-count invariance
    /// are exactly as without fault injection. A job whose every attempt
    /// faults publishes a placeholder output with `vm_faulted` set.
    ///
    /// The memo lookup sits strictly *after* the fault decision: an
    /// attempt that faults burns its retry (and the slot's quarantine
    /// accounting) exactly as if the memo did not exist, so memoization
    /// can never mask a fault. Only a fault-free attempt may be served
    /// from the table, with `retries` set to the locally observed count —
    /// equal to the cached one by content-keyed determinism, but correct
    /// by construction.
    fn run_job_ft(&self, si: usize, slot: &mut Option<WorkerVm>, job: &ExecJob) -> ExecOutput {
        let cache_cap = self.config.snapshot_cache;
        let mut retries = 0u32;
        let mut job_faulted = false;
        loop {
            let injected = self.config.fault.and_then(|f| f.decide(job, retries));
            let Some((kind, k)) = injected else {
                let memo = self
                    .config
                    .memo
                    .then(|| self.config.substrate.memo.as_ref());
                let fp = schedule_fingerprint(&job.schedule, &job.enforce);
                if let Some(memo) = memo {
                    if let Some(mut out) = memo.get(job, fp, self.config.backend) {
                        self.stats.memo_hits.fetch_add(1, Ordering::SeqCst);
                        out.retries = retries;
                        out.memo_hit = true;
                        out.forest_hits = 0;
                        // A hit is journaled too (deduplicated inside): the
                        // table may have been seeded by an executor without
                        // a journal, and a resume must not re-pay for it.
                        if let Some(journal) = &self.config.journal {
                            journal.append(job, &out);
                        }
                        self.note_slot_result(si, job_faulted);
                        return out;
                    }
                    self.stats.memo_misses.fetch_add(1, Ordering::SeqCst);
                }
                let forest = self
                    .config
                    .memo
                    .then(|| self.config.substrate.forest.as_ref());
                let out = run_job(
                    slot,
                    job,
                    cache_cap,
                    forest,
                    &self.stats,
                    retries,
                    self.config.deep_snapshots,
                    self.config.backend,
                );
                if let Some(deadline) = &self.config.deadline {
                    deadline.charge_run(out.run.steps, out.run.failure.is_some());
                }
                if let Some(memo) = memo {
                    if out.outcome.is_inconclusive() {
                        self.stats.memo_excluded.fetch_add(1, Ordering::SeqCst);
                    } else {
                        memo.put(fp, job, &out, self.config.backend);
                    }
                }
                // Conclusive outputs are made durable; inconclusive ones are
                // excluded exactly like `memo_excluded` — a timeout or crash
                // proves nothing and must not shadow a future conclusive
                // execution on resume.
                if !out.outcome.is_inconclusive() {
                    if let Some(journal) = &self.config.journal {
                        journal.append(job, &out);
                    }
                }
                self.note_slot_result(si, job_faulted);
                return out;
            };
            job_faulted = true;
            match kind {
                FaultKind::Crash => &self.stats.crash_faults,
                FaultKind::Hang => &self.stats.hang_faults,
            }
            .fetch_add(1, Ordering::SeqCst);
            // The VM died under the attempt: the worker's engine and its
            // snapshot-prefix cache are lost with it.
            *slot = None;
            self.stats.vm_restarts.fetch_add(1, Ordering::SeqCst);
            let budget = self.config.fault.map_or(0, |f| f.max_retries);
            if retries >= budget {
                self.stats.gave_up.fetch_add(1, Ordering::SeqCst);
                self.note_slot_result(si, true);
                eprintln!(
                    "aitia-exec: giving up on job after {retries} retries \
                     ({kind:?} at schedule point {k})",
                );
                return faulted_output(job, kind, retries);
            }
            retries += 1;
            self.stats.retries.fetch_add(1, Ordering::SeqCst);
            if let Some(deadline) = &self.config.deadline {
                deadline.charge_retry();
            }
        }
    }

    /// Updates the slot's consecutive-fault counter after a job.
    fn note_slot_result(&self, si: usize, job_faulted: bool) {
        let h = &self.health[si];
        if job_faulted {
            h.consecutive_faults.fetch_add(1, Ordering::SeqCst);
        } else {
            h.consecutive_faults.store(0, Ordering::SeqCst);
        }
    }

    /// Trips the circuit-breaker for slots over the consecutive-fault
    /// threshold. Runs at batch boundaries so a mid-batch trip can never
    /// leave a batch without workers (the canonical-prefix contract —
    /// entries are `None` only past a cancellation — is unaffected). The
    /// last active slot is never quarantined.
    fn apply_quarantine(&self) {
        let Some(threshold) = self
            .config
            .fault
            .map(|f| f.quarantine_after)
            .filter(|&q| q > 0)
        else {
            return;
        };
        for (si, h) in self.health.iter().enumerate() {
            if h.quarantined.load(Ordering::SeqCst)
                || h.consecutive_faults.load(Ordering::SeqCst) < threshold
            {
                continue;
            }
            // Shrink the pool only while another active slot remains.
            let shrunk = self
                .active
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |a| {
                    (a > 1).then(|| a - 1)
                });
            if let Ok(before) = shrunk {
                h.quarantined.store(true, Ordering::SeqCst);
                self.stats.quarantined_slots.fetch_add(1, Ordering::SeqCst);
                eprintln!(
                    "aitia-exec: quarantined worker slot {si} after {} consecutive \
                     faulted jobs; effective pool {} -> {}",
                    h.consecutive_faults.load(Ordering::SeqCst),
                    before,
                    before - 1,
                );
            }
        }
    }

    /// Fans `count` opaque tasks out over the pool's worker budget with the
    /// same canonical-prefix semantics as [`Executor::run_until`], *without*
    /// touching the pool's per-worker engines — so a task may itself run a
    /// (single-worker) executor without deadlocking. The manager uses this
    /// for slice fan-out.
    ///
    /// Each task receives a child of `cancel`; when an earlier task stops
    /// the scan, the tokens of all later in-flight tasks are cancelled so
    /// they abort at their next schedule boundary.
    #[must_use]
    pub fn run_tasks_until<T, F, S>(
        &self,
        count: usize,
        cancel: &CancelToken,
        task: F,
        stop: S,
    ) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(usize, CancelToken) -> T + Sync,
        S: Fn(&T) -> bool + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let tokens: Vec<CancelToken> = (0..count).map(|_| cancel.child()).collect();
        let workers = self.active_slots().len().min(count).min(self.os_threads());
        if workers <= 1 {
            let mut out: Vec<Option<T>> = Vec::with_capacity(count);
            for (i, token) in tokens.iter().enumerate() {
                if cancel.is_cancelled() || self.deadline_expired() {
                    break;
                }
                let res = task(i, token.clone());
                let hit = stop(&res);
                out.push(Some(res));
                if hit {
                    break;
                }
            }
            out.resize_with(count, || None);
            return out;
        }

        // Tasks are coarse (each is a whole per-slice search), so the
        // shared counter's claim contention is immaterial here — the
        // work-stealing deques are reserved for the per-schedule hot path
        // in [`Executor::run_until`].
        let next = AtomicUsize::new(0);
        let stop_at = AtomicUsize::new(usize::MAX);
        let results: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let (results, next, stop_at, task, stop, tokens) =
                    (&results, &next, &stop_at, &task, &stop, &tokens);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= count
                        || i > stop_at.load(Ordering::SeqCst)
                        || cancel.is_cancelled()
                        || self.deadline_expired()
                    {
                        return;
                    }
                    let res = task(i, tokens[i].clone());
                    if stop(&res) {
                        let bound = stop_at.fetch_min(i, Ordering::SeqCst).min(i);
                        // Only indices strictly above the (monotonically
                        // shrinking) bound are ever cancelled, so every task
                        // at or below the final bound ran uncancelled.
                        for t in &tokens[bound + 1..] {
                            t.cancel();
                        }
                    }
                    *results[i].lock().unwrap() = Some(res);
                });
            }
        });
        let cut = stop_at.load(Ordering::SeqCst);
        let mut out: Vec<Option<T>> = results
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        for (i, r) in out.iter_mut().enumerate() {
            if i > cut {
                *r = None;
            }
        }
        normalize_prefix(&mut out);
        out
    }
}

/// A batch's index source, per [`ClaimMode`].
///
/// Both variants uphold the canonical-prefix invariant the fold relies on:
/// every index at or below the final stop bound is claimed and executed by
/// some worker before any worker sees "drained" (absent cancellation).
enum ClaimQueue {
    /// One shared monotone counter.
    Counter(AtomicUsize),
    /// One deque per worker, pre-filled with strided indices: worker `w`
    /// of `k` owns `w, w+k, w+2k, …` in ascending order. Owners pop from
    /// the front; thieves pop from the back (the indices least likely to
    /// matter under an early stop).
    Steal(Vec<Mutex<VecDeque<usize>>>),
}

impl ClaimQueue {
    fn new(mode: ClaimMode, n: usize, workers: usize) -> ClaimQueue {
        match mode {
            ClaimMode::Counter => ClaimQueue::Counter(AtomicUsize::new(0)),
            ClaimMode::Steal => ClaimQueue::Steal(
                (0..workers)
                    .map(|w| Mutex::new((w..n).step_by(workers.max(1)).collect()))
                    .collect(),
            ),
        }
    }

    /// Claims the next index for worker `w`, never returning one above
    /// `bound`. `None` means this worker is done: past the end/bound for
    /// the counter, all deques drained for stealing (emptiness is monotone
    /// — nothing is ever pushed back — so an all-empty scan is final).
    fn claim(&self, w: usize, n: usize, bound: usize) -> Option<usize> {
        match self {
            ClaimQueue::Counter(next) => {
                let i = next.fetch_add(1, Ordering::SeqCst);
                (i < n && i <= bound).then_some(i)
            }
            ClaimQueue::Steal(deques) => {
                let k = deques.len();
                loop {
                    let own = deques[w].lock().unwrap().pop_front();
                    let claimed = own.or_else(|| {
                        (1..k).find_map(|d| deques[(w + d) % k].lock().unwrap().pop_back())
                    });
                    match claimed {
                        // Indices above the bound are dead speculation:
                        // discard and keep draining. The bound only ever
                        // decreases, so a discard is never premature.
                        Some(i) if i > bound => continue,
                        Some(i) => return Some(i),
                        None => return None,
                    }
                }
            }
        }
    }
}

/// OS threads available to the process (cgroup-quota aware). By default the
/// pool never spawns more threads than this: `vms` is the *semantic* pool
/// width (it sizes the slots and the simulated cost model), while the OS
/// thread count is an implementation detail that cannot change any result —
/// oversubscribing a small host would only add context-switch overhead for
/// bit-identical output.
fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Executes one job on a worker's persistent VM, rebooting (and dropping
/// the snapshot cache) when the job's program differs from the VM's.
#[allow(clippy::too_many_arguments)]
fn run_job(
    slot: &mut Option<WorkerVm>,
    job: &ExecJob,
    cache_cap: usize,
    forest: Option<&SnapshotForest>,
    stats: &StatCells,
    retries: u32,
    deep_snapshots: bool,
    backend: BackendKind,
) -> ExecOutput {
    let key = Arc::as_ptr(&job.program) as usize;
    let vm = match slot {
        Some(vm) if vm.prog == key && vm.engine.kind() == backend => vm,
        _ => {
            let mut engine = backend.boot(Arc::clone(&job.program));
            engine.set_deep_snapshots(deep_snapshots);
            slot.insert(WorkerVm {
                prog: key,
                engine,
                cache: SnapshotCache::new(cache_cap),
            })
        }
    };
    let (hits0, misses0, forest0) = (vm.cache.hits(), vm.cache.misses(), vm.cache.forest_hits());
    let started = Instant::now();
    let run = run_cached_shared(
        vm.engine.as_mut(),
        &job.schedule,
        &job.enforce,
        &mut vm.cache,
        forest,
    );
    let busy = started.elapsed();
    stats.runs.fetch_add(1, Ordering::SeqCst);
    stats.steps_executed.fetch_add(
        u64::try_from(run.steps).unwrap_or(u64::MAX),
        Ordering::SeqCst,
    );
    stats.busy_ns.fetch_add(
        u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX),
        Ordering::SeqCst,
    );
    stats
        .snapshot_hits
        .fetch_add(vm.cache.hits() - hits0, Ordering::SeqCst);
    stats
        .snapshot_misses
        .fetch_add(vm.cache.misses() - misses0, Ordering::SeqCst);
    let forest_hits = vm.cache.forest_hits() - forest0;
    stats.forest_hits.fetch_add(forest_hits, Ordering::SeqCst);
    let sel_of = vm
        .engine
        .threads()
        .iter()
        .map(|t| {
            (
                t.id,
                ThreadSel {
                    prog: t.prog,
                    occurrence: t.occurrence,
                },
            )
        })
        .collect();
    let outcome = run.outcome();
    ExecOutput {
        run,
        sel_of,
        outcome,
        retries,
        vm_faulted: None,
        memo_hit: false,
        forest_hits: u32::try_from(forest_hits).unwrap_or(u32::MAX),
    }
}

/// The placeholder output published when a job faults on every attempt.
/// Its `run` is empty (no trace, no failure, nothing triggered) so no
/// consumer can mistake it for an observation; `outcome` carries the
/// fault's flavour.
fn faulted_output(job: &ExecJob, kind: FaultKind, retries: u32) -> ExecOutput {
    let run = RunResult {
        trace: ksim::Trace::new(),
        failure: None,
        triggered: vec![false; job.schedule.points.len()],
        forced: Vec::new(),
        steps: 0,
        budget_exhausted: kind == FaultKind::Hang,
        threads: Vec::new(),
    };
    ExecOutput {
        run,
        sel_of: HashMap::new(),
        outcome: match kind {
            FaultKind::Crash => RunOutcome::Crashed,
            FaultKind::Hang => RunOutcome::Timeout,
        },
        retries,
        vm_faulted: Some(kind),
        memo_hit: false,
        forest_hits: 0,
    }
}

/// Truncates at the first hole so callers always fold a contiguous prefix
/// (cancellation can otherwise leave an executed job after a skipped one).
fn normalize_prefix<T>(out: &mut [Option<T>]) {
    if let Some(first_none) = out.iter().position(Option::is_none) {
        for r in out.iter_mut().skip(first_none) {
            *r = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{
        Anchor,
        SchedPoint, //
    };
    use ksim::{
        builder::ProgramBuilder,
        FailureKind,
        InstrAddr,
        ThreadProgId, //
    };

    fn fig1_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    fn sel(p: u16) -> ThreadSel {
        ThreadSel::first(ThreadProgId(p))
    }

    /// A pool that really spawns `vms` OS threads, even on a host with
    /// fewer cores — the concurrent path must stay tested everywhere.
    fn threaded_pool(vms: usize) -> Executor {
        Executor::with_config(ExecutorConfig {
            vms,
            os_threads: Some(vms),
            ..ExecutorConfig::default()
        })
    }

    /// The failing fig1 interleaving plus the two benign serial orders.
    fn fig1_jobs(program: &Arc<Program>) -> Vec<ExecJob> {
        let failing = Schedule {
            start: Some(sel(0)),
            points: vec![SchedPoint {
                thread: sel(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: 1,
                },
                nth: 0,
                when: Anchor::Before,
                switch_to: sel(1),
            }],
            fallback: vec![sel(1), sel(0)],
            segments: Vec::new(),
        };
        [
            Schedule::serial(vec![sel(0), sel(1)]),
            Schedule::serial(vec![sel(1), sel(0)]),
            failing,
            Schedule::serial(vec![sel(0), sel(1)]),
        ]
        .into_iter()
        .map(|schedule| ExecJob {
            program: Arc::clone(program),
            schedule,
            enforce: EnforceConfig::default(),
        })
        .collect()
    }

    fn digest(out: &[Option<ExecOutput>]) -> Vec<Option<(Option<FailureKind>, usize)>> {
        out.iter()
            .map(|o| {
                o.as_ref()
                    .map(|o| (o.run.failure.as_ref().map(|f| f.kind), o.run.steps))
            })
            .collect()
    }

    type FullDigest = Vec<Option<(Vec<ksim::StepRecord>, Option<FailureKind>, usize)>>;

    /// Full observable content of a batch result, trace included.
    fn full_digest(out: &[Option<ExecOutput>]) -> FullDigest {
        out.iter()
            .map(|o| {
                o.as_ref().map(|o| {
                    (
                        o.run.trace.to_vec(),
                        o.run.failure.as_ref().map(|f| f.kind),
                        o.run.steps,
                    )
                })
            })
            .collect()
    }

    #[test]
    fn claim_and_snapshot_modes_are_bit_identical() {
        // The differential pin for the throughput refactor: the seed
        // semantics (deep-clone snapshots, shared-counter claiming, one
        // worker) must match every combination of COW snapshots,
        // work-stealing deques, and worker count, trace for trace.
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let reference = Executor::with_config(ExecutorConfig {
            vms: 1,
            memo: false,
            claim: ClaimMode::Counter,
            deep_snapshots: true,
            ..ExecutorConfig::default()
        })
        .run_batch(&jobs, &CancelToken::new());
        assert!(reference.iter().all(Option::is_some));
        for vms in [1, 2, 8] {
            for claim in [ClaimMode::Counter, ClaimMode::Steal] {
                for deep in [false, true] {
                    let got = Executor::with_config(ExecutorConfig {
                        vms,
                        os_threads: Some(vms),
                        memo: false,
                        claim,
                        deep_snapshots: deep,
                        ..ExecutorConfig::default()
                    })
                    .run_batch(&jobs, &CancelToken::new());
                    assert_eq!(
                        full_digest(&reference),
                        full_digest(&got),
                        "vms={vms} claim={claim:?} deep={deep}"
                    );
                }
            }
        }
    }

    #[test]
    fn claim_modes_agree_under_fault_injection_and_memo() {
        // Fault decisions are content-keyed and the memo serves full
        // records, so neither may perturb the counter-vs-steal identity.
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let fault = Some(recovering_fault(&jobs));
        for memo in [false, true] {
            let mut digests = Vec::new();
            for claim in [ClaimMode::Counter, ClaimMode::Steal] {
                for vms in [1, 2, 8] {
                    let out = Executor::with_config(ExecutorConfig {
                        vms,
                        os_threads: Some(vms),
                        memo,
                        fault,
                        claim,
                        ..ExecutorConfig::default()
                    })
                    .run_batch(&jobs, &CancelToken::new());
                    digests.push((claim, vms, full_digest(&out)));
                }
            }
            for (claim, vms, d) in &digests[1..] {
                assert_eq!(&digests[0].2, d, "memo={memo} claim={claim:?} vms={vms}");
            }
        }
    }

    #[test]
    fn run_until_early_stop_is_claim_mode_invariant() {
        // The canonical stop bound must cut the same prefix whether the
        // accepted index was claimed from the counter or stolen.
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let stop = |o: &ExecOutput| o.run.failure.is_some();
        for claim in [ClaimMode::Counter, ClaimMode::Steal] {
            for vms in [1, 2, 8] {
                let out = Executor::with_config(ExecutorConfig {
                    vms,
                    os_threads: Some(vms),
                    memo: false,
                    claim,
                    ..ExecutorConfig::default()
                })
                .run_until(&jobs, &CancelToken::new(), stop);
                assert!(out[2].as_ref().is_some_and(|o| o.run.failure.is_some()));
                assert!(out[3].is_none(), "claim={claim:?} vms={vms}");
            }
        }
    }

    #[test]
    fn throughput_counters_accumulate() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let exec = Executor::with_config(ExecutorConfig {
            vms: 1,
            memo: false,
            ..ExecutorConfig::default()
        });
        let out = exec.run_batch(&jobs, &CancelToken::new());
        let total_steps: usize = out.iter().flatten().map(|o| o.run.steps).sum();
        let stats = exec.stats();
        assert_eq!(stats.steps_executed, total_steps as u64);
        assert!(stats.busy_ns > 0);
        assert!(stats.schedules_per_sec() > 0.0);
        assert!(stats.instrs_per_sec() > 0.0);
    }

    #[test]
    fn batch_results_are_identical_across_worker_counts() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let baseline = Executor::new(1).run_batch(&jobs, &CancelToken::new());
        for vms in [2, 4, 8] {
            let got = threaded_pool(vms).run_batch(&jobs, &CancelToken::new());
            assert_eq!(digest(&baseline), digest(&got), "vms={vms}");
        }
        assert!(baseline.iter().all(Option::is_some));
    }

    #[test]
    fn run_until_stops_at_first_match_in_submission_order() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        for vms in [1, 2, 8] {
            let out = threaded_pool(vms)
                .run_until(&jobs, &CancelToken::new(), |o| o.run.failure.is_some());
            // Jobs 0–2 executed (2 is the first failing one), job 3 cut off.
            assert!(out[0].as_ref().is_some_and(|o| o.run.failure.is_none()));
            assert!(out[1].as_ref().is_some_and(|o| o.run.failure.is_none()));
            assert!(out[2].as_ref().is_some_and(|o| o.run.failure.is_some()));
            assert!(out[3].is_none(), "vms={vms}");
        }
    }

    #[test]
    fn cancelled_token_stops_at_schedule_boundary() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = threaded_pool(4).run_batch(&jobs, &cancel);
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn child_tokens_observe_parent_cancellation() {
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();
        assert!(!grandchild.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
        // Sibling cancellation does not propagate upward.
        let other = parent.child();
        other.cancel();
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn task_fanout_cancels_tasks_past_the_stop_index() {
        let exec = threaded_pool(4);
        let out = exec.run_tasks_until(
            6,
            &CancelToken::new(),
            |i, token| {
                if i > 2 {
                    // Later tasks spin until the index-2 stop cancels them.
                    while !token.is_cancelled() {
                        std::thread::yield_now();
                    }
                }
                i
            },
            |&i| i == 2,
        );
        assert_eq!(out[0], Some(0));
        assert_eq!(out[1], Some(1));
        assert_eq!(out[2], Some(2));
        assert!(out[3..].iter().all(Option::is_none));
    }

    #[test]
    fn workers_reuse_engines_across_batches() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let exec = threaded_pool(2);
        let first = exec.run_batch(&jobs, &CancelToken::new());
        let second = exec.run_batch(&jobs, &CancelToken::new());
        assert_eq!(digest(&first), digest(&second));
    }

    #[test]
    fn zero_width_pool_is_clamped_to_one_slot() {
        let exec = Executor::new(0);
        assert_eq!(exec.vms(), 1);
        let program = fig1_program();
        let out = exec.run_batch(&fig1_jobs(&program), &CancelToken::new());
        assert!(out.iter().all(Option::is_some));
    }

    fn faulty_pool(vms: usize, fault: FaultInjection) -> Executor {
        Executor::with_config(ExecutorConfig {
            vms,
            os_threads: Some(vms),
            fault: Some(fault),
            ..ExecutorConfig::default()
        })
    }

    /// A seed where at least one fig1 job faults on its first attempt but
    /// recovers within the retry budget (fault decisions are pure over the
    /// job content, so the search itself is deterministic).
    fn recovering_fault(jobs: &[ExecJob]) -> FaultInjection {
        for seed in 0..10_000u64 {
            let f = FaultInjection {
                seed,
                rate_permille: 400,
                max_retries: 3,
                quarantine_after: 0,
            };
            let recovers = |job: &ExecJob| {
                f.decide(job, 0).is_some()
                    && (1..=f.max_retries).any(|a| f.decide(job, a).is_none())
            };
            if jobs.iter().any(recovers)
                && jobs
                    .iter()
                    .all(|j| (0..4).any(|a| f.decide(j, a).is_none()))
            {
                return f;
            }
        }
        panic!("no recovering seed found");
    }

    #[test]
    fn injected_fault_is_retried_deterministically() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let fault = recovering_fault(&jobs);
        let baseline = Executor::new(1).run_batch(&jobs, &CancelToken::new());
        let exec = faulty_pool(1, fault);
        let got = exec.run_batch(&jobs, &CancelToken::new());
        // Retries happen in-worker before publishing: results match the
        // fault-free baseline bit for bit.
        assert_eq!(digest(&baseline), digest(&got));
        let retried: u32 = got.iter().flatten().map(|o| o.retries).sum();
        assert!(retried > 0, "the chosen seed faults at least one job");
        assert!(got.iter().flatten().all(|o| o.vm_faulted.is_none()));
        let stats = exec.stats();
        assert_eq!(stats.retries, u64::from(retried));
        assert_eq!(stats.vm_restarts, stats.crash_faults + stats.hang_faults);
        assert_eq!(stats.gave_up, 0);
        // Re-running reproduces the identical retry pattern.
        let again = faulty_pool(1, fault).run_batch(&jobs, &CancelToken::new());
        let retries_of = |out: &[Option<ExecOutput>]| -> Vec<u32> {
            out.iter().flatten().map(|o| o.retries).collect()
        };
        assert_eq!(retries_of(&got), retries_of(&again));
    }

    #[test]
    fn fault_injection_preserves_worker_count_invariance() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let fault = recovering_fault(&jobs);
        let baseline = faulty_pool(1, fault).run_batch(&jobs, &CancelToken::new());
        for vms in [2, 4, 8] {
            let got = faulty_pool(vms, fault).run_batch(&jobs, &CancelToken::new());
            assert_eq!(digest(&baseline), digest(&got), "vms={vms}");
            let rb: Vec<u32> = baseline.iter().flatten().map(|o| o.retries).collect();
            let rg: Vec<u32> = got.iter().flatten().map(|o| o.retries).collect();
            assert_eq!(rb, rg, "vms={vms}");
        }
    }

    /// Faults every attempt of every job.
    fn always_fault() -> FaultInjection {
        FaultInjection {
            seed: 7,
            rate_permille: 1000,
            max_retries: 2,
            quarantine_after: 0,
        }
    }

    #[test]
    fn exhausted_retry_budget_publishes_a_placeholder() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let exec = faulty_pool(1, always_fault());
        let out = exec.run_batch(&jobs, &CancelToken::new());
        for o in out.iter().flatten() {
            let kind = o.vm_faulted.expect("every job gives up");
            assert_eq!(o.retries, always_fault().max_retries);
            assert!(o.run.trace.is_empty());
            assert!(o.run.failure.is_none());
            match kind {
                FaultKind::Crash => assert_eq!(o.outcome, RunOutcome::Crashed),
                FaultKind::Hang => {
                    assert_eq!(o.outcome, RunOutcome::Timeout);
                    assert!(o.run.budget_exhausted);
                }
            }
            assert!(o.outcome.is_inconclusive());
        }
        let stats = exec.stats();
        assert_eq!(stats.gave_up, jobs.len() as u64);
        assert_eq!(stats.runs, 0, "faulted attempts execute nothing");
    }

    #[test]
    fn quarantine_trips_after_consecutive_faults_but_spares_last_slot() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let fault = FaultInjection {
            quarantine_after: 1,
            ..always_fault()
        };
        let exec = faulty_pool(2, fault);
        let _ = exec.run_batch(&jobs, &CancelToken::new());
        // Both slots only saw faulted jobs, but the breaker never empties
        // the pool: exactly one slot is quarantined.
        assert_eq!(exec.stats().quarantined_slots, 1);
        assert_eq!(exec.active_slots().len(), 1);
        // Subsequent batches still run (on the surviving slot).
        let out = exec.run_batch(&jobs, &CancelToken::new());
        assert!(out.iter().all(Option::is_some));

        // A single-slot pool never quarantines.
        let solo = faulty_pool(1, fault);
        let _ = solo.run_batch(&jobs, &CancelToken::new());
        assert_eq!(solo.stats().quarantined_slots, 0);
        assert_eq!(solo.active_slots().len(), 1);
    }

    #[test]
    fn fault_free_jobs_reset_the_consecutive_fault_counter() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let fault = recovering_fault(&jobs);
        let exec = faulty_pool(
            1,
            FaultInjection {
                quarantine_after: u32::MAX,
                ..fault
            },
        );
        let _ = exec.run_batch(&jobs, &CancelToken::new());
        // Every job recovered, so the last job on the slot reset the
        // counter to 0 unless it itself faulted first.
        let last_faulted = fault.decide(jobs.last().unwrap(), 0).is_some();
        let count = exec.health[0].consecutive_faults.load(Ordering::SeqCst);
        if last_faulted {
            assert!(count >= 1);
        } else {
            assert_eq!(count, 0);
        }
    }

    #[test]
    fn stats_track_runs_and_snapshot_cache() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let exec = threaded_pool(1);
        let _ = exec.run_batch(&jobs, &CancelToken::new());
        let stats = exec.stats();
        // Jobs 0 and 3 share a schedule: the second occurrence is a memo
        // hit and executes nothing — `runs` counts actual VM executions.
        assert_eq!(stats.runs, jobs.len() as u64 - 1);
        assert_eq!(stats.memo_hits, 1);
        assert_eq!(stats.memo_misses, jobs.len() as u64 - 1);
        assert_eq!(stats.memo_excluded, 0);
        assert_eq!(stats.crash_faults + stats.hang_faults, 0);
        assert!(stats.snapshot_hits + stats.snapshot_misses > 0);
    }

    #[test]
    fn memo_hits_return_bit_identical_outputs_at_zero_runs() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        // Baseline with the memo disabled: every job pays execution.
        let off = Executor::with_config(ExecutorConfig {
            vms: 1,
            memo: false,
            ..ExecutorConfig::default()
        });
        let base = off.run_batch(&jobs, &CancelToken::new());
        assert_eq!(off.stats().runs, jobs.len() as u64);
        assert_eq!(off.stats().memo_hits + off.stats().memo_misses, 0);

        // Memo on: a second batch over the same jobs executes nothing.
        let on = threaded_pool(1);
        let first = on.run_batch(&jobs, &CancelToken::new());
        let runs_after_first = on.stats().runs;
        let second = on.run_batch(&jobs, &CancelToken::new());
        assert_eq!(on.stats().runs, runs_after_first, "all memo hits");
        assert_eq!(on.stats().memo_hits, jobs.len() as u64 + 1);
        for out in [&first, &second] {
            assert_eq!(digest(&base), digest(out));
        }
        for (b, s) in base.iter().flatten().zip(second.iter().flatten()) {
            assert!(s.memo_hit);
            assert_eq!(s.retries, b.retries);
            assert_eq!(s.outcome, b.outcome);
            assert_eq!(s.run.trace.len(), b.run.trace.len());
            assert_eq!(s.run.triggered, b.run.triggered);
            assert_eq!(s.sel_of, b.sel_of);
        }
    }

    #[test]
    fn memo_hits_carry_the_full_step_records_for_pruning_knowledge() {
        // LIFS derives its DPOR pruning state (footprints, conflict index,
        // solo traces) from the step records of every consumed output. A
        // memo hit must therefore carry the *complete* records — accesses,
        // lock events, held locks, spawns — not a summary, or pruning
        // would diverge between memo-on and memo-off searches.
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let off = Executor::with_config(ExecutorConfig {
            vms: 1,
            memo: false,
            ..ExecutorConfig::default()
        });
        let base = off.run_batch(&jobs, &CancelToken::new());
        let on = threaded_pool(1);
        let _ = on.run_batch(&jobs, &CancelToken::new());
        let second = on.run_batch(&jobs, &CancelToken::new());
        for (b, s) in base.iter().flatten().zip(second.iter().flatten()) {
            assert!(s.memo_hit);
            for (br, sr) in b.run.trace.iter().zip(&s.run.trace) {
                assert_eq!(br.at, sr.at);
                assert_eq!(br.tid, sr.tid);
                assert_eq!(br.accesses, sr.accesses);
                assert_eq!(br.lock_event, sr.lock_event);
                assert_eq!(br.locks_held, sr.locks_held);
                assert_eq!(br.spawned, sr.spawned);
            }
            assert_eq!(b.run.trace.len(), s.run.trace.len());
            assert_eq!(b.run.threads, s.run.threads);
        }
    }

    #[test]
    fn memo_misses_across_distinct_programs() {
        // Structurally identical programs in distinct allocations never
        // share memo entries (identity keying).
        let jobs_a = fig1_jobs(&fig1_program());
        let jobs_b = fig1_jobs(&fig1_program());
        let exec = threaded_pool(1);
        let _ = exec.run_batch(&jobs_a, &CancelToken::new());
        let hits_a = exec.stats().memo_hits;
        let _ = exec.run_batch(&jobs_b, &CancelToken::new());
        // Only the intra-batch duplicate (jobs 0/3) hit for program B.
        assert_eq!(exec.stats().memo_hits, hits_a + 1);
    }

    #[test]
    fn inconclusive_outcomes_are_never_memoized() {
        let program = fig1_program();
        // A one-step budget times out every schedule.
        let jobs: Vec<ExecJob> = fig1_jobs(&program)
            .into_iter()
            .map(|j| ExecJob {
                enforce: EnforceConfig { step_budget: 1 },
                ..j
            })
            .collect();
        let exec = threaded_pool(1);
        let _ = exec.run_batch(&jobs, &CancelToken::new());
        let _ = exec.run_batch(&jobs, &CancelToken::new());
        let stats = exec.stats();
        // Both batches executed everything: timeouts are excluded from the
        // table, so even the duplicate schedule re-executes every time.
        assert_eq!(stats.runs, 2 * jobs.len() as u64);
        assert_eq!(stats.memo_hits, 0);
        assert_eq!(stats.memo_excluded, 2 * jobs.len() as u64);
    }

    #[test]
    fn gave_up_placeholders_are_never_memoized() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        // Exhaust every attempt; placeholders must not poison the memo.
        let faulty = faulty_pool(1, always_fault());
        let out = faulty.run_batch(&jobs, &CancelToken::new());
        assert!(out.iter().flatten().all(|o| o.vm_faulted.is_some()));
        assert_eq!(faulty.stats().memo_hits + faulty.stats().memo_misses, 0);
        // A fault-free pool over the same jobs misses the memo (nothing
        // was inserted) and produces real results.
        let clean = threaded_pool(1);
        let out = clean.run_batch(&jobs, &CancelToken::new());
        assert!(out.iter().flatten().all(|o| o.vm_faulted.is_none()));
        assert!(clean.stats().runs > 0);
    }

    #[test]
    fn fault_decision_ignores_worker_identity() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let f = always_fault();
        for job in &jobs {
            // Same job, same attempt: same decision, every time.
            assert_eq!(f.decide(job, 0), f.decide(job, 0));
            assert_eq!(f.decide(job, 1), f.decide(job, 1));
        }
        // rate 0 disables injection outright.
        let off = FaultInjection {
            rate_permille: 0,
            ..always_fault()
        };
        assert!(jobs.iter().all(|j| off.decide(j, 0).is_none()));
    }

    #[test]
    fn deadline_subscribers_stay_bounded_across_repeated_campaigns() {
        // A long-lived budget subscribed to by many short-lived campaigns
        // (each dropping its tokens when it finishes) must not accumulate
        // dead registrations: subscribe prunes, so the raw list length is
        // bounded by live tokens plus the one just pushed.
        let budget = DeadlineBudget::new(Some(3600.0), None, CostModel::default());
        for _ in 0..1000 {
            let token = CancelToken::new();
            budget.subscribe(&token);
            assert!(budget.subscribers.lock().unwrap().len() <= 2);
            drop(token);
        }
        assert_eq!(budget.subscriber_count(), 0);
        // check() also prunes dead weak slots.
        budget.check();
        assert!(budget.subscribers.lock().unwrap().is_empty());
        // Live tokens still get cancelled when the budget fires, and a
        // subscribe from inside the post-fire world must not deadlock.
        let live = CancelToken::new();
        budget.subscribe(&live);
        budget.fire("test");
        assert!(live.is_cancelled());
        budget.subscribe(&CancelToken::new());
    }

    #[test]
    fn memo_shard_entries_stay_bounded_under_fingerprint_churn() {
        let program = fig1_program();
        // One real conclusive output to cache (content is irrelevant to
        // the occupancy invariant; only the keys matter).
        let pool = threaded_pool(1);
        let jobs = fig1_jobs(&program);
        let out = pool.run_batch(&jobs, &CancelToken::new());
        let sample = out[0].clone().expect("serial run completes");

        let table = MemoTable::new(8); // shard_cap = 1
        for budget in 1..=1000usize {
            // Distinct step budgets give distinct fingerprints: pure churn.
            let job = ExecJob {
                program: Arc::clone(&program),
                schedule: jobs[0].schedule.clone(),
                enforce: EnforceConfig {
                    step_budget: budget,
                },
            };
            let fp = schedule_fingerprint(&job.schedule, &job.enforce);
            table.put(fp, &job, &sample, BackendKind::Ksim);
        }
        for shard in &table.shards {
            let (buckets, entries, recency) = shard.lock().unwrap().diag();
            assert!(
                entries <= table.shard_cap,
                "shard overflows its LRU capacity: {entries} > {}",
                table.shard_cap
            );
            assert!(
                buckets <= entries,
                "evicted fingerprints left {buckets} bucket keys for \
                 {entries} live entries"
            );
            assert_eq!(recency, entries, "recency index out of sync");
        }
    }

    #[test]
    fn zero_capacity_memo_is_inert_on_get_and_put() {
        let program = fig1_program();
        let jobs = fig1_jobs(&program);
        let pool = threaded_pool(1);
        let out = pool.run_batch(&jobs, &CancelToken::new());
        let sample = out[0].clone().expect("serial run completes");

        let table = MemoTable::new(0);
        let fp = schedule_fingerprint(&jobs[0].schedule, &jobs[0].enforce);
        table.put(fp, &jobs[0], &sample, BackendKind::Ksim);
        assert!(table.get(&jobs[0], fp, BackendKind::Ksim).is_none());
        for shard in &table.shards {
            assert_eq!(shard.lock().unwrap().diag(), (0, 0, 0));
        }
    }
}
