//! Schedules: the interleaving specifications AITIA enforces.
//!
//! A schedule is "a manifestation of an instruction sequence consisting of
//! i) a system call to be started initially and ii) scheduling points",
//! where a scheduling point "specifies an instruction address and
//! interleaving order (e.g., Thread A is interleaved to Thread B at address
//! 0x601020)" (§4.3). This module defines exactly that representation plus
//! a compressor that turns a desired total order of steps into the minimal
//! scheduling points realizing it.
//!
//! Threads are named by [`ThreadSel`] — program id plus instantiation
//! ordinal — rather than runtime ids, because runtime ids depend on spawn
//! order, which the schedule itself influences.

use crate::backend::ExecBackend;
use ksim::{
    InstrAddr,
    ThreadId,
    ThreadProgId, //
};
use serde::{
    Deserialize,
    Serialize, //
};
use std::collections::HashMap;

/// Stable thread naming across runs: the `occurrence`-th runtime instance
/// of a thread program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ThreadSel {
    /// The static thread program.
    pub prog: ThreadProgId,
    /// Which instantiation of the program (0 = first).
    pub occurrence: u32,
}

impl ThreadSel {
    /// The first instance of `prog`.
    #[must_use]
    pub fn first(prog: ThreadProgId) -> Self {
        ThreadSel {
            prog,
            occurrence: 0,
        }
    }

    /// Resolves this selector to a runtime thread in `engine`, if it has
    /// been instantiated.
    #[must_use]
    pub fn resolve(&self, engine: &dyn ExecBackend) -> Option<ThreadId> {
        engine.thread_by_prog(self.prog, self.occurrence)
    }

    /// The selector naming a runtime thread of `engine`.
    #[must_use]
    pub fn of(engine: &dyn ExecBackend, tid: ThreadId) -> ThreadSel {
        let t = engine.thread(tid).expect("thread exists");
        ThreadSel {
            prog: t.prog,
            occurrence: t.occurrence,
        }
    }
}

/// When a scheduling point triggers relative to its anchor instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Anchor {
    /// The thread is suspended when it is *about to execute* the anchor
    /// (a breakpoint trap before execution).
    Before,
    /// The thread is suspended right *after executing* the anchor (LIFS
    /// preempts after the memory-accessing instruction so its watchpoint
    /// can observe the other threads, §3.3).
    After,
}

/// One scheduling point: suspend `thread` at `at` and resume `switch_to`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedPoint {
    /// The thread being suspended.
    pub thread: ThreadSel,
    /// The anchor instruction address.
    pub at: InstrAddr,
    /// Triggers on the `nth` execution of `at` by `thread` (0-based),
    /// which disambiguates loops.
    pub nth: u32,
    /// Before or after executing the anchor.
    pub when: Anchor,
    /// The thread resumed by the switch.
    pub switch_to: ThreadSel,
}

/// A complete interleaving specification.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// The thread started first (`None` = first initial thread).
    pub start: Option<ThreadSel>,
    /// Scheduling points, consumed strictly in order.
    pub points: Vec<SchedPoint>,
    /// Preference order for picking the next thread when the current one
    /// finishes or blocks outside any scheduling point. Runnable background
    /// threads not listed here are preferred over listed threads that come
    /// after the current position (spawned work runs when its spawner
    /// yields, matching the paper's serial search order, Figure 5).
    pub fallback: Vec<ThreadSel>,
    /// The intended sequence of thread *segments* (consecutive runs of one
    /// thread), when the schedule was derived from a concrete total order.
    /// The enforcer follows this sequence with a cursor at boundaries where
    /// no anchor point exists (a thread exiting naturally cannot carry a
    /// breakpoint), which a flat preference list cannot express.
    pub segments: Vec<ThreadSel>,
}

impl Schedule {
    /// A serial schedule: run threads to completion in `order`.
    #[must_use]
    pub fn serial(order: Vec<ThreadSel>) -> Self {
        Schedule {
            start: order.first().copied(),
            points: Vec::new(),
            fallback: order,
            segments: Vec::new(),
        }
    }
}

/// Compresses a desired total order of `(thread, instruction)` steps into a
/// [`Schedule`]: one scheduling point per context switch, anchored *before*
/// the suspended thread's next step in the order (or before its next
/// pending instruction when it never runs again).
///
/// `pending_next` supplies, for threads that are suspended at a boundary and
/// have no later step in the order, the instruction they are parked at.
#[must_use]
pub fn schedule_from_order(
    order: &[(ThreadSel, InstrAddr)],
    pending_next: &HashMap<ThreadSel, InstrAddr>,
) -> Schedule {
    let mut points = Vec::new();
    let mut exec_counts: HashMap<(ThreadSel, InstrAddr), u32> = HashMap::new();
    for i in 0..order.len() {
        let (cur, at) = order[i];
        *exec_counts.entry((cur, at)).or_insert(0) += 1;
        let Some(&(next, _)) = order.get(i + 1) else {
            break;
        };
        if next == cur {
            continue;
        }
        // Context switch: anchor on `cur`'s next step in the order.
        let anchor = order[i + 1..]
            .iter()
            .find(|(t, _)| *t == cur)
            .map(|&(_, a)| a)
            .or_else(|| pending_next.get(&cur).copied());
        if let Some(anchor_at) = anchor {
            let nth = exec_counts.get(&(cur, anchor_at)).copied().unwrap_or(0);
            points.push(SchedPoint {
                thread: cur,
                at: anchor_at,
                nth,
                when: Anchor::Before,
                switch_to: next,
            });
        }
        // No anchor: `cur` exits naturally before the boundary; the
        // fallback order hands control to `next`.
    }
    // Fallback: threads ordered by their *last* step's position — when a
    // thread exits naturally at a segment boundary (no anchor can be
    // placed on it), the enforcer must hand control to whichever thread's
    // remaining work comes next in the intended order, and the thread
    // whose work ends earliest is never wrongly resumed ahead of one whose
    // segment is still pending.
    let mut last_pos: Vec<(ThreadSel, usize)> = Vec::new();
    for (i, (t, _)) in order.iter().enumerate() {
        match last_pos.iter_mut().find(|(s, _)| s == t) {
            Some(entry) => entry.1 = i,
            None => last_pos.push((*t, i)),
        }
    }
    last_pos.sort_by_key(|&(_, i)| i);
    let fallback: Vec<ThreadSel> = last_pos.into_iter().map(|(t, _)| t).collect();
    // The segment sequence: consecutive runs of one thread collapse.
    let mut segments: Vec<ThreadSel> = Vec::new();
    for (t, _) in order {
        if segments.last() != Some(t) {
            segments.push(*t);
        }
    }
    Schedule {
        start: order.first().map(|&(t, _)| t),
        points,
        fallback,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(prog: u16, index: usize) -> InstrAddr {
        InstrAddr {
            prog: ThreadProgId(prog),
            index,
        }
    }

    fn sel(prog: u16) -> ThreadSel {
        ThreadSel::first(ThreadProgId(prog))
    }

    #[test]
    fn serial_schedule_has_no_points() {
        let s = Schedule::serial(vec![sel(0), sel(1)]);
        assert!(s.points.is_empty());
        assert_eq!(s.start, Some(sel(0)));
        assert_eq!(s.fallback.len(), 2);
    }

    #[test]
    fn order_compression_emits_one_point_per_switch() {
        // A0 A1 | B0 B1 | A2 — two switches, A has a later step at the
        // first one, B exits naturally at the second (no later B step, no
        // pending entry → no point).
        let order = vec![
            (sel(0), at(0, 0)),
            (sel(0), at(0, 1)),
            (sel(1), at(1, 0)),
            (sel(1), at(1, 1)),
            (sel(0), at(0, 2)),
        ];
        let s = schedule_from_order(&order, &HashMap::new());
        assert_eq!(s.points.len(), 1);
        let p = &s.points[0];
        assert_eq!(p.thread, sel(0));
        assert_eq!(p.at, at(0, 2));
        assert_eq!(p.when, Anchor::Before);
        assert_eq!(p.switch_to, sel(1));
        assert_eq!(s.start, Some(sel(0)));
    }

    #[test]
    fn pending_next_supplies_anchor_for_final_suspension() {
        // A0 | B0 B1 — A never runs again but is parked at A1.
        let order = vec![(sel(0), at(0, 0)), (sel(1), at(1, 0)), (sel(1), at(1, 1))];
        let mut pend = HashMap::new();
        pend.insert(sel(0), at(0, 1));
        let s = schedule_from_order(&order, &pend);
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0].at, at(0, 1));
        assert_eq!(s.points[0].switch_to, sel(1));
    }

    #[test]
    fn nth_counts_prior_executions_of_anchor() {
        // A executes at(0,0) twice (a loop), switch anchored on its third
        // arrival.
        let order = vec![
            (sel(0), at(0, 0)),
            (sel(0), at(0, 0)),
            (sel(1), at(1, 0)),
            (sel(0), at(0, 0)),
        ];
        let s = schedule_from_order(&order, &HashMap::new());
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0].nth, 2);
    }

    #[test]
    fn fallback_lists_threads_by_last_step_position() {
        let order = vec![
            (sel(2), at(2, 0)),
            (sel(0), at(0, 0)),
            (sel(2), at(2, 1)),
            (sel(1), at(1, 0)),
        ];
        let s = schedule_from_order(&order, &HashMap::new());
        // sel(0)'s work ends first (index 1), then sel(2) (index 2), then
        // sel(1) (index 3).
        assert_eq!(s.fallback, vec![sel(0), sel(2), sel(1)]);
    }
}
