//! Parallel orchestration of reproducers and diagnosers (§4.1, §4.5).
//!
//! The paper launches 32 virtual machines: reproducers run LIFS over the
//! candidate slices in parallel; once one reports a failure-causing
//! instruction sequence, diagnosers run Causality Analysis flips in
//! parallel. Here each "VM" is a pool worker owning its own engine; the
//! manager delegates all fan-out to the shared executor ([`crate::exec`]),
//! whose canonical-order fold makes every outcome — failing slice choice,
//! merged statistics, chain — identical at any worker count.
//!
//! Two fan-out shapes share the one pool:
//!
//! * **one slice** — the slice's LIFS rounds and the diagnosis flips run
//!   *through* the pool ([`Lifs::with_executor`]), parallelizing within the
//!   search;
//! * **many slices** — slices fan out as tasks over the pool
//!   ([`crate::exec::Executor::run_tasks_until`]); each task searches its
//!   slice on a private single-worker executor, and later slices are
//!   cancelled through child tokens once an earlier one reproduces.

use crate::{
    backend::BackendKind,
    causality::{
        CausalityAnalysis,
        CausalityConfig,
        CausalityResult, //
    },
    exec::{
        DeadlineBudget,
        ExecStats,
        Executor,
        ExecutorConfig,
        FaultInjection,
        Substrate, //
    },
    journal::Journal,
    lifs::{
        FailingRun,
        Lifs,
        LifsConfig,
        LifsStats, //
    },
    simtime::CostModel,
};
use khist::ExecHistory;
use ksim::Program;
use std::sync::Arc;

/// Manager configuration.
#[derive(Clone, Debug)]
pub struct ManagerConfig {
    /// Worker ("VM") count — the one pool size shared by the executor and
    /// the simulated-time cost model ([`Manager::cost_model`]).
    pub vms: usize,
    /// LIFS configuration for reproducers.
    pub lifs: LifsConfig,
    /// Causality Analysis configuration for diagnosers.
    pub causality: CausalityConfig,
    /// Deterministic VM-fault injection, threaded into the pool *and* the
    /// per-slice single-worker executors; `None` disables it.
    pub fault: Option<FaultInjection>,
    /// Cross-run schedule memoization and the shared snapshot forest
    /// ([`crate::exec::ExecutorConfig::memo`]), threaded into the pool *and*
    /// the per-slice single-worker executors. Diagnoses are bit-identical
    /// either way; disabling is the A/B baseline for the benchmark.
    pub memo: bool,
    /// Which memo table / snapshot forest the campaign's executors consult
    /// ([`crate::exec::ExecutorConfig::substrate`]): the process-global
    /// substrate by default, or an explicit handle so concurrent campaigns
    /// either share deliberately (`campaignd`'s cross-campaign substrate)
    /// or not at all ([`Substrate::private`]).
    pub substrate: Substrate,
    /// Wall-clock budget for the whole campaign, in seconds. When it
    /// expires, in-flight batches stop and the diagnosis degrades to
    /// best-so-far results (un-flipped races become
    /// [`crate::causality::Verdict::Unverified`]). `None` = unbounded.
    pub wall_deadline_s: Option<f64>,
    /// Simulated-time budget, in serial seconds under [`CostModel`] rates
    /// divided by the pool size — the deterministic analogue of the
    /// wall-clock budget, charged only by actually-executed runs (memo and
    /// journal hits are free). `None` = unbounded.
    pub sim_deadline_s: Option<f64>,
    /// Durable run journal: every conclusive execution is appended, and a
    /// resumed campaign replays it into the memo table. `None` disables
    /// durability.
    pub journal: Option<Arc<Journal>>,
    /// Which execution backend boots the campaign's worker VMs
    /// ([`crate::exec::ExecutorConfig::backend`]), threaded into the pool
    /// *and* the per-slice single-worker executors. Callers must validate
    /// [`BackendKind::available`] before constructing the manager.
    pub backend: BackendKind,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            vms: 8,
            lifs: LifsConfig::default(),
            causality: CausalityConfig::default(),
            fault: None,
            memo: true,
            substrate: Substrate::process_global(),
            wall_deadline_s: None,
            sim_deadline_s: None,
            journal: None,
            backend: BackendKind::default(),
        }
    }
}

/// Outcome of the reproducing stage over multiple candidate slices.
#[derive(Debug)]
pub struct ReproduceOutcome {
    /// The first (by slice priority) failing run, if any slice reproduced.
    pub failing: Option<FailingRun>,
    /// Index of the slice that reproduced.
    pub slice_index: Option<usize>,
    /// Merged LIFS statistics across every attempted slice.
    pub stats: LifsStats,
}

/// The full diagnosis of one bug: reproduction plus causality analysis.
#[derive(Debug)]
pub struct Diagnosis {
    /// Which slice reproduced.
    pub slice_index: usize,
    /// The failing run.
    pub failing: FailingRun,
    /// The analysis result (chain, verdicts, statistics).
    pub result: CausalityResult,
    /// LIFS statistics.
    pub lifs_stats: LifsStats,
}

/// The AITIA manager: orchestrates parallel reproducers and diagnosers.
pub struct Manager {
    config: ManagerConfig,
    exec: Arc<Executor>,
    deadline: Option<Arc<DeadlineBudget>>,
}

impl Manager {
    /// Creates a manager owning a VM pool of `config.vms` workers.
    #[must_use]
    pub fn new(config: ManagerConfig) -> Self {
        let deadline =
            (config.wall_deadline_s.is_some() || config.sim_deadline_s.is_some()).then(|| {
                let d = Arc::new(DeadlineBudget::new(
                    config.wall_deadline_s,
                    config.sim_deadline_s,
                    CostModel {
                        vms: u32::try_from(config.vms.max(1)).unwrap_or(u32::MAX),
                        ..CostModel::default()
                    },
                ));
                // When the deadline fires, both stages' cancellation roots
                // trip, so LIFS rounds and causality flips stop folding at
                // the first hole.
                d.subscribe(&config.lifs.cancel);
                d.subscribe(&config.causality.cancel);
                d
            });
        let exec = Arc::new(Executor::with_config(ExecutorConfig {
            vms: config.vms,
            fault: config.fault,
            memo: config.memo,
            substrate: config.substrate.clone(),
            journal: config.journal.clone(),
            deadline: deadline.clone(),
            backend: config.backend,
            ..ExecutorConfig::default()
        }));
        Manager {
            config,
            exec,
            deadline,
        }
    }

    /// Whether a configured deadline budget has fired.
    #[must_use]
    pub fn deadline_fired(&self) -> bool {
        self.deadline.as_ref().is_some_and(|d| d.fired())
    }

    /// The journal's counters, when one is configured.
    #[must_use]
    pub fn journal_stats(&self) -> Option<crate::journal::JournalStats> {
        self.config.journal.as_ref().map(|j| j.stats())
    }

    /// The substrate this manager's executors consult.
    #[must_use]
    pub fn substrate(&self) -> &Substrate {
        &self.config.substrate
    }

    /// The execution backend this manager's executors boot.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        self.config.backend
    }

    /// Robustness counters of the manager's shared pool. Multi-slice
    /// reproduction additionally runs per-slice single-worker executors
    /// whose counters are private to each slice task and not merged here.
    #[must_use]
    pub fn exec_stats(&self) -> ExecStats {
        self.exec.stats()
    }

    /// The simulated-time cost model for this manager's pool: `vms`
    /// reflects the configured worker count, so reports derived from
    /// [`crate::simtime::SimCost::seconds`] describe the pool that actually
    /// ran the schedules.
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            vms: u32::try_from(self.config.vms.max(1)).unwrap_or(u32::MAX),
            ..CostModel::default()
        }
    }

    /// Reproducing stage: runs LIFS over candidate slices (each a
    /// [`Program`]) on the VM pool; returns the highest-priority failing
    /// run. Later slices are cancelled once an earlier one reproduces.
    #[must_use]
    pub fn reproduce(&self, slices: &[Arc<Program>]) -> ReproduceOutcome {
        let mut stats = LifsStats::default();
        let mut failing = None;
        let mut slice_index = None;
        if slices.is_empty() {
            return ReproduceOutcome {
                failing,
                slice_index,
                stats,
            };
        }
        if slices.len() == 1 {
            // One slice: the search itself fans out over the pool.
            let out = Lifs::with_executor(
                Arc::clone(&slices[0]),
                self.config.lifs.clone(),
                Arc::clone(&self.exec),
            )
            .search();
            stats.merge(&out.stats);
            if out.failing.is_some() {
                failing = out.failing;
                slice_index = Some(0);
            }
            return ReproduceOutcome {
                failing,
                slice_index,
                stats,
            };
        }
        // Many slices: fan the slices out as tasks; each runs its search on
        // a private single-worker executor so slice-level parallelism is
        // not serialized behind the pool's batch slots. The fold below
        // walks the canonical prefix, so the earliest failing slice wins
        // and statistics only ever count deterministically completed
        // searches.
        let results = self.exec.run_tasks_until(
            slices.len(),
            &self.config.lifs.cancel,
            |i, token| {
                let mut cfg = self.config.lifs.clone();
                cfg.cancel = token;
                let slice_exec = Arc::new(Executor::with_config(ExecutorConfig {
                    vms: 1,
                    fault: self.config.fault,
                    memo: self.config.memo,
                    substrate: self.config.substrate.clone(),
                    journal: self.config.journal.clone(),
                    deadline: self.deadline.clone(),
                    backend: self.config.backend,
                    ..ExecutorConfig::default()
                }));
                Lifs::with_executor(Arc::clone(&slices[i]), cfg, slice_exec).search()
            },
            |out| out.failing.is_some(),
        );
        for (i, res) in results.into_iter().enumerate() {
            let Some(out) = res else {
                break; // Cancelled tail: nothing past the first hole counts.
            };
            stats.merge(&out.stats);
            if failing.is_none() && out.failing.is_some() {
                failing = out.failing;
                slice_index = Some(i);
            }
        }
        ReproduceOutcome {
            failing,
            slice_index,
            stats,
        }
    }

    /// Full pipeline: reproduce over slices, then diagnose the failing run.
    #[must_use]
    pub fn diagnose(&self, slices: &[Arc<Program>]) -> Option<Diagnosis> {
        let repro = self.reproduce(slices);
        let failing = repro.failing?;
        let slice_index = repro.slice_index.unwrap_or(0);
        let result =
            CausalityAnalysis::with_executor(self.config.causality.clone(), Arc::clone(&self.exec))
                .analyze(&failing);
        Some(Diagnosis {
            slice_index,
            failing,
            result,
            lifs_stats: repro.stats,
        })
    }

    /// Diagnoses a single program (one-slice convenience).
    #[must_use]
    pub fn diagnose_program(&self, program: Arc<Program>) -> Option<Diagnosis> {
        self.diagnose(&[program])
    }

    /// The full input-to-chain pipeline (§4.1): slices the execution
    /// history backward from the failure, resolves each slice to an
    /// executable kernel scenario through `resolver`, and reproduces /
    /// diagnoses over the candidates in priority order.
    #[must_use]
    pub fn diagnose_history(
        &self,
        history: &ExecHistory,
        resolver: &dyn SliceResolver,
    ) -> Option<Diagnosis> {
        let slices: Vec<Arc<Program>> = khist::slices(history)
            .iter()
            .filter_map(|s| resolver.resolve(s))
            .collect();
        self.diagnose(&slices)
    }
}

/// Maps a trace slice onto an executable kernel scenario.
///
/// In the paper, the user agent replays the slice's system calls against
/// the real kernel; in the reproduction, a resolver supplies the modeled
/// kernel code paths for the slice's calls (the corpus provides one
/// covering its 22 bugs).
pub trait SliceResolver: Sync {
    /// The program modeling this slice's concurrent calls, if known.
    fn resolve(&self, slice: &khist::Slice) -> Option<Arc<Program>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::builder::ProgramBuilder;

    fn fig1_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    fn benign_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("benign");
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "w");
            a.fetch_add_global(x, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "w");
            b.fetch_add_global(x, 1u64);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn diagnose_pipeline_produces_chain() {
        let d = Manager::new(ManagerConfig::default())
            .diagnose_program(fig1_program())
            .expect("diagnosis");
        assert_eq!(d.result.chain.race_count(), 2);
        assert!(d.lifs_stats.schedules_executed > 0);
    }

    #[test]
    fn reproduce_prefers_earliest_failing_slice() {
        let slices = vec![benign_program(), fig1_program(), fig1_program()];
        let m = Manager::new(ManagerConfig::default());
        let out = m.reproduce(&slices);
        assert_eq!(out.slice_index, Some(1));
        assert!(out.failing.is_some());
    }

    #[test]
    fn reproduce_handles_no_failure() {
        let m = Manager::new(ManagerConfig::default());
        let out = m.reproduce(&[benign_program()]);
        assert!(out.failing.is_none());
        assert!(out.stats.schedules_executed > 0);
    }

    #[test]
    fn empty_slice_list_is_fine() {
        let m = Manager::new(ManagerConfig::default());
        assert!(m.reproduce(&[]).failing.is_none());
        assert!(m.diagnose(&[]).is_none());
    }

    #[test]
    fn cost_model_reflects_configured_pool_size() {
        let m = Manager::new(ManagerConfig {
            vms: 3,
            ..ManagerConfig::default()
        });
        assert_eq!(m.cost_model().vms, 3);
    }

    #[test]
    fn parallel_matches_serial_chain_and_stats() {
        let serial = Manager::new(ManagerConfig {
            vms: 1,
            ..ManagerConfig::default()
        })
        .diagnose_program(fig1_program())
        .expect("serial");
        let parallel = Manager::new(ManagerConfig {
            vms: 8,
            ..ManagerConfig::default()
        })
        .diagnose_program(fig1_program())
        .expect("parallel");
        assert_eq!(
            serial.result.chain.to_string(),
            parallel.result.chain.to_string()
        );
        assert_eq!(
            serial.lifs_stats.schedules_executed,
            parallel.lifs_stats.schedules_executed
        );
        assert_eq!(
            serial.result.stats.schedules_executed,
            parallel.result.stats.schedules_executed
        );
        assert_eq!(serial.lifs_stats.sim.steps, parallel.lifs_stats.sim.steps);
    }

    #[test]
    fn memoization_does_not_change_the_diagnosis() {
        let run = |memo| {
            Manager::new(ManagerConfig {
                memo,
                ..ManagerConfig::default()
            })
            .diagnose_program(fig1_program())
            .expect("diagnosis")
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.result.chain.to_string(), on.result.chain.to_string());
        assert_eq!(
            off.lifs_stats.schedules_executed,
            on.lifs_stats.schedules_executed
        );
        assert_eq!(
            off.result.stats.schedules_executed,
            on.result.stats.schedules_executed
        );
        assert_eq!(off.lifs_stats.sim.steps, on.lifs_stats.sim.steps);
        assert_eq!(off.result.stats.sim, on.result.stats.sim);
        // The baseline never consults the table.
        assert_eq!(off.lifs_stats.memo_hits, 0);
        assert_eq!(off.result.stats.memo_hits, 0);
    }

    /// End-to-end prune-level agreement at the manager layer: every level
    /// produces the same chain and failing schedule at every pool size,
    /// and `dpor` never executes more schedules than `conflict`, which
    /// never executes more than `off`.
    #[test]
    fn prune_levels_agree_across_pool_sizes() {
        use crate::lifs::PruneLevel;
        let run = |prune, vms| {
            Manager::new(ManagerConfig {
                vms,
                lifs: LifsConfig {
                    prune,
                    ..LifsConfig::default()
                },
                ..ManagerConfig::default()
            })
            .diagnose_program(fig1_program())
            .expect("diagnosis")
        };
        let baseline = run(PruneLevel::Off, 1);
        let mut executed = vec![baseline.lifs_stats.schedules_executed];
        for level in [PruneLevel::Conflict, PruneLevel::Dpor] {
            let serial = run(level, 1);
            for vms in [2usize, 8] {
                let pooled = run(level, vms);
                assert_eq!(
                    serial.result.chain.to_string(),
                    pooled.result.chain.to_string(),
                    "{level} chain diverged at {vms} workers"
                );
                assert_eq!(
                    serial.failing.schedule, pooled.failing.schedule,
                    "{level} failing schedule diverged at {vms} workers"
                );
                assert_eq!(
                    serial.lifs_stats.schedules_executed, pooled.lifs_stats.schedules_executed,
                    "{level} schedule count diverged at {vms} workers"
                );
            }
            assert_eq!(
                baseline.result.chain.to_string(),
                serial.result.chain.to_string(),
                "{level} chain diverged from the unpruned baseline"
            );
            assert_eq!(
                baseline.failing.schedule, serial.failing.schedule,
                "{level} failing schedule diverged from the unpruned baseline"
            );
            executed.push(serial.lifs_stats.schedules_executed);
        }
        assert!(
            executed[2] <= executed[1] && executed[1] <= executed[0],
            "pruning increased the schedule count: {executed:?}"
        );
    }

    #[test]
    fn multi_slice_stats_are_deterministic_across_pool_sizes() {
        let slices = vec![benign_program(), fig1_program(), fig1_program()];
        let run = |vms| {
            Manager::new(ManagerConfig {
                vms,
                ..ManagerConfig::default()
            })
            .reproduce(&slices)
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial.slice_index, parallel.slice_index);
        assert_eq!(
            serial.stats.schedules_executed,
            parallel.stats.schedules_executed
        );
        assert_eq!(serial.stats.sim.steps, parallel.stats.sim.steps);
    }
}
