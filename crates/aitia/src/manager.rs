//! Parallel orchestration of reproducers and diagnosers (§4.1, §4.5).
//!
//! The paper launches 32 virtual machines: reproducers run LIFS over the
//! candidate slices in parallel; once one reports a failure-causing
//! instruction sequence, diagnosers run Causality Analysis flips in
//! parallel. Here each "VM" is a worker thread owning its own engines; the
//! manager fans slices/flips out over a crossbeam-scoped pool and collects
//! results deterministically.

use crate::{
    causality::{
        CausalityAnalysis,
        CausalityConfig,
        CausalityResult, //
    },
    lifs::{
        FailingRun,
        Lifs,
        LifsConfig,
        LifsStats, //
    },
    simtime::SimCost,
};
use khist::ExecHistory;
use ksim::Program;
use parking_lot::Mutex;
use std::sync::{
    atomic::{
        AtomicBool,
        AtomicUsize,
        Ordering, //
    },
    Arc,
};

/// Manager configuration.
#[derive(Clone, Debug)]
pub struct ManagerConfig {
    /// Worker ("VM") count.
    pub vms: usize,
    /// LIFS configuration for reproducers.
    pub lifs: LifsConfig,
    /// Causality Analysis configuration for diagnosers.
    pub causality: CausalityConfig,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            vms: 8,
            lifs: LifsConfig::default(),
            causality: CausalityConfig::default(),
        }
    }
}

/// Outcome of the reproducing stage over multiple candidate slices.
#[derive(Debug)]
pub struct ReproduceOutcome {
    /// The first (by slice priority) failing run, if any slice reproduced.
    pub failing: Option<FailingRun>,
    /// Index of the slice that reproduced.
    pub slice_index: Option<usize>,
    /// Merged LIFS statistics across every attempted slice.
    pub stats: LifsStats,
}

/// The full diagnosis of one bug: reproduction plus causality analysis.
#[derive(Debug)]
pub struct Diagnosis {
    /// Which slice reproduced.
    pub slice_index: usize,
    /// The failing run.
    pub failing: FailingRun,
    /// The analysis result (chain, verdicts, statistics).
    pub result: CausalityResult,
    /// LIFS statistics.
    pub lifs_stats: LifsStats,
}

/// The AITIA manager: orchestrates parallel reproducers and diagnosers.
pub struct Manager {
    config: ManagerConfig,
}

impl Manager {
    /// Creates a manager.
    #[must_use]
    pub fn new(config: ManagerConfig) -> Self {
        Manager { config }
    }

    /// Reproducing stage: runs LIFS over candidate slices (each a
    /// [`Program`]) on the VM pool; returns the highest-priority failing
    /// run. Later slices are cancelled once an earlier one reproduces.
    #[must_use]
    pub fn reproduce(&self, slices: &[Arc<Program>]) -> ReproduceOutcome {
        if slices.is_empty() {
            return ReproduceOutcome {
                failing: None,
                slice_index: None,
                stats: LifsStats::default(),
            };
        }
        let next = AtomicUsize::new(0);
        let best: Mutex<Option<(usize, FailingRun)>> = Mutex::new(None);
        let stop = AtomicBool::new(false);
        let stats: Mutex<LifsStats> = Mutex::new(LifsStats::default());
        let workers = self.config.vms.max(1).min(slices.len());
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= slices.len() {
                        return;
                    }
                    {
                        // Skip work that can no longer improve the result.
                        let guard = best.lock();
                        if stop.load(Ordering::SeqCst)
                            && guard.as_ref().is_some_and(|(bi, _)| *bi < i)
                        {
                            continue;
                        }
                    }
                    let out = Lifs::new(Arc::clone(&slices[i]), self.config.lifs.clone()).search();
                    {
                        let mut s = stats.lock();
                        merge_stats(&mut s, &out.stats);
                    }
                    if let Some(run) = out.failing {
                        let mut guard = best.lock();
                        let better = guard.as_ref().is_none_or(|(bi, _)| i < *bi);
                        if better {
                            *guard = Some((i, run));
                            stop.store(true, Ordering::SeqCst);
                        }
                    }
                });
            }
        })
        .expect("reproducer pool");
        let (slice_index, failing) = match best.into_inner() {
            Some((i, run)) => (Some(i), Some(run)),
            None => (None, None),
        };
        ReproduceOutcome {
            failing,
            slice_index,
            stats: stats.into_inner(),
        }
    }

    /// Full pipeline: reproduce over slices, then diagnose the failing run.
    #[must_use]
    pub fn diagnose(&self, slices: &[Arc<Program>]) -> Option<Diagnosis> {
        let repro = self.reproduce(slices);
        let failing = repro.failing?;
        let slice_index = repro.slice_index.unwrap_or(0);
        let result = CausalityAnalysis::new(self.config.causality.clone()).analyze(&failing);
        Some(Diagnosis {
            slice_index,
            failing,
            result,
            lifs_stats: repro.stats,
        })
    }

    /// Diagnoses a single program (one-slice convenience).
    #[must_use]
    pub fn diagnose_program(&self, program: Arc<Program>) -> Option<Diagnosis> {
        self.diagnose(&[program])
    }

    /// The full input-to-chain pipeline (§4.1): slices the execution
    /// history backward from the failure, resolves each slice to an
    /// executable kernel scenario through `resolver`, and reproduces /
    /// diagnoses over the candidates in priority order.
    #[must_use]
    pub fn diagnose_history(
        &self,
        history: &ExecHistory,
        resolver: &dyn SliceResolver,
    ) -> Option<Diagnosis> {
        let slices: Vec<Arc<Program>> = khist::slices(history)
            .iter()
            .filter_map(|s| resolver.resolve(s))
            .collect();
        self.diagnose(&slices)
    }
}

/// Maps a trace slice onto an executable kernel scenario.
///
/// In the paper, the user agent replays the slice's system calls against
/// the real kernel; in the reproduction, a resolver supplies the modeled
/// kernel code paths for the slice's calls (the corpus provides one
/// covering its 22 bugs).
pub trait SliceResolver: Sync {
    /// The program modeling this slice's concurrent calls, if known.
    fn resolve(&self, slice: &khist::Slice) -> Option<Arc<Program>>;
}

fn merge_stats(into: &mut LifsStats, from: &LifsStats) {
    into.schedules_executed += from.schedules_executed;
    into.pruned_nonconflicting += from.pruned_nonconflicting;
    into.pruned_equivalent += from.pruned_equivalent;
    into.interleaving_count = into.interleaving_count.max(from.interleaving_count);
    let mut sim = SimCost::default();
    sim.merge(&into.sim);
    sim.merge(&from.sim);
    into.sim = sim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::builder::ProgramBuilder;

    fn fig1_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    fn benign_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("benign");
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "w");
            a.fetch_add_global(x, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "w");
            b.fetch_add_global(x, 1u64);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn diagnose_pipeline_produces_chain() {
        let d = Manager::new(ManagerConfig::default())
            .diagnose_program(fig1_program())
            .expect("diagnosis");
        assert_eq!(d.result.chain.race_count(), 2);
        assert!(d.lifs_stats.schedules_executed > 0);
    }

    #[test]
    fn reproduce_prefers_earliest_failing_slice() {
        let slices = vec![benign_program(), fig1_program(), fig1_program()];
        let m = Manager::new(ManagerConfig::default());
        let out = m.reproduce(&slices);
        assert_eq!(out.slice_index, Some(1));
        assert!(out.failing.is_some());
    }

    #[test]
    fn reproduce_handles_no_failure() {
        let m = Manager::new(ManagerConfig::default());
        let out = m.reproduce(&[benign_program()]);
        assert!(out.failing.is_none());
        assert!(out.stats.schedules_executed > 0);
    }

    #[test]
    fn empty_slice_list_is_fine() {
        let m = Manager::new(ManagerConfig::default());
        assert!(m.reproduce(&[]).failing.is_none());
        assert!(m.diagnose(&[]).is_none());
    }

    #[test]
    fn parallel_matches_serial_chain() {
        let serial = Manager::new(ManagerConfig {
            vms: 1,
            ..ManagerConfig::default()
        })
        .diagnose_program(fig1_program())
        .expect("serial");
        let parallel = Manager::new(ManagerConfig {
            vms: 8,
            ..ManagerConfig::default()
        })
        .diagnose_program(fig1_program())
        .expect("parallel");
        assert_eq!(
            serial.result.chain.to_string(),
            parallel.result.chain.to_string()
        );
    }
}
