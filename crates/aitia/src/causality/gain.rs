//! Information-gain ordering of flip interventions.
//!
//! On deadline-budgeted campaigns the flips that never run degrade to
//! [`super::Verdict::Unverified`] — so *which* flips run first decides how
//! much diagnosis a partial campaign yields. Following causality-guided
//! adaptive interventional debugging (Fariha et al.), the adaptive level
//! scores every race by its expected chain impact and submits flip batches
//! in descending-score order, leaving the unexecuted tail on the
//! lowest-value races. Ordering never changes results when every flip runs:
//! outcomes fold back into canonical test-order slots, so verdicts, chains,
//! and digests are bit-identical to the exhaustive level.
//!
//! The score is a pure function of the failing run and the flip plans:
//!
//! * **failure-cone overlap** (dominant): the race's address appears in the
//!   backward cone of the failure — the addresses reachable by walking the
//!   trace backward from the failing step through program order and
//!   write-into-read data flow. Races off the cone cannot steer the failure
//!   and are the cheapest to lose to a deadline.
//! * **nesting depth**: how long a chain of surrounding races waits on this
//!   race's verdict (Figure 7 ambiguity resolution consumes nested verdicts
//!   first, so deep races unblock the most).
//! * **fan-in**: how many other races this race's flip drags along
//!   ([`super::flip::FlipPlan::also_flipped`]) — a proxy for how much of the
//!   interleaving the intervention perturbs.

use super::flip::FlipPlan;
use crate::{
    lifs::FailingRun,
    race::{
        AccessClass,
        ConflictIndex, //
    },
};
use ksim::{
    AccessKind,
    Addr,
    InstrAddr, //
};
use std::collections::{
    HashMap,
    HashSet, //
};

/// Addresses in the failure's backward cone. Starting from the failing step
/// (the last trace record), walk the trace backward keeping the set of
/// threads known to feed the failure and the set of tainted addresses; a
/// step joins the cone when its thread already feeds the failure or it
/// writes a tainted address, and taints every address it *observes* — a
/// plain read, or an RMW whose result lands in a register. Unobserved
/// `fetch_add` traffic taints nothing: a statistics counter a cone thread
/// bumps does not thereby join the cone. Deterministic and linear in the
/// trace.
#[must_use]
pub fn failure_cone(run: &FailingRun) -> HashSet<Addr> {
    let conflict = ConflictIndex::for_program(&run.program);
    let mut tainted: HashSet<Addr> = HashSet::new();
    let mut cone_tids: HashSet<ksim::ThreadId> = HashSet::new();
    let Some(last) = run.trace.last() else {
        return tainted;
    };
    cone_tids.insert(last.tid);
    for rec in run.trace.iter().rev() {
        let writes_taint = rec
            .accesses
            .iter()
            .any(|a| a.kind.is_write() && tainted.contains(&a.addr));
        if cone_tids.contains(&rec.tid) || writes_taint {
            cone_tids.insert(rec.tid);
            for acc in &rec.accesses {
                let observes = match acc.kind {
                    AccessKind::Read => true,
                    AccessKind::Rmw => conflict.classify(rec.at, acc.kind) != AccessClass::Add,
                    AccessKind::Write => false,
                };
                if observes {
                    tainted.insert(acc.addr);
                }
            }
        }
    }
    tainted
}

/// Deterministic gain score per race (`scores[i]` belongs to
/// `run.races[i]`; `plans[i]` must be race `i`'s flip plan). Higher scores
/// are more informative. Cone overlap dominates, then nesting depth, then
/// also-flipped fan-in.
#[must_use]
pub fn gain_scores(run: &FailingRun, plans: &[FlipPlan]) -> Vec<u64> {
    let n = run.races.len();
    debug_assert_eq!(plans.len(), n);
    let cone = failure_cone(run);

    let key_to_idx: HashMap<(InstrAddr, InstrAddr), usize> = run
        .races
        .iter()
        .enumerate()
        .map(|(i, r)| (r.key(), i))
        .collect();
    // nested[i]: races whose verdicts race i's Causal/Ambiguous resolution
    // waits on (the races its flip drags along).
    let nested: Vec<Vec<usize>> = plans
        .iter()
        .map(|p| {
            p.also_flipped
                .iter()
                .filter_map(|q| key_to_idx.get(&q.key()).copied())
                .collect()
        })
        .collect();
    // depth[j]: longest chain of surrounding races waiting on race j.
    // Fixed-point over the reversed nesting edges, bounded by n rounds so
    // degenerate mutual-nesting cycles terminate deterministically.
    let mut waiters: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ns) in nested.iter().enumerate() {
        for &j in ns {
            waiters[j].push(i);
        }
    }
    let mut depth = vec![0u64; n];
    for _ in 0..n {
        let mut changed = false;
        for j in 0..n {
            let d = waiters[j]
                .iter()
                .map(|&i| depth[i] + 1)
                .max()
                .unwrap_or(0)
                .min(n as u64);
            if d > depth[j] {
                depth[j] = d;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    (0..n)
        .map(|i| {
            let in_cone = u64::from(cone.contains(&run.races[i].first.addr));
            let fan_in = (plans[i].also_flipped.len() as u64).min(999);
            in_cone * 1_000_000 + depth[i] * 1_000 + fan_in
        })
        .collect()
}

/// The submission permutation for one batch: `positions[k]` names the
/// batch's `k`-th job and `race_of(k)` its race index; the result reorders
/// `0..positions.len()` by descending gain, breaking ties by canonical
/// batch position so equal-gain flips keep the backward test order.
#[must_use]
pub fn submission_order(scores_by_job: &[u64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores_by_job.len()).collect();
    idx.sort_by(|&a, &b| scores_by_job[b].cmp(&scores_by_job[a]).then(a.cmp(&b)));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causality::flip::plan_flip;
    use crate::lifs::{
        Lifs,
        LifsConfig, //
    };
    use ksim::builder::ProgramBuilder;
    use std::sync::Arc;

    fn noisy_run() -> FailingRun {
        let mut p = ProgramBuilder::new("fig1-noise");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        let ctr = p.global("stats", 0);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.fetch_add_global(ctr, 1u64);
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.fetch_add_global(ctr, 1u64);
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        Lifs::new(prog, LifsConfig::default())
            .search()
            .failing
            .expect("reproduces")
    }

    #[test]
    fn causal_races_outscore_off_cone_noise() {
        let run = noisy_run();
        let plans: Vec<_> = run
            .races
            .iter()
            .map(|r| plan_flip(&run, r, &run.races, true))
            .collect();
        let scores = gain_scores(&run, &plans);
        let cone = failure_cone(&run);
        // The failing load's pointer comes through ptr/ptr_valid: both causal
        // race addresses are on the cone and must dominate any noise race
        // whose counter stays off it.
        for (i, r) in run.races.iter().enumerate() {
            if cone.contains(&r.first.addr) {
                for (j, q) in run.races.iter().enumerate() {
                    if !cone.contains(&q.first.addr) {
                        assert!(
                            scores[i] > scores[j],
                            "cone race {:?} must outscore {:?}",
                            r.key(),
                            q.key()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn submission_order_is_stable_on_ties() {
        assert_eq!(submission_order(&[5, 5, 9, 5]), vec![2, 0, 1, 3]);
        assert_eq!(submission_order(&[]), Vec::<usize>::new());
        assert_eq!(submission_order(&[1, 2, 3]), vec![2, 1, 0]);
    }

    #[test]
    fn scores_are_deterministic() {
        let run = noisy_run();
        let plans: Vec<_> = run
            .races
            .iter()
            .map(|r| plan_flip(&run, r, &run.races, true))
            .collect();
        assert_eq!(gain_scores(&run, &plans), gain_scores(&run, &plans));
    }
}
