//! Causality Analysis (§3.4): pinpointing the root cause.
//!
//! Given the failure-causing instruction sequence from LIFS, Causality
//! Analysis pops each data race — **backward**, last race first — and
//! executes the kernel with exactly that race's interleaving order flipped
//! while all other orders are preserved:
//!
//! * the failure does **not** manifest → the race *contributes* to the
//!   failure → root cause set;
//! * the failure still manifests → the race is **benign** → excluded.
//!
//! This realizes the formal definition of a root cause — "if removed
//! (flipped in our test), it would prevent a failure from occurring" — and
//! is what rules every statistics counter and flag-bit race out of the
//! report without any pattern knowledge.
//!
//! A second backward pass discovers causality *between* root-cause races:
//! flipping R1 and observing that R2 never occurs (its instructions
//! disappeared behind a race-steered control flow) yields the edge R1 → R2.
//! Mutually-causal races conjoin; the condensed order is the causality
//! chain.
//!
//! Nested/surrounding races (Figure 7) are handled exactly as the paper
//! prescribes: a surrounding race cannot be flipped while preserving a race
//! nested inside it, so the nested race flips along; if the nested race is
//! itself causal, the surrounding race's verdict is **ambiguous**.

pub mod chain;
pub mod flip;
pub mod gain;
pub mod invariants;

use crate::{
    enforce::{
        EnforceConfig,
        RunOutcome, //
    },
    exec::{
        CancelToken,
        ExecJob,
        ExecOutput,
        Executor, //
    },
    lifs::FailingRun,
    race::ObservedRace,
    simtime::SimCost,
};
use chain::{
    build_chain,
    CausalityChain, //
};
use flip::{
    failure_averted,
    plan_flip,
    FlipPlan, //
};
use invariants::StaticProver;
use ksim::InstrAddr;
use std::collections::HashSet;
use std::sync::Arc;

/// How much intervention the analysis performs (`--causality-level`).
///
/// The level changes *which* and *how many* flips run, never the verdicts:
/// on a completed (deadline-free) analysis, chains, verdicts, and edges are
/// bit-identical across levels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CausalityLevel {
    /// Flip every observed race, submitted in canonical (backward) test
    /// order — the paper's §3.4 procedure, verbatim.
    #[default]
    Exhaustive,
    /// Skip flips the static prover ([`invariants`]) discharges — their
    /// races are Benign with a `"static-invariant"` provenance — and submit
    /// the remaining flips in descending information-gain order ([`gain`]),
    /// so a deadline leaves [`Verdict::Unverified`] only on the
    /// lowest-value races.
    Adaptive,
}

impl std::fmt::Display for CausalityLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CausalityLevel::Exhaustive => "exhaustive",
            CausalityLevel::Adaptive => "adaptive",
        })
    }
}

impl std::str::FromStr for CausalityLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exhaustive" => Ok(CausalityLevel::Exhaustive),
            "adaptive" => Ok(CausalityLevel::Adaptive),
            other => Err(format!(
                "unknown causality level `{other}` (expected `exhaustive` or `adaptive`)"
            )),
        }
    }
}

/// The verdict on one tested data race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Flipping the race averted the failure: it contributes.
    Causal,
    /// The failure still manifested: the race is benign.
    Benign,
    /// The race's contribution cannot be determined: either it surrounds a
    /// causal nested race (Figure 7 — flipping it necessarily flipped the
    /// nested race too), or the flip run was inconclusive (timed out,
    /// crashed, or lost to a VM fault) and its non-failure must not be
    /// read as "the failure was averted".
    Ambiguous,
    /// The race's flip was never executed — a deadline budget expired (or
    /// the analysis was cancelled) before its run could start. Distinct
    /// from [`Verdict::Ambiguous`]: no evidence run exists at all. A
    /// degraded analysis marks every un-flipped race `Unverified`, never
    /// `Benign` — absence of a flip is not evidence of harmlessness.
    Unverified,
}

/// One tested race with its verdict and the evidence run's key facts.
#[derive(Clone, Debug)]
pub struct TestedRace {
    /// The race.
    pub race: ObservedRace,
    /// The verdict.
    pub verdict: Verdict,
    /// Races that the flip necessarily reversed along with this one.
    pub flipped_with: Vec<(InstrAddr, InstrAddr)>,
    /// Races (by ordered key) that did not occur in the flip run —
    /// race-steered control-flow evidence.
    pub vanished: Vec<(InstrAddr, InstrAddr)>,
    /// Whether the flip's window had to grow to a whole critical section.
    pub cs_expanded: bool,
    /// Classification of the flip run (a [`RunOutcome::Timeout`] or
    /// [`RunOutcome::Crashed`] run forces an ambiguous verdict). `None`
    /// when the flip never executed — deadline expiry, cancellation, or a
    /// static benign proof — which forces [`Verdict::Unverified`] unless
    /// [`TestedRace::static_proof`] holds.
    pub outcome: Option<RunOutcome>,
    /// Whether the verdict rests on a static invariant proof
    /// ([`invariants`]) instead of a flip run. Only ever true for
    /// [`Verdict::Benign`] at [`CausalityLevel::Adaptive`].
    pub static_proof: bool,
}

impl TestedRace {
    /// Where this verdict came from, for per-link report provenance.
    #[must_use]
    pub fn provenance(&self) -> &'static str {
        if self.static_proof {
            return "static-invariant";
        }
        match (self.verdict, self.outcome) {
            (_, None) => "not executed (deadline)",
            (_, Some(out)) if out.is_inconclusive() => "inconclusive flip",
            _ => "executed flip",
        }
    }
}

/// Statistics of one analysis (the Causality Analysis columns of Tables 2
/// and 3).
#[derive(Clone, Debug, Default)]
pub struct CaStats {
    /// Schedules executed across both passes. Memo hits are counted here
    /// (and in [`CaStats::sim`]) exactly like executed schedules, so the
    /// diagnosis-facing statistics are invariant to memoization; the avoided
    /// cost is tracked separately in [`CaStats::sim_time_saved_s`].
    pub schedules_executed: usize,
    /// Simulated cost.
    pub sim: SimCost,
    /// Flip runs answered from the cross-run memo table instead of a VM.
    pub memo_hits: usize,
    /// Snapshot-prefix restores served by the shared snapshot forest
    /// (published by another worker) rather than the VM's own cache.
    pub forest_hits: usize,
    /// Serial simulated seconds the memo hits and statically skipped flips
    /// avoided paying.
    pub sim_time_saved_s: f64,
    /// Flip runs skipped outright because the static prover
    /// ([`invariants`]) discharged the race as Benign. Unlike memo hits,
    /// skipped flips are *not* counted in [`CaStats::schedules_executed`]:
    /// no schedule (new or cached) was consulted at all.
    pub flips_skipped_static: usize,
    /// Flip jobs submitted out of canonical (backward) order by the
    /// information-gain scheduler ([`gain`]). Zero at
    /// [`CausalityLevel::Exhaustive`].
    pub flips_reordered: usize,
    /// Static proofs contradicted by their verification flip run — only
    /// countable under [`CausalityConfig::verify_static`], and always zero
    /// if the prover is sound.
    pub static_disagreements: usize,
    /// Whether a deadline budget fired during the analysis, degrading some
    /// verdicts to [`Verdict::Unverified`]. Always false without a
    /// configured [`crate::exec::DeadlineBudget`].
    pub deadline_fired: bool,
}

impl CaStats {
    /// Folds one executor output's memo/forest accounting. Faulted
    /// placeholders contribute nothing (`memo_hit` false, `forest_hits` 0).
    fn note_exec(&mut self, out: &crate::exec::ExecOutput) {
        self.memo_hits += usize::from(out.memo_hit);
        self.forest_hits += out.forest_hits as usize;
        if out.memo_hit {
            self.sim_time_saved_s += crate::simtime::CostModel::default()
                .serial_run_s(out.run.steps, out.run.failure.is_some());
        }
    }
}

/// Configuration of the analysis.
#[derive(Clone, Debug)]
pub struct CausalityConfig {
    /// Enforcement limits per run.
    pub enforce: EnforceConfig,
    /// Test races backward from the failure (§3.4). Disabling tests forward
    /// — the ablation showing why backward is the right direction.
    pub backward: bool,
    /// Flip critical sections as units (§3.4 liveness). Disabling is the
    /// ablation.
    pub cs_as_unit: bool,
    /// How much intervention to run (static proofs + gain ordering at
    /// [`CausalityLevel::Adaptive`]; the default is the exhaustive paper
    /// procedure).
    pub level: CausalityLevel,
    /// Debug agreement mode: still execute flips the static prover
    /// discharged and assert the run agrees (failure manifested). Costs the
    /// executions adaptivity saves — for soundness audits and the
    /// bench-causality agreement gate, not production use.
    pub verify_static: bool,
    /// Cancellation root for the analysis's flip batches. The default is a
    /// fresh, never-cancelled token; the manager subscribes this token to
    /// its deadline budget so an expired deadline stops in-flight batches.
    pub cancel: CancelToken,
}

impl Default for CausalityConfig {
    fn default() -> Self {
        CausalityConfig {
            enforce: EnforceConfig::default(),
            backward: true,
            cs_as_unit: true,
            level: CausalityLevel::default(),
            verify_static: false,
            cancel: CancelToken::new(),
        }
    }
}

/// The complete analysis result.
#[derive(Clone, Debug)]
pub struct CausalityResult {
    /// The causality chain — the root cause.
    pub chain: CausalityChain,
    /// Every tested race with its verdict.
    pub tested: Vec<TestedRace>,
    /// The root-cause races (chain members), in tested order.
    pub root_causes: Vec<ObservedRace>,
    /// Causality edges between root causes (indices into `root_causes`).
    pub edges: Vec<(usize, usize)>,
    /// Statistics.
    pub stats: CaStats,
}

impl CausalityResult {
    /// Races judged benign (excluded from the chain).
    #[must_use]
    pub fn benign(&self) -> Vec<&ObservedRace> {
        self.tested
            .iter()
            .filter(|t| t.verdict == Verdict::Benign)
            .map(|t| &t.race)
            .collect()
    }

    /// Races judged ambiguous.
    #[must_use]
    pub fn ambiguous(&self) -> Vec<&ObservedRace> {
        self.tested
            .iter()
            .filter(|t| t.verdict == Verdict::Ambiguous)
            .map(|t| &t.race)
            .collect()
    }

    /// Races left unverified (their flips never executed).
    #[must_use]
    pub fn unverified(&self) -> Vec<&ObservedRace> {
        self.tested
            .iter()
            .filter(|t| t.verdict == Verdict::Unverified)
            .map(|t| &t.race)
            .collect()
    }
}

/// The Causality Analysis driver.
///
/// Flip runs execute through the shared VM-pool executor ([`crate::exec`]):
/// each backward pass submits its flips as one batch and folds the results
/// back into canonical test-order slots, so verdicts — including Figure 7's
/// nested-race ambiguity resolution, which depends on the order verdicts
/// settle — are identical at any worker count *and* at any submission
/// order. The [`CausalityLevel::Adaptive`] level exploits exactly that
/// split: submission follows information gain while folding, verdicts, and
/// chains stay canonical.
pub struct CausalityAnalysis {
    config: CausalityConfig,
    exec: Arc<Executor>,
}

struct FlipOutcome {
    plan: FlipPlan,
    averted: bool,
    outcome: RunOutcome,
    occurred: HashSet<(InstrAddr, InstrAddr)>,
}

impl CausalityAnalysis {
    /// Creates an analysis executing on a private single-worker VM.
    #[must_use]
    pub fn new(config: CausalityConfig) -> Self {
        CausalityAnalysis::with_executor(config, Arc::new(Executor::new(1)))
    }

    /// Creates an analysis executing its flip batches on `exec`.
    #[must_use]
    pub fn with_executor(config: CausalityConfig, exec: Arc<Executor>) -> Self {
        CausalityAnalysis { config, exec }
    }

    /// Submission permutation for one batch: identity (canonical order) at
    /// the exhaustive level, descending gain at the adaptive level (ties
    /// keep canonical order). `positions[k]` is batch job `k`'s position in
    /// `order`, which maps positions to race indices — the shape both
    /// phase A and phase C share. Counts out-of-order submissions.
    fn submission(
        &self,
        positions: &[usize],
        order: &[usize],
        scores: Option<&[u64]>,
        stats: &mut CaStats,
    ) -> Vec<usize> {
        let Some(scores) = scores else {
            return (0..positions.len()).collect();
        };
        let by_job: Vec<u64> = positions.iter().map(|&p| scores[order[p]]).collect();
        let submit = gain::submission_order(&by_job);
        stats.flips_reordered += submit.iter().enumerate().filter(|&(k, &j)| k != j).count();
        submit
    }

    /// Runs the full analysis on a failing run.
    #[must_use]
    pub fn analyze(&self, run: &FailingRun) -> CausalityResult {
        let mut stats = CaStats::default();
        let cancel = self.config.cancel.clone();

        // Test order: backward (last race first) per the paper; forward is
        // the ablation. `run.races` is sorted ascending by backward key.
        let n = run.races.len();
        let mut order: Vec<usize> = (0..n).collect();
        if self.config.backward {
            order.reverse();
        }
        let adaptive = self.config.level == CausalityLevel::Adaptive;

        // Plans are pure per race; index by race so the static prover, the
        // gain scorer, and both phases can share one set.
        let plans_by_race: Vec<FlipPlan> = (0..n)
            .map(|i| plan_flip(run, &run.races[i], &run.races, self.config.cs_as_unit))
            .collect();

        // Static benign proofs (adaptive only): a race whose flip provably
        // still manifests the failure is Benign without a run — the proof
        // is the evidence, preserving the never-Benign-without-proof rule.
        let mut static_benign = vec![false; n];
        if adaptive {
            let prover = StaticProver::new(run);
            for (i, race) in run.races.iter().enumerate() {
                static_benign[i] = prover.prove_benign(race, self.config.cs_as_unit);
            }
            stats.flips_skipped_static = static_benign.iter().filter(|&&p| p).count();
            // A skipped flip would have re-enforced (roughly) the failing
            // interleaving; credit its estimated serial cost as saved.
            stats.sim_time_saved_s += stats.flips_skipped_static as f64
                * crate::simtime::CostModel::default().serial_run_s(run.trace.len(), true);
        }

        // Gain scores decide batch submission order at the adaptive level.
        let scores = adaptive.then(|| gain::gain_scores(run, &plans_by_race));

        // Phase A: flip each race once — one batch over the pass, folded
        // back into test-order slots regardless of submission order.
        // verify_static keeps proved flips in the batch so their runs can
        // be audited against the proofs.
        let positions: Vec<usize> = (0..order.len())
            .filter(|&p| !static_benign[order[p]] || self.config.verify_static)
            .collect();
        let jobs: Vec<ExecJob> = positions
            .iter()
            .map(|&p| ExecJob {
                program: Arc::clone(&run.program),
                schedule: plans_by_race[order[p]].schedule.clone(),
                enforce: self.config.enforce,
            })
            .collect();
        let submit = self.submission(&positions, &order, scores.as_deref(), &mut stats);
        let results = self.exec.run_batch_permuted(&jobs, &submit, &cancel);
        let mut outcomes: Vec<Option<FlipOutcome>> = (0..n).map(|_| None).collect();
        for (&p, res) in positions.iter().zip(results) {
            let i = order[p];
            // A hole means the batch was cut short (deadline or caller
            // cancellation) before this flip's turn came: its race stays
            // `None` → Unverified in phase B (unless statically proved).
            let Some(out) = res else { continue };
            stats.sim.add_retries(out.retries as usize);
            stats.note_exec(&out);
            if out.vm_faulted.is_none() {
                stats.schedules_executed += 1;
                stats.sim.add_run(out.run.steps, out.run.failure.is_some());
            }
            let outcome = flip_outcome(run, &plans_by_race[i], &out);
            // Agreement audit: a proved flip's conclusive run must still
            // manifest the failure, exactly as the invariant promised.
            if static_benign[i] && !outcome.outcome.is_inconclusive() && outcome.averted {
                stats.static_disagreements += 1;
                debug_assert!(
                    false,
                    "static proof disagreed with the flip run for {:?}",
                    run.races[i].key()
                );
            }
            outcomes[i] = Some(outcome);
        }

        // Phase B: verdicts, resolving nested-race dependencies first.
        // Statically proved races enter settled: Benign by invariant proof.
        let mut verdicts: Vec<Option<Verdict>> = vec![None; run.races.len()];
        for (i, &proved) in static_benign.iter().enumerate() {
            if proved {
                verdicts[i] = Some(Verdict::Benign);
            }
        }
        let mut progress = true;
        while progress {
            progress = false;
            for i in 0..run.races.len() {
                if verdicts[i].is_some() {
                    continue;
                }
                let Some(outcome) = outcomes[i].as_ref() else {
                    // The flip never executed: no evidence either way. Never
                    // Benign — an un-flipped race must stay in the suspect
                    // set, not be silently excluded.
                    verdicts[i] = Some(Verdict::Unverified);
                    progress = true;
                    continue;
                };
                // An inconclusive run (timeout, crash, VM fault) observed
                // nothing: its lack of a failure must not read as "averted"
                // nor its silence as "benign" — the verdict is ambiguous.
                if outcome.outcome.is_inconclusive() {
                    verdicts[i] = Some(Verdict::Ambiguous);
                    progress = true;
                    continue;
                }
                if !outcome.averted {
                    verdicts[i] = Some(Verdict::Benign);
                    progress = true;
                    continue;
                }
                // Averted. Ambiguous iff a nested race that was flipped
                // along is itself causal.
                let nested_keys: Vec<(InstrAddr, InstrAddr)> = outcome
                    .plan
                    .also_flipped
                    .iter()
                    .map(ObservedRace::key)
                    .collect();
                let nested_indices: Vec<usize> = run
                    .races
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| nested_keys.contains(&q.key()))
                    .map(|(j, _)| j)
                    .collect();
                if nested_indices.iter().any(|&j| verdicts[j].is_none()) {
                    continue; // Wait for the nested verdicts.
                }
                let nested_causal = nested_indices
                    .iter()
                    .any(|&j| verdicts[j] == Some(Verdict::Causal));
                // A nested race whose own flip never ran might be causal:
                // claiming this averted flip as Causal would over-attribute,
                // so the verdict degrades conservatively to Ambiguous.
                let nested_unknown = nested_indices
                    .iter()
                    .any(|&j| verdicts[j] == Some(Verdict::Unverified));
                verdicts[i] = Some(if nested_causal || nested_unknown {
                    Verdict::Ambiguous
                } else {
                    Verdict::Causal
                });
                progress = true;
            }
        }
        // Any remaining cycles (mutually nested, degenerate): ambiguous.
        for v in &mut verdicts {
            if v.is_none() {
                *v = Some(Verdict::Ambiguous);
            }
        }

        let tested: Vec<TestedRace> = order
            .iter()
            .map(|&i| {
                // A race with no flip outcome — deadline cut phase A short,
                // or a static proof skipped the run — has no run-evidence
                // fields, only its verdict (and its proof, when one exists).
                let Some(outcome) = outcomes[i].as_ref() else {
                    return TestedRace {
                        race: run.races[i].clone(),
                        verdict: verdicts[i].expect("phase B ran"),
                        flipped_with: Vec::new(),
                        vanished: Vec::new(),
                        cs_expanded: false,
                        outcome: None,
                        static_proof: static_benign[i],
                    };
                };
                let vanished = run
                    .races
                    .iter()
                    .map(ObservedRace::key)
                    .filter(|k| *k != run.races[i].key() && !outcome.occurred.contains(k))
                    .collect();
                TestedRace {
                    race: run.races[i].clone(),
                    verdict: verdicts[i].expect("phase B ran"),
                    flipped_with: outcome
                        .plan
                        .also_flipped
                        .iter()
                        .map(ObservedRace::key)
                        .collect(),
                    vanished,
                    cs_expanded: outcome.plan.cs_expanded,
                    outcome: Some(outcome.outcome),
                    static_proof: static_benign[i],
                }
            })
            .collect();

        // Phase C: causality edges between root causes — re-run each root
        // cause's flip (the paper's second pass) and record which other root
        // causes never occurred.
        let root_idx: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| verdicts[i] == Some(Verdict::Causal))
            .collect();
        let root_causes: Vec<ObservedRace> =
            root_idx.iter().map(|&i| run.races[i].clone()).collect();
        let root_jobs: Vec<ExecJob> = root_idx
            .iter()
            .map(|&i| ExecJob {
                program: Arc::clone(&run.program),
                schedule: plans_by_race[i].schedule.clone(),
                enforce: self.config.enforce,
            })
            .collect();
        // Phase C reuses the same gain ordering for the re-runs; edges are
        // still extracted in canonical root order.
        let root_positions: Vec<usize> = (0..root_idx.len()).collect();
        let root_submit =
            self.submission(&root_positions, &root_idx, scores.as_deref(), &mut stats);
        let root_results = self
            .exec
            .run_batch_permuted(&root_jobs, &root_submit, &cancel);
        let mut edges = Vec::new();
        for (ri, res) in root_results.into_iter().enumerate() {
            // A hole (deadline mid-pass): no edges from the unexecuted
            // re-runs — the chain keeps its nodes but loses only ordering
            // evidence, which is degradation, not invention.
            let Some(out) = res else { continue };
            let plan = &plans_by_race[root_idx[ri]];
            stats.sim.add_retries(out.retries as usize);
            stats.note_exec(&out);
            if out.vm_faulted.is_none() {
                stats.schedules_executed += 1;
                stats.sim.add_run(out.run.steps, out.run.failure.is_some());
            }
            let outcome = flip_outcome(run, plan, &out);
            // An inconclusive re-run observed nothing: its empty `occurred`
            // set would manufacture a "vanished" edge to every other root
            // cause, so no edges are extracted from it.
            if outcome.outcome.is_inconclusive() {
                continue;
            }
            let flipped_along: Vec<(InstrAddr, InstrAddr)> =
                plan.also_flipped.iter().map(ObservedRace::key).collect();
            for (rj, &j) in root_idx.iter().enumerate() {
                if ri == rj {
                    continue;
                }
                let key = run.races[j].key();
                if !outcome.occurred.contains(&key) && !flipped_along.contains(&key) {
                    edges.push((ri, rj));
                }
            }
        }

        let failure_desc = describe_failure(run);
        let chain = build_chain(&root_causes, &edges, &run.program, &failure_desc);
        stats.deadline_fired = self.exec.deadline_fired();
        CausalityResult {
            chain,
            tested,
            root_causes,
            edges,
            stats,
        }
    }
}

/// Interprets one flip run: was the original failure averted, how did the
/// run classify, and which of the known races occurred? Pure over the
/// execution output, so outcomes are independent of which pool worker
/// executed the run.
fn flip_outcome(run: &FailingRun, plan: &FlipPlan, out: &ExecOutput) -> FlipOutcome {
    let averted = failure_averted(&run.failure, &out.run);
    // Which known races occurred in this run (both instructions executed
    // with at least one memory access)?
    let executed: HashSet<InstrAddr> = out
        .run
        .trace
        .iter()
        .filter(|r| !r.accesses.is_empty())
        .map(|r| r.at)
        .collect();
    let occurred = run
        .races
        .iter()
        .map(ObservedRace::key)
        .filter(|(a, b)| executed.contains(a) && executed.contains(b))
        .collect();
    FlipOutcome {
        plan: plan.clone(),
        averted,
        outcome: out.outcome,
        occurred,
    }
}

/// Renders the failure for the chain terminal (e.g. `BUG_ON()` or
/// `KASAN: use-after-free`).
#[must_use]
pub fn describe_failure(run: &FailingRun) -> String {
    let f = &run.failure;
    if f.kind == ksim::FailureKind::AssertionViolation && !f.message.is_empty() {
        format!("BUG_ON({})", f.message)
    } else {
        f.kind.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifs::{
        Lifs,
        LifsConfig, //
    };
    use ksim::builder::ProgramBuilder;
    use ksim::Program;

    /// The paper's Figure 1 program.
    fn fig1_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.func("writer_path");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            b.func("clearer_path");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    fn analyze_fig1() -> (FailingRun, CausalityResult) {
        let run = Lifs::new(fig1_program(), LifsConfig::default())
            .search()
            .failing
            .expect("fig1 reproduces");
        let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        (run, result)
    }

    #[test]
    fn fig1_chain_has_two_causal_races() {
        let (_, result) = analyze_fig1();
        assert_eq!(
            result.chain.race_count(),
            2,
            "chain: {} tested: {:?}",
            result.chain,
            result
                .tested
                .iter()
                .map(|t| (t.race.key(), t.verdict))
                .collect::<Vec<_>>()
        );
        assert!(result.ambiguous().is_empty());
    }

    #[test]
    fn fig1_chain_is_ordered_a1b1_then_b2a2() {
        let (run, result) = analyze_fig1();
        let s = result.chain.to_string();
        // First link: the ptr_valid race (named A1/B1); second: the ptr race.
        assert!(s.contains("A1 ⇒ B1"), "{s}");
        assert_eq!(result.chain.nodes.len(), 2, "{s}");
        assert!(
            s.contains("NULL pointer dereference"),
            "terminal failure missing: {s}"
        );
        // The race-steered edge: flipping A1 ⇒ B1 makes the ptr race vanish.
        assert!(
            !result.edges.is_empty(),
            "expected a causality edge, races: {:?}",
            run.races.iter().map(ObservedRace::key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn benign_noise_races_are_excluded() {
        // Fig1 plus a statistics counter both threads bump — a benign race.
        let mut p = ProgramBuilder::new("fig1-noise");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        let stats_ctr = p.global("stats", 0);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.fetch_add_global(stats_ctr, 1u64);
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.fetch_add_global(stats_ctr, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.fetch_add_global(stats_ctr, 1u64);
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let run = Lifs::new(prog, LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        // The counter races were observed...
        assert!(
            run.races.len() > 2,
            "noise races should be in the test set: {:?}",
            run.races.iter().map(ObservedRace::key).collect::<Vec<_>>()
        );
        // ...but never enter the chain.
        assert_eq!(result.chain.race_count(), 2, "chain: {}", result.chain);
        assert!(!result.benign().is_empty());
    }

    #[test]
    fn forward_ablation_still_terminates() {
        let run = Lifs::new(fig1_program(), LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        let cfg = CausalityConfig {
            backward: false,
            ..CausalityConfig::default()
        };
        let result = CausalityAnalysis::new(cfg).analyze(&run);
        assert!(result.stats.schedules_executed > 0);
    }

    #[test]
    fn stats_count_both_passes() {
        let (run, result) = analyze_fig1();
        // Phase A: one run per race; phase C: one run per root cause.
        let expected = run.races.len() + result.root_causes.len();
        assert_eq!(result.stats.schedules_executed, expected);
    }

    #[test]
    fn timed_out_flip_is_ambiguous_not_causal() {
        // Reproduce normally, then analyze with a step budget so small every
        // flip run exhausts it: no flip observes anything, so no race may be
        // judged causal (nor benign) off a silent run.
        let run = Lifs::new(fig1_program(), LifsConfig::default())
            .search()
            .failing
            .expect("fig1 reproduces");
        let cfg = CausalityConfig {
            enforce: EnforceConfig { step_budget: 1 },
            ..CausalityConfig::default()
        };
        let result = CausalityAnalysis::new(cfg).analyze(&run);
        assert!(!result.tested.is_empty());
        for t in &result.tested {
            assert_eq!(t.outcome, Some(RunOutcome::Timeout));
            assert_eq!(t.verdict, Verdict::Ambiguous, "race {:?}", t.race.key());
        }
        assert!(result.root_causes.is_empty());
        assert!(result.edges.is_empty());
        assert_eq!(result.chain.race_count(), 0);
    }

    #[test]
    fn faulted_flips_yield_ambiguous_verdicts() {
        let run = Lifs::new(fig1_program(), LifsConfig::default())
            .search()
            .failing
            .expect("fig1 reproduces");
        // Every flip attempt faults; placeholders are inconclusive.
        let exec = Arc::new(crate::exec::Executor::with_config(
            crate::exec::ExecutorConfig {
                vms: 1,
                fault: Some(crate::exec::FaultInjection {
                    seed: 3,
                    rate_permille: 1000,
                    max_retries: 1,
                    quarantine_after: 0,
                }),
                ..crate::exec::ExecutorConfig::default()
            },
        ));
        let result =
            CausalityAnalysis::with_executor(CausalityConfig::default(), exec).analyze(&run);
        assert!(result
            .tested
            .iter()
            .all(|t| t.verdict == Verdict::Ambiguous));
        assert!(result.root_causes.is_empty());
        assert_eq!(result.stats.schedules_executed, 0);
        assert!(result.stats.sim.retries > 0, "retry backoff was charged");
    }

    /// Fig1 plus prologue noise counters both threads bump — the shape the
    /// static prover is built for.
    fn fig1_noise_run() -> FailingRun {
        let mut p = ProgramBuilder::new("fig1-noise");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        let c0 = p.global("stats[0]", 0);
        let c1 = p.global("stats[1]", 0);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.fetch_add_global(c0, 1u64);
            a.fetch_add_global(c1, 4u64);
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.fetch_add_global(c0, 1u64);
            b.fetch_add_global(c1, 2u64);
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        Lifs::new(prog, LifsConfig::default())
            .search()
            .failing
            .expect("reproduces")
    }

    fn analyze_at(run: &FailingRun, level: CausalityLevel, verify: bool) -> CausalityResult {
        let cfg = CausalityConfig {
            level,
            verify_static: verify,
            ..CausalityConfig::default()
        };
        CausalityAnalysis::new(cfg).analyze(run)
    }

    #[test]
    fn adaptive_skips_flips_but_verdicts_and_chain_are_identical() {
        let run = fig1_noise_run();
        let ex = analyze_at(&run, CausalityLevel::Exhaustive, false);
        let ad = analyze_at(&run, CausalityLevel::Adaptive, false);
        // Identical diagnosis...
        assert_eq!(ex.chain.to_string(), ad.chain.to_string());
        assert_eq!(ex.root_causes, ad.root_causes);
        assert_eq!(ex.edges, ad.edges);
        let verdicts = |r: &CausalityResult| {
            r.tested
                .iter()
                .map(|t| (t.race.key(), t.verdict))
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(&ex), verdicts(&ad));
        // ...from strictly fewer executions.
        assert!(ad.stats.flips_skipped_static > 0, "noise flips should skip");
        assert_eq!(
            ad.stats.schedules_executed + ad.stats.flips_skipped_static,
            ex.stats.schedules_executed,
        );
        assert_eq!(ex.stats.flips_skipped_static, 0);
        assert_eq!(ex.stats.flips_reordered, 0);
        assert!(ad.stats.sim_time_saved_s > 0.0);
    }

    #[test]
    fn static_proof_provenance_and_agreement_mode() {
        let run = fig1_noise_run();
        let ad = analyze_at(&run, CausalityLevel::Adaptive, false);
        let proved: Vec<_> = ad.tested.iter().filter(|t| t.static_proof).collect();
        assert!(!proved.is_empty());
        for t in &proved {
            assert_eq!(t.verdict, Verdict::Benign);
            assert_eq!(t.outcome, None, "skipped flips never ran");
            assert_eq!(t.provenance(), "static-invariant");
        }
        // Debug agreement mode executes every proved flip and audits it.
        let verified = analyze_at(&run, CausalityLevel::Adaptive, true);
        assert_eq!(verified.stats.static_disagreements, 0);
        assert_eq!(
            verified.stats.schedules_executed,
            analyze_at(&run, CausalityLevel::Exhaustive, false)
                .stats
                .schedules_executed,
            "verify mode runs the full exhaustive batch"
        );
        for t in verified.tested.iter().filter(|t| t.static_proof) {
            assert_eq!(t.verdict, Verdict::Benign);
            assert!(t.outcome.is_some(), "verify mode executed the flip");
            assert_eq!(t.provenance(), "static-invariant");
        }
    }

    #[test]
    fn adaptive_reorders_submission_without_changing_fig1() {
        // Plain fig1 has no provable noise: adaptivity must degrade to the
        // same executions, possibly reordered, with the identical chain.
        let run = Lifs::new(fig1_program(), LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        let ex = analyze_at(&run, CausalityLevel::Exhaustive, false);
        let ad = analyze_at(&run, CausalityLevel::Adaptive, false);
        assert_eq!(ex.chain.to_string(), ad.chain.to_string());
        assert_eq!(ex.stats.schedules_executed, ad.stats.schedules_executed);
    }

    #[test]
    fn causality_level_parses_and_rejects() {
        use std::str::FromStr;
        assert_eq!(
            CausalityLevel::from_str("exhaustive").unwrap(),
            CausalityLevel::Exhaustive
        );
        assert_eq!(
            CausalityLevel::from_str("adaptive").unwrap(),
            CausalityLevel::Adaptive
        );
        assert!(CausalityLevel::from_str("eager").is_err());
        assert_eq!(CausalityLevel::Adaptive.to_string(), "adaptive");
        assert_eq!(CausalityLevel::default(), CausalityLevel::Exhaustive);
    }

    #[test]
    fn describe_failure_formats_bug_on() {
        let mut p = ProgramBuilder::new("bug");
        let g = p.global("x", 1);
        {
            let mut a = p.syscall_thread("A", "b");
            a.load_global("r0", g);
            a.bug_on_msg(
                ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 1),
                "list_contains",
            );
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "w");
            b.store_global(g, 1u64);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let out = Lifs::new(prog, LifsConfig::default()).search();
        let run = out.failing.expect("serial run fails");
        assert_eq!(describe_failure(&run), "BUG_ON(list_contains)");
    }
}
