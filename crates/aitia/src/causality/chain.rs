//! Causality chains — the root cause as the paper defines it.
//!
//! A causality chain is "a chained sequence of data races" (§1): each link
//! is an enforced interleaving order `X ⇒ Y`, links are connected by
//! causality (flipping an earlier link makes a later one disappear through a
//! race-steered control flow), and mutually-causal links are conjoined
//! (Figure 3's `(A2 ⇒ B11) ∧ (B2 ⇒ A6)`). The chain terminates at the
//! failure. Breaking any link — patching the code so that one interleaving
//! order cannot occur — prevents the failure.

use crate::race::ObservedRace;
use ksim::{
    addr::region_of,
    Addr,
    InstrAddr,
    Program, //
};
use serde::{
    Deserialize,
    Serialize, //
};

/// A race link rendered for reporting.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceDesc {
    /// First instruction of the enforced order.
    pub first: InstrAddr,
    /// Second instruction of the enforced order.
    pub second: InstrAddr,
    /// Display name of the first instruction (e.g. `"A6"`).
    pub first_name: String,
    /// Display name of the second instruction (e.g. `"B12"`).
    pub second_name: String,
    /// The racing variable, resolved to a source-level name when possible.
    pub variable: String,
    /// Kernel source coordinates of both instructions (`func:line`).
    pub locations: (String, String),
}

impl RaceDesc {
    /// Builds the description for a race against its program.
    #[must_use]
    pub fn describe(race: &ObservedRace, program: &Program) -> RaceDesc {
        let first = race.first.at;
        let second = race.second.at();
        let loc = |at: InstrAddr| match program.meta_at(at) {
            Some(m) if !m.func.is_empty() => format!("{}:{}", m.func, m.line),
            _ => format!("{at}"),
        };
        RaceDesc {
            first,
            second,
            first_name: program.instr_name(first),
            second_name: program.instr_name(second),
            variable: variable_name(race.first.addr, program),
            locations: (loc(first), loc(second)),
        }
    }

    /// The `"X ⇒ Y"` rendering.
    #[must_use]
    pub fn order(&self) -> String {
        format!("{} ⇒ {}", self.first_name, self.second_name)
    }
}

/// Resolves an address to a source-level variable name.
#[must_use]
pub fn variable_name(addr: Addr, program: &Program) -> String {
    match region_of(addr) {
        ksim::addr::Region::Globals => {
            let idx = (addr.0 - ksim::addr::GLOBALS_BASE) / ksim::addr::GLOBAL_SLOT;
            program
                .globals
                .get(idx as usize)
                .map_or_else(|| format!("{addr}"), |g| g.name.clone())
        }
        ksim::addr::Region::Heap => "heap object".to_string(),
        _ => format!("{addr}"),
    }
}

/// One node of a chain: a single race or a conjunction of mutually-causal
/// races.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainNode {
    /// One race link.
    Single(RaceDesc),
    /// Races that must *jointly* hold for the next link (the multi-variable
    /// atomicity violation of CVE-2017-15649).
    Conj(Vec<RaceDesc>),
}

impl ChainNode {
    /// The races in this node.
    #[must_use]
    pub fn races(&self) -> &[RaceDesc] {
        match self {
            ChainNode::Single(r) => std::slice::from_ref(r),
            ChainNode::Conj(rs) => rs,
        }
    }
}

/// The complete causality chain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalityChain {
    /// Chain nodes, cause-first, failure-adjacent last.
    pub nodes: Vec<ChainNode>,
    /// The failure the chain terminates at.
    pub failure: String,
}

impl CausalityChain {
    /// Total number of race links in the chain (the "# of races in chain"
    /// column of Table 3).
    #[must_use]
    pub fn race_count(&self) -> usize {
        self.nodes.iter().map(|n| n.races().len()).sum()
    }

    /// Whether a race (by ordered instruction pair) appears in the chain.
    #[must_use]
    pub fn contains(&self, first: InstrAddr, second: InstrAddr) -> bool {
        self.nodes
            .iter()
            .flat_map(|n| n.races().iter())
            .any(|r| r.first == first && r.second == second)
    }
}

impl core::fmt::Display for CausalityChain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for (i, node) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            match node {
                ChainNode::Single(r) => write!(f, "{}", r.order())?,
                ChainNode::Conj(rs) => {
                    write!(f, "(")?;
                    for (j, r) in rs.iter().enumerate() {
                        if j > 0 {
                            write!(f, " ∧ ")?;
                        }
                        write!(f, "{}", r.order())?;
                    }
                    write!(f, ")")?;
                }
            }
        }
        if self.nodes.is_empty() {
            write!(f, "(empty)")?;
        }
        write!(f, " → {}", self.failure)
    }
}

/// Builds the chain from the root-cause races and the causality edges
/// discovered by flipping (edge `i → j`: flipping race `i` made race `j`
/// disappear).
///
/// Mutually-causal races (strongly connected components) become [`ChainNode::Conj`]
/// nodes; the condensed graph is transitively reduced and linearized in
/// topological order (ties broken by the races' position in the failing
/// sequence, earlier first).
#[must_use]
pub fn build_chain(
    root_causes: &[ObservedRace],
    edges: &[(usize, usize)],
    program: &Program,
    failure: &str,
) -> CausalityChain {
    let n = root_causes.len();
    if n == 0 {
        return CausalityChain {
            nodes: vec![],
            failure: failure.to_string(),
        };
    }
    let mut adj = vec![vec![false; n]; n];
    for &(i, j) in edges {
        if i < n && j < n && i != j {
            adj[i][j] = true;
        }
    }
    // Strongly connected components (mutual causality ⇒ conjunction). With
    // small n, a reachability-based SCC is clear and sufficient.
    let mut reach = adj.clone();
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if reach[i][k] && reach[k][j] {
                    reach[i][j] = true;
                }
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        if comp[i] != usize::MAX {
            continue;
        }
        let id = comps.len();
        let mut members = vec![i];
        comp[i] = id;
        for j in (i + 1)..n {
            if comp[j] == usize::MAX && reach[i][j] && reach[j][i] {
                comp[j] = id;
                members.push(j);
            }
        }
        comps.push(members);
    }
    // Condensed edges + transitive reduction.
    let m = comps.len();
    let mut cadj = vec![vec![false; m]; m];
    for i in 0..n {
        for j in 0..n {
            if adj[i][j] && comp[i] != comp[j] {
                cadj[comp[i]][comp[j]] = true;
            }
        }
    }
    let mut creach = cadj.clone();
    for k in 0..m {
        for i in 0..m {
            for j in 0..m {
                if creach[i][k] && creach[k][j] {
                    creach[i][j] = true;
                }
            }
        }
    }
    let mut reduced = cadj.clone();
    for i in 0..m {
        for j in 0..m {
            if !reduced[i][j] {
                continue;
            }
            // Drop the edge when a longer path exists.
            for (k, row) in creach.iter().enumerate() {
                if k != i && k != j && creach[i][k] && row[j] {
                    reduced[i][j] = false;
                    break;
                }
            }
        }
    }
    // Topological order of components; ties by earliest member position in
    // the failing sequence (races are indexed in backward order, so a larger
    // index = earlier in the sequence).
    let indeg = |ord: &[usize], placed: &[bool]| -> Vec<usize> {
        (0..m)
            .filter(|&c| !placed[c])
            .filter(|&c| (0..m).all(|p| !reduced[p][c] || placed[p] || ord.contains(&p)))
            .collect()
    };
    let mut placed = vec![false; m];
    let mut sorted_comps = Vec::new();
    while sorted_comps.len() < m {
        let mut ready = indeg(&sorted_comps, &placed);
        if ready.is_empty() {
            // Cycle leftovers (should not happen after condensation).
            ready = (0..m).filter(|&c| !placed[c]).collect();
        }
        // Earlier-in-sequence first: larger backward index first.
        ready.sort_by_key(|&c| {
            comps[c]
                .iter()
                .map(|&i| std::cmp::Reverse(root_causes[i].first.seq))
                .min()
        });
        let c = ready[0];
        placed[c] = true;
        sorted_comps.push(c);
    }
    let nodes = sorted_comps
        .into_iter()
        .map(|c| {
            let mut descs: Vec<RaceDesc> = comps[c]
                .iter()
                .map(|&i| RaceDesc::describe(&root_causes[i], program))
                .collect();
            descs.sort_by_key(RaceDesc::order);
            if descs.len() == 1 {
                ChainNode::Single(descs.pop().expect("one desc"))
            } else {
                ChainNode::Conj(descs)
            }
        })
        .collect();
    CausalityChain {
        nodes,
        failure: failure.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::race::{
        AccessEvt,
        RaceEnd, //
    };
    use ksim::builder::ProgramBuilder;
    use ksim::{
        ThreadId,
        ThreadProgId, //
    };

    fn mini_program() -> Program {
        let mut p = ProgramBuilder::new("mini");
        let g = p.global("po->running", 1);
        {
            let mut a = p.syscall_thread("A", "s");
            a.n("A2").load_global("r0", g);
            a.n("A6").store_global(g, 0u64);
            a.n("A12").store_global(g, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "s");
            b.n("B11").store_global(g, 0u64);
            b.n("B12").load_global("r0", g);
            b.n("B17").load_global("r1", g);
            b.ret();
        }
        p.build().unwrap()
    }

    fn race(
        first_idx: usize,
        first_seq: usize,
        second_prog: u16,
        second_idx: usize,
    ) -> ObservedRace {
        ObservedRace {
            first: AccessEvt {
                seq: first_seq,
                tid: ThreadId(0),
                at: InstrAddr {
                    prog: ThreadProgId(0),
                    index: first_idx,
                },
                addr: ksim::Addr(0x1000_0000),
                is_write: true,
                locks: vec![],
            },
            second: RaceEnd::Executed(AccessEvt {
                seq: first_seq + 1,
                tid: ThreadId(1),
                at: InstrAddr {
                    prog: ThreadProgId(second_prog),
                    index: second_idx,
                },
                addr: ksim::Addr(0x1000_0000),
                is_write: true,
                locks: vec![],
            }),
        }
    }

    #[test]
    fn fig3_shape_mutual_edges_conjoin() {
        let prog = mini_program();
        // Indices: 0 = A2⇒B11-like, 1 = A6-ish⇒B12-like (use available
        // instrs), 2 = B17-ish⇒A12-like; plus 3 mutually causal with 0.
        let r0 = race(0, 0, 1, 0); // A2 ⇒ B11
        let r1 = race(1, 2, 1, 1); // A6 ⇒ B12
        let r2 = race(2, 4, 1, 2); // A12 ⇒ B17 (stand-in)
        let r3 = race(1, 1, 1, 0); // mutually causal with r0
        let roots = vec![r0, r1, r2, r3];
        let edges = vec![
            (0, 3),
            (3, 0), // mutual ⇒ conjunction
            (0, 1),
            (3, 1),
            (0, 2),
            (3, 2),
            (1, 2), // path
        ];
        let chain = build_chain(&roots, &edges, &prog, "BUG_ON()");
        assert_eq!(chain.nodes.len(), 3);
        assert!(matches!(chain.nodes[0], ChainNode::Conj(ref v) if v.len() == 2));
        assert!(matches!(chain.nodes[1], ChainNode::Single(_)));
        assert!(matches!(chain.nodes[2], ChainNode::Single(_)));
        assert_eq!(chain.race_count(), 4);
        let s = chain.to_string();
        assert!(s.contains('∧'), "{s}");
        assert!(s.ends_with("BUG_ON()"), "{s}");
    }

    #[test]
    fn independent_races_form_flat_chain() {
        let prog = mini_program();
        let roots = vec![race(0, 0, 1, 0), race(1, 2, 1, 1)];
        let chain = build_chain(&roots, &[], &prog, "UAF");
        assert_eq!(chain.nodes.len(), 2);
        assert_eq!(chain.race_count(), 2);
    }

    #[test]
    fn empty_roots_render_empty() {
        let prog = mini_program();
        let chain = build_chain(&[], &[], &prog, "panic");
        assert_eq!(chain.race_count(), 0);
        assert!(chain.to_string().contains("(empty)"));
    }

    #[test]
    fn variable_names_resolve_globals() {
        let prog = mini_program();
        assert_eq!(
            variable_name(ksim::Addr(ksim::addr::GLOBALS_BASE), &prog),
            "po->running"
        );
        assert_eq!(
            variable_name(ksim::Addr(ksim::addr::HEAP_BASE + 64), &prog),
            "heap object"
        );
    }

    #[test]
    fn transitive_edges_are_reduced() {
        let prog = mini_program();
        let roots = vec![race(0, 0, 1, 0), race(1, 2, 1, 1), race(2, 4, 1, 2)];
        // 0→1, 1→2, 0→2 (transitive).
        let chain = build_chain(&roots, &[(0, 1), (1, 2), (0, 2)], &prog, "X");
        assert_eq!(chain.nodes.len(), 3);
        // Linear order preserved: the chain is a path 0 → 1 → 2.
        let names: Vec<String> = chain
            .nodes
            .iter()
            .map(|n| n.races()[0].first_name.clone())
            .collect();
        assert_eq!(names, vec!["A2", "A6", "A12"]);
    }
}
