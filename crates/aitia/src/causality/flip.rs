//! Flip planning: turning "reverse this one data race" into a schedule.
//!
//! Causality Analysis tests a data race by executing the kernel with the
//! race's interleaving order *flipped* while the remaining orders stay as in
//! the failure-causing sequence (§3.4). The planner constructs the flipped
//! total order from the failing trace and compresses it into scheduling
//! points:
//!
//! * **both ends executed** — the first end's thread is delayed at the first
//!   access until the second end has executed (the delayed window carries
//!   the thread's intervening steps with it);
//! * **second end pending** (Figure 6 step 1, `B17 ⇒ A12`) — the first
//!   end's thread is delayed while the pending thread's projected
//!   continuation (from its solo trace) runs up to and past the pending
//!   instruction;
//! * **critical sections as units** (§3.4 liveness) — when an end lies
//!   inside a lock-protected region, the whole region moves, not the single
//!   instruction;
//! * **nested races** (Figure 7) — a race nested inside the flipped window
//!   is unavoidably flipped along; the planner reports exactly which, so the
//!   analysis can issue an ambiguity verdict when needed.

use crate::enforce::RunResult;
use crate::{
    lifs::FailingRun,
    race::{
        critical_section_span,
        ObservedRace,
        RaceEnd, //
    },
    schedule::{
        schedule_from_order,
        Schedule,
        ThreadSel, //
    },
};
use ksim::InstrAddr;

/// Whether a flip run averted `original`. A different failure (other kind
/// or site) still counts as averting the original one; livelock/budget
/// exhaustion conservatively counts as *not* averted — callers must check
/// [`crate::enforce::RunOutcome::is_inconclusive`] first so a timed-out
/// flip surfaces as ambiguous rather than benign.
#[must_use]
pub fn failure_averted(original: &ksim::Failure, res: &RunResult) -> bool {
    match &res.failure {
        None => !res.budget_exhausted,
        Some(f) => !(f.kind == original.kind && f.at == original.at),
    }
}

/// The sequence window `[start..=end]` over which flipping `race` delays
/// the first end's thread, plus whether a critical section grew it. This is
/// the exact geometry [`plan_flip`] realizes for executed-second races; the
/// static benign prover ([`super::invariants`]) reasons over the same
/// window, so the two can never disagree about what a flip reorders.
/// `None` when the second end is pending — those flips extend to the end of
/// the trace and append a projected tail, geometry the prover does not
/// model.
#[must_use]
pub fn flip_window(
    trace: &ksim::Trace,
    race: &ObservedRace,
    cs_as_unit: bool,
) -> Option<(usize, usize, bool)> {
    let second_seq = race.second.seq()?;
    let mut cs_expanded = false;
    let mut start = race.first.seq;
    if cs_as_unit {
        if let Some((cs_start, _)) = critical_section_span(trace, race.first.seq) {
            if cs_start < start {
                start = cs_start;
                cs_expanded = true;
            }
        }
    }
    let mut end = second_seq;
    if cs_as_unit {
        if let Some((_, cs_end)) = critical_section_span(trace, second_seq) {
            if cs_end > end {
                end = cs_end;
                cs_expanded = true;
            }
        }
    }
    Some((start, end, cs_expanded))
}

/// A planned flip: the schedule plus what else the flip necessarily moves.
#[derive(Clone, Debug)]
pub struct FlipPlan {
    /// The race under test.
    pub race: ObservedRace,
    /// Races from `others` whose order the window move also reverses
    /// (nested races, Figure 7).
    pub also_flipped: Vec<ObservedRace>,
    /// The schedule realizing the flip.
    pub schedule: Schedule,
    /// Whether a critical section forced the window to grow.
    pub cs_expanded: bool,
}

/// Plans the flip of `race` against the failing run, preserving the orders
/// of `others` where geometrically possible.
///
/// `cs_as_unit` enables the §3.4 liveness rule (critical sections move as
/// units); disabling it is the ablation.
///
/// Planning is a pure function of its inputs: the same run, race, and flags
/// always yield an identical plan and schedule. Cross-run memoization in
/// [`crate::exec`] leans on this — Phase A and Phase C plan the same flip
/// for a root cause, produce the same schedule fingerprint, and the Phase C
/// re-run is answered from the memo table without touching a VM.
#[must_use]
pub fn plan_flip(
    run: &FailingRun,
    race: &ObservedRace,
    others: &[ObservedRace],
    cs_as_unit: bool,
) -> FlipPlan {
    let trace = &run.trace;
    let first_tid = race.first.tid;

    // The window of the first thread's steps to delay starts at the first
    // access — or at the enclosing critical section's start — and re-enters
    // after the second access (and past its critical section, when
    // applicable). Pending-second races extend to the end of the trace and
    // append the pending thread's projected continuation.
    let (window_start, resume_after, pending_tail, cs_expanded) = match &race.second {
        RaceEnd::Executed(_) => {
            let (start, end, grew) =
                flip_window(trace, race, cs_as_unit).expect("executed second end has a window");
            (start, end, Vec::new(), grew)
        }
        RaceEnd::Pending { tid, at } => {
            let mut start = race.first.seq;
            let mut grew = false;
            if cs_as_unit {
                if let Some((cs_start, _)) = critical_section_span(trace, race.first.seq) {
                    if cs_start < start {
                        start = cs_start;
                        grew = true;
                    }
                }
            }
            // Project the pending thread's continuation from its solo trace.
            let sel = run.sel(*tid);
            let tail = project_tail(run, sel, *at);
            (start, trace.len().saturating_sub(1), tail, grew)
        }
    };

    // Build the flipped total order.
    let mut order: Vec<(ThreadSel, InstrAddr)> = Vec::new();
    let mut delayed: Vec<(ThreadSel, InstrAddr)> = Vec::new();
    for rec in trace {
        let sel = run.sel(rec.tid);
        let in_window = rec.seq >= window_start && rec.seq <= resume_after && rec.tid == first_tid;
        if in_window {
            delayed.push((sel, rec.at));
        } else if rec.seq < window_start || rec.seq <= resume_after {
            order.push((sel, rec.at));
        } else {
            // Past the window: emitted after the delayed block below.
        }
    }
    // Pending-second flips: run the projected tail before the delayed block.
    order.extend(pending_tail.iter().copied());
    order.append(&mut delayed);
    for rec in trace {
        if rec.seq > resume_after {
            order.push((run.sel(rec.tid), rec.at));
        }
    }

    // Which other races does the window move also flip? A race q is dragged
    // along when its ends straddle the window in the opposite sense: q's
    // first end belongs to the delayed window while q's second end executes
    // inside the window's span on another thread.
    let mut also_flipped = Vec::new();
    for q in others {
        if q.key() == race.key() {
            continue;
        }
        let (Some(q_first_seq), Some(q_second_seq)) = (Some(q.first.seq), q.second.seq()) else {
            continue;
        };
        let q_first_in_window =
            q.first.tid == first_tid && q_first_seq >= window_start && q_first_seq <= resume_after;
        let q_second_outside = q.second.tid() != first_tid
            && q_second_seq >= window_start
            && q_second_seq <= resume_after;
        if q_first_in_window && q_second_outside {
            also_flipped.push(q.clone());
        }
    }

    let schedule = schedule_from_order(&order, &run.pending_next());
    FlipPlan {
        race: race.clone(),
        also_flipped,
        schedule,
        cs_expanded,
    }
}

/// Projects the continuation of `sel` from its solo trace, through (and
/// including) the pending instruction `until`, closing over critical
/// sections so the projection never parks inside one.
fn project_tail(run: &FailingRun, sel: ThreadSel, until: InstrAddr) -> Vec<(ThreadSel, InstrAddr)> {
    let Some(solo) = run.solo.get(&sel) else {
        // No solo knowledge: schedule just the pending instruction and rely
        // on enforcement fallbacks.
        return vec![(sel, until)];
    };
    // Steps the thread already executed in the failing run.
    let executed = run.trace.iter().filter(|r| run.sel(r.tid) == sel).count();
    let start = if executed <= solo.len()
        && run
            .trace
            .iter()
            .filter(|r| run.sel(r.tid) == sel)
            .zip(solo.iter())
            .all(|(a, b)| a.at == b.at)
    {
        executed
    } else {
        // Control flow diverged from the solo run: restart the projection at
        // the thread's parked instruction, if it appears in the solo trace.
        match run.pending_next().get(&sel) {
            Some(next) => solo
                .iter()
                .position(|r| r.at == *next)
                .unwrap_or(solo.len()),
            None => solo.len(),
        }
    };
    let mut tail = Vec::new();
    let mut hit = false;
    for rec in &solo[start.min(solo.len())..] {
        tail.push((sel, rec.at));
        if rec.at == until {
            hit = true;
            break;
        }
    }
    if !hit {
        // The solo trace never reaches the instruction (conservative):
        // schedule it directly.
        tail.push((sel, until));
    }
    tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifs::{
        Lifs,
        LifsConfig, //
    };
    use ksim::builder::ProgramBuilder;
    use std::sync::Arc;

    fn fig1_failing_run() -> FailingRun {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        Lifs::new(prog, LifsConfig::default())
            .search()
            .failing
            .expect("fig1 reproduces")
    }

    #[test]
    fn flip_plan_schedule_averts_fig1_failure() {
        let run = fig1_failing_run();
        // The last race in backward order is the ptr race (B2 ⇒ A2-load or
        // similar); flipping each causal race must avert the failure.
        let races = run.races.clone();
        let mut any_averted = false;
        for r in &races {
            let plan = plan_flip(&run, r, &races, true);
            let mut e = ksim::Engine::new(Arc::clone(&run.program));
            let res = crate::enforce::run(
                &mut e,
                &plan.schedule,
                &crate::enforce::EnforceConfig::default(),
            );
            if res.failure.is_none() {
                any_averted = true;
            }
        }
        assert!(any_averted, "flipping some race must avert the failure");
    }

    #[test]
    fn flip_preserves_prefix_order() {
        let run = fig1_failing_run();
        let r = run.races.last().expect("has races").clone();
        let plan = plan_flip(&run, &r, &run.races, true);
        // The plan's schedule must start with the same thread as the
        // original failing schedule ran first (the prefix is preserved).
        let first_step_sel = run.sel(run.trace[0].tid);
        if r.first.seq > 0 {
            assert_eq!(plan.schedule.start, Some(first_step_sel));
        }
    }

    #[test]
    fn plan_flip_is_deterministic() {
        let run = fig1_failing_run();
        // Memoization keys executor jobs by schedule content: re-planning
        // the same flip must reproduce the schedule exactly.
        for r in &run.races {
            let a = plan_flip(&run, r, &run.races, true);
            let b = plan_flip(&run, r, &run.races, true);
            assert_eq!(a.schedule, b.schedule);
            assert_eq!(a.cs_expanded, b.cs_expanded);
            assert_eq!(a.also_flipped.len(), b.also_flipped.len());
        }
    }

    #[test]
    fn nested_race_is_reported_as_also_flipped() {
        use crate::race::{
            AccessEvt,
            RaceEnd, //
        };
        use ksim::{
            Addr,
            ThreadProgId, //
        };
        let run = fig1_failing_run();
        // Synthesize a surrounding/nested pair on the failing trace's two
        // threads: outer (t0 early → t1 late), inner (t0 late → t1 early).
        let t0 = run.trace.first().unwrap().tid;
        let t1 = run
            .trace
            .iter()
            .map(|r| r.tid)
            .find(|&t| t != t0)
            .expect("two threads");
        let seq_of = |tid: ksim::ThreadId, k: usize| {
            run.trace
                .iter()
                .filter(|r| r.tid == tid)
                .nth(k)
                .unwrap()
                .seq
        };
        let mk = |tid: ksim::ThreadId, seq: usize, idx: usize| AccessEvt {
            seq,
            tid,
            at: InstrAddr {
                prog: run.sel(tid).prog,
                index: idx,
            },
            addr: Addr(0x1000_0000),
            is_write: true,
            locks: vec![],
        };
        let _ = ThreadProgId(0);
        let outer = ObservedRace {
            first: mk(t0, seq_of(t0, 0), 0),
            second: RaceEnd::Executed(mk(t1, seq_of(t1, 1), 11)),
        };
        let inner = ObservedRace {
            first: mk(t0, seq_of(t0, 0).max(1), 1),
            second: RaceEnd::Executed(mk(t1, seq_of(t1, 0), 10)),
        };
        // Only meaningful when the geometry holds; build the plan and check
        // the inner race is dragged along if its ends straddle the window.
        let plan = plan_flip(&run, &outer, std::slice::from_ref(&inner), true);
        if crate::race::surrounds(&outer, &inner) {
            assert_eq!(plan.also_flipped.len(), 1);
        }
    }
}
