//! Static benign proofs over the failing trace.
//!
//! Causality Analysis never judges a race benign without evidence: normally
//! the evidence is a flip run in which the failure still manifests. This
//! module derives the same conclusion *statically* for a class of races —
//! in the style of error-invariant summaries (Holzer et al.): a flip is
//! provably benign when every value any instruction observes is identical
//! in the flipped order, because then every thread takes the same path,
//! computes the same addresses, and the original failure manifests at the
//! same site.
//!
//! A flip of `X ⇒ Y` delays the window of X's thread's steps spanning
//! `[window_start..=resume_after]` past the *span* — the other threads'
//! steps inside the same range ([`super::flip::flip_window`], the exact
//! geometry [`super::flip::plan_flip`] realizes). Only window×span pairs
//! change relative order, so the proof obligations are local:
//!
//! 1. the race's second end executed (pending-second flips append a
//!    projected tail — geometry this prover does not model);
//! 2. every window and span step is *movable*: a plain load, store,
//!    `fetch_add`, or register/branch instruction with no lock event and no
//!    thread spawn (lock handoffs, allocator traffic, and list RMWs have
//!    order-sensitive semantics beyond their 8-byte accesses);
//! 3. every reordered conflicting access pair — same address, at least one
//!    write, one side in the window, the other in the span — either
//!    commutes (both classify as [`AccessClass::Add`]: unobserved
//!    `fetch_add` meetings, the kernel's statistics counters) or touches an
//!    address whose value is *never observed* anywhere in the trace (no
//!    plain read, no observed RMW), so the differing final value is
//!    invisible to control flow and to the failure.
//!
//! Under 1–3 the flipped execution is a step permutation of the failing
//! one with identical per-thread behavior, so the failure still manifests
//! and the flip run would return Benign — the verdict the prover awards
//! with a `"static-invariant"` provenance. Nested races dragged along by
//! the window move need no special case: their accesses lie inside the
//! window×span product and are covered by obligation 3, and a manifested
//! failure yields Benign before any nested-race ambiguity logic applies.
//! The `verify_static` debug mode still executes proved flips and asserts
//! the agreement.

use super::flip::flip_window;
use crate::{
    lifs::FailingRun,
    race::{
        AccessClass,
        ConflictIndex,
        ObservedRace, //
    },
};
use ksim::{
    AccessKind,
    Addr,
    InstrAddr, //
};
use std::collections::{
    HashMap,
    HashSet, //
};

/// The static prover: per-trace facts computed once, queried per race.
pub struct StaticProver<'a> {
    run: &'a FailingRun,
    conflict: ConflictIndex,
    /// Addresses whose value is observed somewhere in the trace — by a
    /// plain read or by an RMW whose result lands in a register.
    observed: HashSet<Addr>,
    /// Per-step movability (obligation 2), indexed by trace sequence.
    movable: Vec<bool>,
}

/// How other threads' span steps touch one address.
#[derive(Default)]
struct SpanTouch {
    has_write: bool,
    has_non_add: bool,
}

impl<'a> StaticProver<'a> {
    /// Builds the prover's trace-wide facts for one failing run.
    #[must_use]
    pub fn new(run: &'a FailingRun) -> StaticProver<'a> {
        let conflict = ConflictIndex::for_program(&run.program);
        let mut observed = HashSet::new();
        let mut movable = Vec::with_capacity(run.trace.len());
        for rec in &run.trace {
            for acc in &rec.accesses {
                let observes = match acc.kind {
                    AccessKind::Read => true,
                    AccessKind::Rmw => conflict.classify(rec.at, acc.kind) != AccessClass::Add,
                    AccessKind::Write => false,
                };
                if observes {
                    observed.insert(acc.addr);
                }
            }
            movable.push(
                rec.lock_event.is_none()
                    && rec.spawned.is_none()
                    && is_movable_instr(&run.program, rec.at),
            );
        }
        StaticProver {
            run,
            conflict,
            observed,
            movable,
        }
    }

    /// Attempts to prove that flipping `race` would still manifest the
    /// original failure (verdict Benign), per the module's obligations.
    /// Conservative: `false` means "no proof", not "not benign".
    #[must_use]
    pub fn prove_benign(&self, race: &ObservedRace, cs_as_unit: bool) -> bool {
        let trace = &self.run.trace;
        let Some((start, end, _)) = flip_window(trace, race, cs_as_unit) else {
            return false; // Pending second end (obligation 1).
        };
        let first_tid = race.first.tid;

        // One pass over the range: movability plus the span's per-address
        // touch summary (obligation 2, and the span side of 3).
        let mut span: HashMap<Addr, SpanTouch> = HashMap::new();
        for rec in trace.iter().skip(start).take(end - start + 1) {
            if !self.movable[rec.seq] {
                return false;
            }
            if rec.tid == first_tid {
                continue;
            }
            for acc in &rec.accesses {
                let touch = span.entry(acc.addr).or_default();
                touch.has_write |= acc.kind.is_write();
                touch.has_non_add |= self.conflict.classify(rec.at, acc.kind) != AccessClass::Add;
            }
        }

        // The window side of obligation 3: every reordered conflicting pair
        // must commute or be unobservable.
        for rec in trace.iter().skip(start).take(end - start + 1) {
            if rec.tid != first_tid {
                continue;
            }
            for acc in &rec.accesses {
                let Some(touch) = span.get(&acc.addr) else {
                    continue; // No span touch: order unchanged w.r.t. nothing.
                };
                if !acc.kind.is_write() && !touch.has_write {
                    continue; // Read/read pairs never conflict.
                }
                let window_add = self.conflict.classify(rec.at, acc.kind) == AccessClass::Add;
                if window_add && !touch.has_non_add {
                    continue; // Add/add meetings commute.
                }
                if !self.observed.contains(&acc.addr) {
                    continue; // The differing value is never read by anyone.
                }
                return false;
            }
        }
        true
    }
}

/// Whether the instruction at `at` has no effect beyond its registers and
/// recorded 8-byte accesses: safe to reorder once its observed values are
/// proven identical. Lock ops, allocator ops, list RMWs, spawns, and
/// control transfers out of the thread (`Ret`, `BugOn`, …) all carry
/// order-sensitive semantics and disqualify conservatively.
fn is_movable_instr(program: &ksim::Program, at: InstrAddr) -> bool {
    let Some(instr) = program
        .progs
        .get(at.prog.0 as usize)
        .and_then(|p| p.instrs.get(at.index))
    else {
        return false;
    };
    matches!(
        instr,
        ksim::Instr::Load { .. }
            | ksim::Instr::Store { .. }
            | ksim::Instr::FetchAdd { .. }
            | ksim::Instr::Mov { .. }
            | ksim::Instr::Op { .. }
            | ksim::Instr::Jmp { .. }
            | ksim::Instr::JmpIf { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifs::{
        Lifs,
        LifsConfig, //
    };
    use ksim::builder::ProgramBuilder;
    use std::sync::Arc;

    /// Fig1 plus an unobserved noise counter both threads bump early: the
    /// counter races are provable, the causal races are not.
    fn noisy_run() -> FailingRun {
        let mut p = ProgramBuilder::new("fig1-noise");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        let ctr = p.global("stats", 0);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.fetch_add_global(ctr, 1u64);
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.fetch_add_global(ctr, 1u64);
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        Lifs::new(prog, LifsConfig::default())
            .search()
            .failing
            .expect("reproduces")
    }

    #[test]
    fn proofs_agree_with_flip_runs_on_every_race() {
        // Soundness check in miniature: whatever the prover claims Benign,
        // the actual flip run must also conclude Benign.
        let run = noisy_run();
        let prover = StaticProver::new(&run);
        let mut proved = 0;
        for race in &run.races {
            if !prover.prove_benign(race, true) {
                continue;
            }
            proved += 1;
            let plan = super::super::flip::plan_flip(&run, race, &run.races, true);
            let mut e = ksim::Engine::new(Arc::clone(&run.program));
            let res = crate::enforce::run(
                &mut e,
                &plan.schedule,
                &crate::enforce::EnforceConfig::default(),
            );
            assert!(
                !res.outcome().is_inconclusive(),
                "proved flip ran inconclusively: {:?}",
                race.key()
            );
            assert!(
                !super::super::flip::failure_averted(&run.failure, &res),
                "static proof disagreed with the flip run for {:?}",
                race.key()
            );
        }
        assert!(proved > 0, "the noise counter race should be provable");
    }

    #[test]
    fn causal_races_are_never_proved() {
        let run = noisy_run();
        let prover = StaticProver::new(&run);
        // The ptr_valid and ptr races steer control flow into the failure:
        // their addresses are observed (loaded), so no proof exists.
        let result = super::super::CausalityAnalysis::new(super::super::CausalityConfig::default())
            .analyze(&run);
        for t in &result.tested {
            if t.verdict == super::super::Verdict::Causal {
                assert!(
                    !prover.prove_benign(&t.race, true),
                    "causal race {:?} must not be provable benign",
                    t.race.key()
                );
            }
        }
    }

    #[test]
    fn lock_events_in_window_block_the_proof() {
        // A counter race whose window would drag a lock acquisition along
        // is conservatively left to the dynamic flip.
        let mut p = ProgramBuilder::new("locked-noise");
        let x = p.global("x", 0);
        let ctr = p.global("stats", 0);
        let l = p.lock("l");
        {
            let mut a = p.syscall_thread("A", "w");
            a.fetch_add_global(ctr, 1u64);
            a.lock(l);
            a.store_global(x, 1u64);
            a.unlock(l);
            a.load_global("r0", x);
            a.bug_on_msg(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 2), "boom");
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "w");
            b.fetch_add_global(ctr, 1u64);
            b.store_global(x, 2u64);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let Some(run) = Lifs::new(prog, LifsConfig::default()).search().failing else {
            return; // Not reproducible under this engine ordering: nothing to prove.
        };
        let prover = StaticProver::new(&run);
        for race in &run.races {
            let Some((start, end, _)) = flip_window(&run.trace, race, true) else {
                continue;
            };
            let spans_lock = run
                .trace
                .iter()
                .skip(start)
                .take(end - start + 1)
                .any(|r| r.lock_event.is_some());
            if spans_lock {
                assert!(!prover.prove_benign(race, true));
            }
        }
    }
}
