//! Human-readable diagnosis reports.
//!
//! AITIA "cleans up the result of the diagnosers and reports a causality
//! chain with instruction-level information, such as line numbers in the
//! kernel" (§4.1). This module renders that final report and computes the
//! conciseness statistics of §5.2 (memory-accessing instructions vs detected
//! races vs chain races).

use crate::{
    causality::{
        CausalityResult,
        Verdict, //
    },
    lifs::{
        FailingRun,
        LifsStats, //
    },
    race::races_in_trace,
};
use ksim::Program;

/// Conciseness figures for one failure (§5.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Conciseness {
    /// Memory-accessing instruction executions in the failed execution.
    pub mem_instrs: usize,
    /// Individual data races detected in the failed execution.
    pub races_detected: usize,
    /// Races in the causality chain.
    pub chain_races: usize,
}

/// Computes the conciseness statistics from a failing run and its analysis.
#[must_use]
pub fn conciseness(run: &FailingRun, result: &CausalityResult) -> Conciseness {
    let mem_instrs = run.trace.iter().filter(|r| !r.accesses.is_empty()).count();
    Conciseness {
        mem_instrs,
        races_detected: races_in_trace(&run.trace).len(),
        chain_races: result.chain.race_count(),
    }
}

/// Renders the full diagnosis report for one failure.
#[must_use]
pub fn render(program: &Program, run: &FailingRun, result: &CausalityResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("== AITIA diagnosis: {} ==\n", program.name));
    out.push_str(&format!("failure : {}\n", run.failure));
    out.push_str(&format!("chain   : {}\n", result.chain));
    out.push_str("\nchain links (instruction-level):\n");
    for node in &result.chain.nodes {
        for r in node.races() {
            out.push_str(&format!(
                "  {:<16} on `{}`  [{} | {}]\n",
                r.order(),
                r.variable,
                r.locations.0,
                r.locations.1
            ));
        }
    }
    let benign = result
        .tested
        .iter()
        .filter(|t| t.verdict == Verdict::Benign)
        .count();
    let ambiguous = result
        .tested
        .iter()
        .filter(|t| t.verdict == Verdict::Ambiguous)
        .count();
    let unverified = result
        .tested
        .iter()
        .filter(|t| t.verdict == Verdict::Unverified)
        .count();
    out.push_str(&format!(
        "\ntested races: {} total, {} causal, {} benign (excluded), {} ambiguous, \
         {} unverified\n",
        result.tested.len(),
        result.root_causes.len(),
        benign,
        ambiguous,
        unverified
    ));
    if result.stats.deadline_fired || unverified > 0 {
        out.push_str(
            "PARTIAL diagnosis: a deadline budget expired before every race was \
             flipped; unverified races are suspects, not exonerated.\n",
        );
        out.push_str("verdict provenance:\n");
        for t in &result.tested {
            let (f, s) = t.race.key();
            out.push_str(&format!(
                "  {} / {}  {:?} — {}\n",
                program.instr_name(f),
                program.instr_name(s),
                t.verdict,
                t.provenance()
            ));
        }
    }
    let c = conciseness(run, result);
    out.push_str(&format!(
        "conciseness: {} memory-accessing instructions → {} data races → {} chain races\n",
        c.mem_instrs, c.races_detected, c.chain_races
    ));
    out
}

/// One row of the paper's evaluation tables.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Bug identifier (CVE id or Syzkaller bug number).
    pub bug_id: String,
    /// Kernel subsystem.
    pub subsystem: String,
    /// Failure type description.
    pub bug_type: String,
    /// Multi-variable classification (`None` = single variable;
    /// `Some(true)` = loosely correlated).
    pub multi_variable: Option<bool>,
    /// LIFS simulated seconds.
    pub lifs_time_s: f64,
    /// LIFS schedules executed.
    pub lifs_schedules: usize,
    /// Interleaving count at reproduction.
    pub interleavings: u32,
    /// Causality Analysis simulated seconds.
    pub ca_time_s: f64,
    /// Causality Analysis schedules executed.
    pub ca_schedules: usize,
    /// Races in the final chain.
    pub chain_races: usize,
}

/// Formats a LIFS/CA summary row (Tables 2 and 3 shape).
#[must_use]
pub fn table_row(
    bug_id: &str,
    subsystem: &str,
    bug_type: &str,
    multi_variable: Option<bool>,
    lifs: &LifsStats,
    result: &CausalityResult,
    model: &crate::simtime::CostModel,
) -> TableRow {
    TableRow {
        bug_id: bug_id.to_string(),
        subsystem: subsystem.to_string(),
        bug_type: bug_type.to_string(),
        multi_variable,
        lifs_time_s: lifs.sim.seconds(model),
        lifs_schedules: lifs.schedules_executed,
        interleavings: lifs.interleaving_count,
        ca_time_s: result.stats.sim.seconds(model),
        ca_schedules: result.stats.schedules_executed,
        chain_races: result.chain.race_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causality::{
        CausalityAnalysis,
        CausalityConfig, //
    };
    use crate::lifs::{
        Lifs,
        LifsConfig, //
    };
    use ksim::builder::ProgramBuilder;
    use std::sync::Arc;

    fn diagnose_fig1() -> (Arc<ksim::Program>, FailingRun, CausalityResult) {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let run = Lifs::new(Arc::clone(&prog), LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        (prog, run, result)
    }

    #[test]
    fn report_mentions_chain_and_conciseness() {
        let (prog, run, result) = diagnose_fig1();
        let s = render(&prog, &run, &result);
        assert!(s.contains("AITIA diagnosis"), "{s}");
        assert!(s.contains("A1 ⇒ B1"), "{s}");
        assert!(s.contains("conciseness"), "{s}");
        assert!(s.contains("ptr_valid"), "{s}");
    }

    #[test]
    fn conciseness_is_monotone() {
        let (_, run, result) = diagnose_fig1();
        let c = conciseness(&run, &result);
        assert!(c.mem_instrs >= c.races_detected);
        assert!(c.chain_races <= c.races_detected.max(c.chain_races));
        assert!(c.chain_races >= 1);
    }

    #[test]
    fn table_row_collects_stats() {
        let (_, run, result) = diagnose_fig1();
        let lifs = LifsStats {
            schedules_executed: 5,
            interleaving_count: 1,
            ..LifsStats::default()
        };
        let row = table_row(
            "CVE-TEST",
            "TTY",
            "NULL deref",
            Some(false),
            &lifs,
            &result,
            &crate::simtime::CostModel::default(),
        );
        assert_eq!(row.bug_id, "CVE-TEST");
        assert_eq!(row.lifs_schedules, 5);
        assert_eq!(row.interleavings, 1);
        assert_eq!(row.chain_races, result.chain.race_count());
        let _ = run;
    }
}
