//! The KVM microVM backend: lockstep hardware-virtualized execution.
//!
//! [`KvmBackend`] keeps the deterministic `ksim` engine as its *control
//! plane* — scheduling, locks, failure detection, and the trace are the
//! model's — while every word-sized memory access the model performs is
//! mirrored, in lockstep, into a real KVM guest ([`aitia_kvm::MicroVm`]):
//! writes store the model's post-step value through the guest vcpu, reads
//! execute in the guest and are compared against the model. A divergence,
//! an unexpected vmexit, or a runaway guest *poisons* the backend: it
//! reports itself halted with no runnable threads and no failure, so the
//! run above it concludes inconclusively and the executor's
//! fault-injection, retry, and quarantine machinery — built for VMs that
//! genuinely crash and hang — takes over. A poisoned backend is revived by
//! [`ExecBackend::reboot`] (a fresh microVM is booted), matching how the
//! paper's manager reboots failed VMs (§4.1).
//!
//! Guest cells are allocated on first touch: the backend maintains a
//! model-address → guest-address map, seeding each fresh guest cell with
//! the model's current value so initial-valued globals compare equal.
//!
//! Snapshots pair the model's checkpoint with a copy of the guest data
//! region, upholding the snapshot round-trip invariant for both halves.

use crate::backend::{BackendKind, BackendSnapshot, ExecBackend};
use aitia_kvm::{MicroVm, DATA_BASE, DATA_SIZE};
use ksim::{
    Addr,
    Engine,
    EngineError,
    Failure,
    InstrAddr,
    LockId,
    MemAccess,
    Program,
    SnapshotMode,
    StepOutcome,
    Thread,
    ThreadId,
    ThreadProgId,
    Trace, //
};
use std::{
    collections::HashMap,
    sync::Arc, //
};

/// Re-export of the microVM's availability probe (used by
/// [`BackendKind::available`]).
pub use aitia_kvm::probe;

/// The snapshot payload: both halves of the lockstep state.
struct KvmSnapshot {
    model: ksim::Snapshot,
    data: Vec<u8>,
    slots: HashMap<Addr, u64>,
    next_slot: u64,
}

/// The KVM execution backend (see module docs).
pub struct KvmBackend {
    model: Engine,
    vm: MicroVm,
    /// Model address → guest physical address of its 8-byte cell.
    slots: HashMap<Addr, u64>,
    /// Next free cell index in the guest data region.
    next_slot: u64,
    /// Why the lockstep died, when it did.
    poisoned: Option<String>,
}

impl KvmBackend {
    /// Boots the model engine and a fresh microVM for `program`.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the microVM cannot boot (no usable
    /// `/dev/kvm`). Callers reach this only after a successful
    /// [`probe`], so failure here is unexpected churn (e.g. permissions
    /// changed), reported rather than panicked on.
    pub fn new(program: Arc<Program>) -> Result<KvmBackend, String> {
        Ok(KvmBackend {
            model: Engine::new(program),
            vm: MicroVm::new()?,
            slots: HashMap::new(),
            next_slot: 0,
            poisoned: None,
        })
    }

    /// The poisoning reason, when the lockstep has died.
    #[must_use]
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// The guest cell for `addr`, allocating (and seeding with the model's
    /// current value) on first touch.
    fn slot(&mut self, addr: Addr) -> Result<u64, String> {
        if let Some(&gpa) = self.slots.get(&addr) {
            return Ok(gpa);
        }
        let idx = self.next_slot;
        if idx * 8 >= DATA_SIZE as u64 {
            return Err(format!(
                "guest data region exhausted ({} cells)",
                DATA_SIZE / 8
            ));
        }
        let gpa = DATA_BASE + idx * 8;
        // Seed so initial-valued model cells (globals with nonzero init)
        // compare equal on their first guest read.
        self.vm.write_u64(gpa, self.model.peek(addr))?;
        self.slots.insert(addr, gpa);
        self.next_slot = idx + 1;
        Ok(gpa)
    }

    /// Mirrors the accesses of the model's most recent step into the guest:
    /// writes push the model's post-step value through the vcpu, reads
    /// execute in the guest and must match the model.
    fn mirror_last_step(&mut self) -> Result<(), String> {
        let accesses: Vec<MemAccess> = self
            .model
            .trace()
            .last()
            .map(|rec| rec.accesses.clone())
            .unwrap_or_default();
        for a in accesses {
            let gpa = self.slot(a.addr)?;
            let want = self.model.peek(a.addr);
            if a.kind.is_write() {
                self.vm.write_u64(gpa, want)?;
            } else {
                let got = self.vm.read_u64(gpa)?;
                if got != want {
                    return Err(format!(
                        "lockstep divergence at {}: guest read {got:#x}, model has {want:#x}",
                        a.addr
                    ));
                }
            }
        }
        Ok(())
    }
}

impl ExecBackend for KvmBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Kvm
    }

    fn program(&self) -> &Arc<Program> {
        self.model.program()
    }

    fn reboot(&mut self) {
        self.model.reboot();
        self.slots.clear();
        self.next_slot = 0;
        if self.poisoned.is_some() {
            // Revive: the old vcpu is dead, boot a replacement. Staying
            // poisoned when KVM itself is broken keeps the failure honest.
            match MicroVm::new() {
                Ok(vm) => {
                    self.vm = vm;
                    self.poisoned = None;
                }
                Err(why) => self.poisoned = Some(why),
            }
        } else {
            self.vm.reset_data();
        }
    }

    fn step(&mut self, tid: ThreadId) -> Result<StepOutcome, EngineError> {
        if self.poisoned.is_some() {
            return Err(EngineError::Halted);
        }
        let out = self.model.step(tid)?;
        // A manifested failure halts the machine before the faulting access
        // completes; there is nothing coherent left to mirror.
        if self.model.failure().is_none() {
            if let Err(why) = self.mirror_last_step() {
                self.poisoned = Some(why);
                return Err(EngineError::Halted);
            }
        }
        Ok(out)
    }

    fn snapshot(&self) -> BackendSnapshot {
        BackendSnapshot::new(KvmSnapshot {
            model: self.model.snapshot(),
            data: self.vm.snapshot_data(),
            slots: self.slots.clone(),
            next_slot: self.next_slot,
        })
    }

    fn restore(&mut self, snapshot: &BackendSnapshot) {
        let snap = snapshot
            .downcast_ref::<KvmSnapshot>()
            .expect("kvm backend handed a foreign snapshot handle");
        self.model.restore(&snap.model);
        self.slots.clone_from(&snap.slots);
        self.next_slot = snap.next_slot;
        if let Err(why) = self.vm.restore_data(&snap.data) {
            self.poisoned = Some(why);
        }
    }

    fn failure(&self) -> Option<&Failure> {
        if self.poisoned.is_some() {
            // A crashed VM observed nothing; claiming the model's failure
            // would launder an inconclusive run into a conclusive one.
            return None;
        }
        self.model.failure()
    }

    fn trace(&self) -> &Trace {
        self.model.trace()
    }

    fn threads(&self) -> &[Thread] {
        self.model.threads()
    }

    fn thread(&self, tid: ThreadId) -> Option<&Thread> {
        self.model.thread(tid)
    }

    fn runnable(&self) -> Vec<ThreadId> {
        if self.poisoned.is_some() {
            return Vec::new();
        }
        self.model.runnable()
    }

    fn thread_by_prog(&self, prog: ThreadProgId, occurrence: u32) -> Option<ThreadId> {
        self.model.thread_by_prog(prog, occurrence)
    }

    fn all_done(&self) -> bool {
        self.poisoned.is_none() && self.model.all_done()
    }

    fn deadlocked(&self) -> bool {
        self.poisoned.is_none() && self.model.deadlocked()
    }

    fn halted(&self) -> bool {
        self.poisoned.is_some() || self.model.halted()
    }

    fn next_instr(&self, tid: ThreadId) -> Option<InstrAddr> {
        self.model.next_instr(tid)
    }

    fn lock_holder(&self, lock: LockId) -> Option<ThreadId> {
        self.model.lock_holder(lock)
    }

    fn inject_irq(&mut self, prog: ThreadProgId) -> Result<ThreadId, EngineError> {
        if self.poisoned.is_some() {
            return Err(EngineError::Halted);
        }
        self.model.inject_irq(prog)
    }

    fn set_deep_snapshots(&mut self, deep: bool) {
        self.model.set_snapshot_mode(if deep {
            SnapshotMode::Deep
        } else {
            SnapshotMode::Cow
        });
    }

    fn deep_snapshots(&self) -> bool {
        self.model.snapshot_mode() == SnapshotMode::Deep
    }
}
