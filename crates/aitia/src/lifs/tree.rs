//! LIFS search-tree recording (paper Figure 5).
//!
//! Every candidate schedule LIFS considers becomes a node: executed
//! (failing or not) or pruned (statically non-conflicting, or equivalent to
//! an explored interleaving under partial-order reduction). The recorded
//! tree regenerates the paper's Figure 5 walkthrough.

use crate::schedule::ThreadSel;
use ksim::InstrAddr;

/// Outcome of one search node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeOutcome {
    /// Executed; no failure manifested.
    NoFailure,
    /// Executed; the failure reproduced — the search stops here.
    Failure,
    /// Skipped before execution: the preemption point's accesses conflict
    /// with no other thread.
    PrunedNonConflicting,
    /// Skipped before execution: equivalent to an already-explored
    /// interleaving (partial-order reduction).
    PrunedEquivalent,
    /// Skipped before execution by the DPOR sleep-set rule: the preemption
    /// re-creates an interleaving already explored-and-backtracked from an
    /// equivalent prefix (an earlier preemption point of the same victim
    /// commutes across the segment separating them).
    PrunedSleepSet,
    /// Skipped before execution by the DPOR persistent-set rule: the
    /// preemption's Mazurkiewicz class already has a scheduled
    /// representative (here: it is equivalent to a serial order because
    /// everything after the point commutes).
    PrunedPersistent,
    /// Submitted for execution but every attempt hit a VM fault and the
    /// executor gave up; the run produced no observation.
    Faulted,
}

/// One preemption of a candidate plan, for display.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreemptionDesc {
    /// The preempted thread.
    pub victim: ThreadSel,
    /// The memory-accessing instruction preempted after.
    pub at: InstrAddr,
    /// Occurrence ordinal of `at` in the victim (loops).
    pub nth: u32,
    /// The thread switched to.
    pub target: ThreadSel,
}

/// One node of the LIFS search tree.
#[derive(Clone, Debug)]
pub struct SearchNode {
    /// 1-based search order (the numbers under Figure 5's tree). Pruned
    /// nodes keep the order counter they would have had.
    pub order: usize,
    /// Interleaving count of the plan (0 = serial).
    pub interleavings: u32,
    /// The plan's preemptions (empty for serial runs).
    pub plan: Vec<PreemptionDesc>,
    /// For serial runs, the thread order.
    pub serial_order: Vec<ThreadSel>,
    /// What happened.
    pub outcome: NodeOutcome,
    /// Steps executed (0 when pruned).
    pub steps: usize,
}

/// The recorded search tree.
#[derive(Clone, Debug, Default)]
pub struct SearchTree {
    /// Nodes in search order.
    pub nodes: Vec<SearchNode>,
}

impl SearchTree {
    /// Number of executed (non-pruned) nodes.
    #[must_use]
    pub fn executed(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.outcome, NodeOutcome::NoFailure | NodeOutcome::Failure))
            .count()
    }

    /// Number of pruned nodes.
    #[must_use]
    pub fn pruned(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.outcome,
                    NodeOutcome::PrunedNonConflicting
                        | NodeOutcome::PrunedEquivalent
                        | NodeOutcome::PrunedSleepSet
                        | NodeOutcome::PrunedPersistent
                )
            })
            .count()
    }

    /// Number of nodes lost to VM faults.
    #[must_use]
    pub fn faulted(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.outcome == NodeOutcome::Faulted)
            .count()
    }

    /// Renders the tree walkthrough (one line per node).
    #[must_use]
    pub fn render(&self, program: &ksim::Program) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            let what = if n.plan.is_empty() {
                let order: Vec<String> = n
                    .serial_order
                    .iter()
                    .map(|s| program.prog(s.prog).name.clone())
                    .collect();
                format!("serial [{}]", order.join(" → "))
            } else {
                n.plan
                    .iter()
                    .map(|p| {
                        format!(
                            "{}@{} → {}",
                            program.prog(p.victim.prog).name,
                            program.instr_name(p.at),
                            program.prog(p.target.prog).name
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let outcome = match n.outcome {
                NodeOutcome::NoFailure => "ok",
                NodeOutcome::Failure => "FAILURE",
                NodeOutcome::PrunedNonConflicting => "skip (non-conflicting)",
                NodeOutcome::PrunedEquivalent => "skip (equivalent)",
                NodeOutcome::PrunedSleepSet => "skip (sleep set)",
                NodeOutcome::PrunedPersistent => "skip (persistent set)",
                NodeOutcome::Faulted => "VM FAULT (gave up)",
            };
            out.push_str(&format!(
                "{:>4}. c={} {:<48} {}\n",
                n.order, n.interleavings, what, outcome
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::ThreadProgId;

    #[test]
    fn executed_and_pruned_counts() {
        let sel = ThreadSel::first(ThreadProgId(0));
        let mk = |order, outcome| SearchNode {
            order,
            interleavings: 1,
            plan: vec![],
            serial_order: vec![sel],
            outcome,
            steps: 0,
        };
        let tree = SearchTree {
            nodes: vec![
                mk(1, NodeOutcome::NoFailure),
                mk(2, NodeOutcome::PrunedEquivalent),
                mk(3, NodeOutcome::Failure),
                mk(4, NodeOutcome::PrunedNonConflicting),
                mk(5, NodeOutcome::Faulted),
                mk(6, NodeOutcome::PrunedSleepSet),
                mk(7, NodeOutcome::PrunedPersistent),
            ],
        };
        assert_eq!(tree.executed(), 2);
        assert_eq!(tree.pruned(), 4);
        assert_eq!(tree.faulted(), 1);
    }
}
